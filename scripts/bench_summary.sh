#!/bin/sh
# Runs the thermal hot-path benchmarks and exports the results as
# BENCH_thermal.json (a JSON array of {name, median_ns, mean_ns, min_ns,
# samples} objects), then prints the headline comparisons:
#
#   * CFD substep: flat buffers vs the nested-Vec baseline
#   * heat-matrix model step
#   * heat-matrix extraction: cold vs memoized (cached)
#
# Usage: scripts/bench_summary.sh [output.json]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-"$repo_root/BENCH_thermal.json"}

cd "$repo_root"
BENCH_JSON="$out" cargo bench -p hbm-bench --bench bench_thermal

echo ""
echo "wrote $out"

# Headline ratios, straight from the JSON (median_ns fields).
awk -F'"' '
    /"name"/ {
        # With FS set to a double quote: $4 = name, $7 = ": <median_ns>, ".
        name = $4
        split($7, parts, /[ :,]+/)
        median[name] = parts[2] + 0
    }
    END {
        flat = median["cfd_step_one_minute_40_servers"]
        nested = median["cfd_step_one_minute_40_servers_nested_baseline"]
        if (flat > 0 && nested > 0)
            printf "CFD substep: flat %.1f us vs nested %.1f us  ->  %.2fx faster\n",
                flat / 1000, nested / 1000, nested / flat
        cold = median["matrix/heat_matrix_extraction_4_servers_cold"]
        cached = median["matrix/heat_matrix_extraction_4_servers_cached"]
        if (cold > 0 && cached > 0)
            printf "heat-matrix extraction: cold %.1f us vs cached %.3f us  ->  %.0fx faster\n",
                cold / 1000, cached / 1000, cold / cached
        step = median["heat_matrix_model_step_40_servers"]
        if (step > 0)
            printf "heat-matrix model step: %.1f us\n", step / 1000
    }
' "$out"
