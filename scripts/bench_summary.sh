#!/bin/sh
# Runs the thermal hot-path benchmarks and exports the results as
# BENCH_thermal.json (a JSON array of flat objects; criterion entries are
# {name, median_ns, mean_ns, min_ns, samples}, serve latency entries add
# p99_ns, and single-value entries like serve/session_slot_ns and
# serve/throughput carry one honestly-named field right after name), then
# prints the headline comparisons:
#
#   * CFD substep: flat buffers vs the nested-Vec baseline
#   * heat-matrix model step
#   * heat-matrix extraction: cold vs memoized (cached)
#
# A short traced fig9 run then contributes its kernel timing spans
# (entries named span/<name>, same shape), and a short hbm-serve-bench
# load run contributes its serving throughput/latency (entries named
# serve/<name>), so one file carries microbenchmarks, in-situ span
# timings, and end-to-end service numbers.
#
# Usage: scripts/bench_summary.sh [output.json]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-"$repo_root/BENCH_thermal.json"}
# The bench binary runs with the package dir as its CWD, so a relative
# output path must be absolutized here or BENCH_JSON lands in crates/bench.
case $out in /*) ;; *) out="$PWD/$out" ;; esac

cd "$repo_root"
BENCH_JSON="$out" cargo bench -p hbm-bench --bench bench_thermal

# Appends the objects of the JSON array in $1 to the array in $out.
fold_json() {
    body=$(tr -d '\n' <"$1" | sed -e 's/^\[//' -e 's/\]$//')
    [ -n "$body" ] || return 0
    tmp="$out.tmp"
    awk -v extra="$body" '
        /^\]$/ {
            n = split(extra, objs, /\},\{/)
            for (i = 1; i <= n; i++) {
                o = objs[i]
                if (i > 1) o = "{" o
                if (i < n) o = o "}"
                printf ",\n  %s", o
            }
            printf "\n]\n"
            next
        }
        { print }
    ' "$out" >"$tmp" && mv "$tmp" "$out"
}

# Fold in the kernel spans from a 1-day fig9 run (--timings-json emits the
# same {name, median_ns, ...} objects, prefixed span/).
spans_json="$repo_root/target/spans_fig9.json"
cargo build --release -q -p hbm-experiments
"$repo_root/target/release/experiments" fig9 --days 1 --warmup-days 0 --seed 1 \
    --out "$repo_root/target/bench_fig9_out" \
    --timings --timings-json "$spans_json" >/dev/null
fold_json "$spans_json"

# Fold in a short cache-warm load run against the in-process daemon
# (entries prefixed serve/; see crates/serve/src/bin/hbm-serve-bench.rs).
serve_json="$repo_root/target/serve_bench.json"
cargo build --release -q -p hbm-serve
"$repo_root/target/release/hbm-serve-bench" \
    --connections 4 --duration-secs 2 --days 1 --warmup-days 0 \
    --json "$serve_json" >/dev/null
fold_json "$serve_json"

# Fold in a short sessionful load run: live experiments stepped 120 slots
# per request with per-step checkpointing (entries serve/session_*).
session_json="$repo_root/target/serve_session_bench.json"
session_state="$repo_root/target/serve_session_state"
rm -rf "$session_state"
"$repo_root/target/release/hbm-serve-bench" \
    --connections 4 --duration-secs 2 --days 1 --warmup-days 0 \
    --session-slots 120 --state-dir "$session_state" \
    --json "$session_json" >/dev/null
rm -rf "$session_state"
fold_json "$session_json"

echo ""
echo "wrote $out"

# Headline ratios, straight from the JSON. Every entry's headline value
# is the first field after "name" (median_ns for latency entries,
# slot_ns/requests_per_sec for the single-value serve entries); latency
# entries additionally carry an honest p99_ns.
awk -F'"' '
    /"name"/ {
        # With FS set to a double quote: $4 = name, $7 = ": <value>, ".
        name = $4
        split($7, parts, /[ :,]+/)
        median[name] = parts[2] + 0
        for (i = 5; i < NF; i++) {
            if ($i == "p99_ns") {
                split($(i + 1), parts, /[ :,]+/)
                p99ns[name] = parts[2] + 0
            }
        }
    }
    END {
        flat = median["cfd_step_one_minute_40_servers"]
        nested = median["cfd_step_one_minute_40_servers_nested_baseline"]
        if (flat > 0 && nested > 0)
            printf "CFD substep: flat %.1f us vs nested %.1f us  ->  %.2fx faster\n",
                flat / 1000, nested / 1000, nested / flat
        cold = median["matrix/heat_matrix_extraction_4_servers_cold"]
        cached = median["matrix/heat_matrix_extraction_4_servers_cached"]
        if (cold > 0 && cached > 0)
            printf "heat-matrix extraction: cold %.1f us vs cached %.3f us  ->  %.0fx faster\n",
                cold / 1000, cached / 1000, cold / cached
        sur = median["surrogate/predict_4_servers"]
        if (cold > 0 && sur > 0)
            printf "surrogate predict vs cold extraction: %.3f us vs %.1f us  ->  %.0fx cheaper\n",
                sur / 1000, cold / 1000, cold / sur
        step = median["heat_matrix_model_step_40_servers"]
        gat = median["heat_matrix_model_step_40_servers_gather_baseline"]
        if (step > 0 && gat > 0)
            printf "heat-matrix model step: scatter %.2f us vs gather %.1f us  ->  %.1fx faster\n",
                step / 1000, gat / 1000, gat / step
        else if (step > 0)
            printf "heat-matrix model step: %.1f us\n", step / 1000
        off = median["sim_step_slots_per_sec/recorder_off"]
        on = median["sim_step_slots_per_sec/recorder_on"]
        if (off > 0)
            printf "sim steady-loop throughput: %.2fM slots/s (recorder off)", 1000 / off
        if (off > 0 && on > 0)
            printf ", %.2fM slots/s (recorder on)", 1000 / on
        if (off > 0)
            printf "\n"
        fb = median["fleet_slots_per_sec/batched"]
        fi = median["fleet_slots_per_sec/independent_baseline"]
        if (fb > 0 && fi > 0)
            printf "fleet aggregate throughput (1000 sites): batched %.2fM slots/s vs independent %.2fM  ->  %.1fx\n",
                1e6 / fb, 1e6 / fi, fi / fb
        lb = median["learning_fleet_slots_per_sec/batched"]
        li = median["learning_fleet_slots_per_sec/independent"]
        if (lb > 0 && li > 0)
            printf "learning-fleet aggregate throughput (1000 Q-learning sites): batched %.2fM slots/s vs independent %.2fM  ->  %.1fx\n",
                1e6 / lb, 1e6 / li, li / lb
        plain = median["cfd_step_one_minute_40_servers"]
        timed = median["cfd_step_one_minute_40_servers_timed"]
        if (plain > 0 && timed > 0)
            printf "timing-span overhead on CFD step: %.1f us -> %.1f us (%.1f%%)\n",
                plain / 1000, timed / 1000, 100 * (timed - plain) / plain
        sim = median["span/sim.step"]
        if (sim > 0)
            printf "in-situ sim.step span (fig9 run): %.2f us/slot\n", sim / 1000
        zone = median["span/zone.step"]
        if (zone > 0)
            printf "in-situ zone.step span (fig9 run): %.2f us/call\n", zone / 1000
        tput = median["serve/throughput"]
        if (tput > 0)
            printf "hbm-serve cache-warm throughput: %.0f req/s\n", tput
        lat = median["serve/simulate_latency"]
        if (lat > 0 && p99ns["serve/simulate_latency"] > 0)
            printf "hbm-serve request latency: p50 %.3f ms, p99 %.3f ms\n",
                lat / 1e6, p99ns["serve/simulate_latency"] / 1e6
        slat = median["serve/session_step_latency"]
        if (slat > 0 && p99ns["serve/session_step_latency"] > 0)
            printf "hbm-serve sessionful step (120 slots, checkpointed): p50 %.3f ms, p99 %.3f ms\n",
                slat / 1e6, p99ns["serve/session_step_latency"] / 1e6
        sns = median["serve/session_slot_ns"]
        if (sns > 0)
            printf "hbm-serve sessionful throughput: %.2fM slots/s aggregate (%.0f ns/slot)\n",
                1e3 / sns, sns
        fork = median["fork_vs_rerun/fork"]
        rerun = median["fork_vs_rerun/rerun"]
        if (fork > 0 && rerun > 0)
            printf "what-if fork (+60 slots) vs rerun-from-0 (7260 slots): %.3f ms vs %.1f ms  ->  %.0fx cheaper\n",
                fork / 1e6, rerun / 1e6, rerun / fork
    }
' "$out"
