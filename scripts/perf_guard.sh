#!/bin/sh
# CI perf guard: fails when a guarded benchmark entry in a fresh (smoke)
# run regresses more than MAX_RATIO versus the pinned reference JSON.
#
# Guarded entries are the headline hot-path numbers:
#
#   * sim_step_slots_per_sec/recorder_off       (single-scenario steady loop, median_ns)
#   * fleet_slots_per_sec/batched               (batched fleet engine, median_ns)
#   * learning_fleet_slots_per_sec/batched      (batched learning lanes, median_ns)
#   * serve/session_slot_ns                     (sessionful serving, slot_ns)
#   * fork_vs_rerun/fork                   (what-if fork cost, median_ns)
#   * fork_vs_rerun/rerun                  (rerun-from-0 baseline, median_ns)
#   * surrogate/predict_4_servers          (surrogate-tier predict, median_ns)
#
# Smoke runs on shared CI runners are noisy, hence the wide default
# guardband (2x): the guard catches structural regressions — lost
# vectorization, an accidental debug build, a quadratic slip — not
# percent-level drift. Pinned numbers come from a quiet machine via
# scripts/bench_summary.sh.
#
# Usage: scripts/perf_guard.sh <fresh.json> [pinned.json] [max_ratio]
set -eu

fresh=$1
pinned=${2:-BENCH_thermal.json}
max=${3:-2.0}

# Prints the value of field `key` ($3) in the entry named `name` ($2) of
# the bench JSON `file` ($1); empty if the entry or field is absent.
field_of() {
    awk -F'"' -v want="$2" -v key="$3" '
        /"name"/ && $4 == want {
            for (i = 5; i < NF; i++) {
                if ($i == key) {
                    split($(i + 1), parts, /[ :,]+/)
                    print parts[2] + 0
                    exit
                }
            }
        }
    ' "$1"
}

status=0

# guard <entry-name> <field-key>: compare fresh vs pinned, flag >max ratio.
guard() {
    name=$1
    key=$2
    ref=$(field_of "$pinned" "$name" "$key")
    new=$(field_of "$fresh" "$name" "$key")
    if [ -z "$ref" ] || [ -z "$new" ]; then
        echo "perf guard: '$name' field '$key' missing (pinned='${ref:-}', fresh='${new:-}')" >&2
        status=1
        return
    fi
    ratio=$(awk -v a="$new" -v b="$ref" 'BEGIN { printf "%.3f", a / b }')
    if awk -v r="$ratio" -v m="$max" 'BEGIN { exit !(r <= m) }'; then
        echo "perf guard: $name $key at ${ratio}x of pinned (limit ${max}x) - ok"
    else
        echo "perf guard: $name $key regressed to ${ratio}x of pinned (limit ${max}x)" >&2
        status=1
    fi
}

guard "sim_step_slots_per_sec/recorder_off" median_ns
guard "fleet_slots_per_sec/batched" median_ns
guard "learning_fleet_slots_per_sec/batched" median_ns
guard "serve/session_slot_ns" slot_ns
guard "fork_vs_rerun/fork" median_ns
guard "fork_vs_rerun/rerun" median_ns
guard "surrogate/predict_4_servers" median_ns

exit $status
