#!/bin/sh
# CI perf guard: fails when a guarded benchmark entry in a fresh (smoke)
# run regresses more than MAX_RATIO versus the pinned reference JSON.
#
# Guarded entries are the two headline throughput medians:
#
#   * sim_step_slots_per_sec/recorder_off  (single-scenario steady loop)
#   * fleet_slots_per_sec/batched          (batched fleet engine)
#
# Smoke runs on shared CI runners are noisy, hence the wide default
# guardband (2x): the guard catches structural regressions — lost
# vectorization, an accidental debug build, a quadratic slip — not
# percent-level drift. Pinned numbers come from a quiet machine via
# scripts/bench_summary.sh.
#
# Usage: scripts/perf_guard.sh <fresh.json> [pinned.json] [max_ratio]
set -eu

fresh=$1
pinned=${2:-BENCH_thermal.json}
max=${3:-2.0}

# Prints the median_ns of the named entry in a bench JSON, empty if absent.
median_of() {
    awk -F'"' -v want="$2" '
        /"name"/ && $4 == want {
            split($7, parts, /[ :,]+/)
            print parts[2] + 0
            exit
        }
    ' "$1"
}

status=0
for name in "sim_step_slots_per_sec/recorder_off" "fleet_slots_per_sec/batched"; do
    ref=$(median_of "$pinned" "$name")
    new=$(median_of "$fresh" "$name")
    if [ -z "$ref" ] || [ -z "$new" ]; then
        echo "perf guard: entry '$name' missing (pinned='${ref:-}', fresh='${new:-}')" >&2
        status=1
        continue
    fi
    ratio=$(awk -v a="$new" -v b="$ref" 'BEGIN { printf "%.3f", a / b }')
    if awk -v r="$ratio" -v m="$max" 'BEGIN { exit !(r <= m) }'; then
        echo "perf guard: $name at ${ratio}x of pinned median (limit ${max}x) - ok"
    else
        echo "perf guard: $name regressed to ${ratio}x of pinned median (limit ${max}x)" >&2
        status=1
    fi
done
exit $status
