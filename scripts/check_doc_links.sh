#!/bin/sh
# Documentation gate, run by CI:
#
#   1. Every intra-repo markdown link ([text](relative/path)) in the
#      tracked *.md files must point at a file that exists.
#   2. `cargo doc --no-deps` must be warning-clean (rustdoc warnings are
#      promoted to errors).
#
# Usage: scripts/check_doc_links.sh [--links-only]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

fail=0

# Markdown files to check: the repo's own docs, not vendored or generated
# trees.
files=$(git ls-files '*.md' 2>/dev/null | grep -v '^vendor/' || true)
[ -n "$files" ] || files=$(find . -name '*.md' -not -path './target/*' -not -path './vendor/*' -not -path './.git/*')

for file in $files; do
    dir=$(dirname "$file")
    # Pull out ](target) link destinations, one per line. Markdown links
    # here never contain spaces or nested parentheses.
    links=$(grep -o ']([^)]*)' "$file" 2>/dev/null | sed -e 's/^](//' -e 's/)$//' || true)
    [ -n "$links" ] || continue
    for link in $links; do
        case $link in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "broken link in $file: ($link)"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "error: broken intra-repo markdown links (see above)"
    exit 1
fi
echo "markdown links: ok"

if [ "${1:-}" = "--links-only" ]; then
    exit 0
fi

RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
echo "cargo doc: warning-clean"
