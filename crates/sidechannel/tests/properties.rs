//! Property-based tests of the side channel and statistics helpers.

use hbm_sidechannel::stats::{percentile, Histogram, Summary};
use hbm_sidechannel::{Adc, PduLine, PfcRipple, SideChannelConfig, VoltageSideChannel};
use hbm_units::Power;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adc_quantization_error_within_one_lsb(
        bits in 6u8..16,
        v in -10.0..260.0f64,
    ) {
        let adc = Adc::new(bits, 0.0, 250.0);
        let q = adc.quantize(v);
        let clamped = v.clamp(0.0, 250.0);
        prop_assert!((q - clamped).abs() <= adc.lsb_volts() + 1e-12);
    }

    #[test]
    fn line_inversion_round_trips(kw in 0.0..10.0f64) {
        let line = PduLine::paper_default();
        let p = Power::from_kilowatts(kw);
        let back = line.power_from_outlet_volts(line.outlet_volts(p));
        prop_assert!((back - p).abs() < Power::from_watts(1e-6));
    }

    #[test]
    fn ripple_inversion_round_trips(kw in 0.0..10.0f64) {
        let r = PfcRipple::paper_default();
        let p = Power::from_kilowatts(kw);
        let back = r.power_from_amplitude(r.amplitude_mv(p));
        prop_assert!((back - p).abs() < Power::from_watts(1e-6));
    }

    #[test]
    fn estimates_are_non_negative_and_finite(
        seed in 0u64..500,
        loads in prop::collection::vec(0.0..8.5f64, 1..100),
    ) {
        let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), seed);
        for kw in loads {
            let est = sc.estimate(Power::from_kilowatts(kw));
            prop_assert!(est.is_finite());
            prop_assert!(est >= Power::ZERO);
        }
    }

    #[test]
    fn estimation_error_bounded_under_default_config(
        seed in 0u64..200,
        kw in 2.0..8.0f64,
    ) {
        let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), seed);
        let p = Power::from_kilowatts(kw);
        // Warm the wander state, then check a run of estimates.
        for _ in 0..20 {
            sc.estimate(p);
        }
        for _ in 0..20 {
            let err = sc.estimate(p) - p;
            prop_assert!(err.abs() < Power::from_kilowatts(1.0), "error {err} too large");
        }
    }

    #[test]
    fn histogram_total_counts_all_samples(
        samples in prop::collection::vec(-10.0..10.0f64, 0..300),
    ) {
        let mut h = Histogram::new(-5.0, 5.0, 20);
        h.extend(samples.iter().cloned());
        prop_assert_eq!(h.total(), samples.len() as u64);
        let in_bins: u64 = h.counts().iter().sum();
        prop_assert_eq!(in_bins + h.underflow() + h.overflow(), h.total());
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        samples in prop::collection::vec(-100.0..100.0f64, 1..200),
        p1 in 0.0..100.0f64,
        dp in 0.0..50.0f64,
    ) {
        let p2 = (p1 + dp).min(100.0);
        let a = percentile(&samples, p1);
        let b = percentile(&samples, p2);
        prop_assert!(b >= a);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(a >= min - 1e-9 && a <= max + 1e-9);
    }

    #[test]
    fn summary_is_consistent(samples in prop::collection::vec(-50.0..50.0f64, 1..200)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }
}
