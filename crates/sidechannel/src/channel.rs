//! The attacker's end-to-end load estimator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use hbm_units::Power;

use crate::{Adc, PduLine, PfcRipple};

/// Configuration of the attacker's voltage side channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SideChannelConfig {
    /// Electrical model of the shared feed.
    pub line: PduLine,
    /// PFC ripple model.
    pub ripple: PfcRipple,
    /// ADC used on the DC (sag) path.
    pub dc_adc: Adc,
    /// ADC used on the filtered ripple path.
    pub ripple_adc: Adc,
    /// Standard deviation of slow grid-voltage wander, in volts. This is the
    /// dominant disturbance on the DC path.
    pub grid_wander_volts: f64,
    /// Relative calibration error of the attacker's gain estimates (e.g.
    /// 0.02 = gains known to within 2 %).
    pub calibration_error: f64,
    /// Number of raw samples averaged per estimate; averaging shrinks the
    /// per-sample noise by `1/√n`.
    pub samples_per_estimate: u32,
    /// Extra zero-mean Gaussian noise added to the final estimate. Zero by
    /// default; raised to model operator jamming (Section VII-A) and the
    /// Fig. 12(b) sensitivity sweep.
    pub extra_noise: Power,
}

impl SideChannelConfig {
    /// Default calibration matching the paper's "high accuracy" channel
    /// (estimation error within a few hundred watts on an 8 kW feed).
    pub fn paper_default() -> Self {
        SideChannelConfig {
            line: PduLine::paper_default(),
            ripple: PfcRipple::paper_default(),
            dc_adc: Adc::paper_default(),
            ripple_adc: Adc::ripple_default(),
            grid_wander_volts: 0.2,
            calibration_error: 0.015,
            samples_per_estimate: 64,
            extra_noise: Power::ZERO,
        }
    }

    /// Returns a copy with a different extra-noise level (Fig. 12b).
    pub fn with_extra_noise(mut self, noise: Power) -> Self {
        self.extra_noise = noise;
        self
    }
}

/// A stateful estimator of the aggregate PDU load.
///
/// Holds the attacker's RNG (for noise processes) and the slowly varying
/// grid-wander state, so consecutive estimates are realistically correlated.
///
/// # Examples
///
/// ```
/// use hbm_sidechannel::{SideChannelConfig, VoltageSideChannel};
/// use hbm_units::Power;
///
/// let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 1);
/// let err = sc.estimate(Power::from_kilowatts(5.0)) - Power::from_kilowatts(5.0);
/// assert!(err.abs() < Power::from_kilowatts(0.5));
/// ```
#[derive(Debug)]
pub struct VoltageSideChannel {
    config: SideChannelConfig,
    rng: StdRng,
    /// Current grid-wander offset in volts (AR(1) process).
    wander: f64,
    /// Multiplicative calibration biases drawn once at setup.
    dc_gain_bias: f64,
    ripple_gain_bias: f64,
}

impl VoltageSideChannel {
    /// Creates a side channel with the given configuration and RNG seed.
    pub fn new(config: SideChannelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let spread = config.calibration_error;
        let dc_gain_bias = 1.0 + spread * std_normal(&mut rng);
        let ripple_gain_bias = 1.0 + spread * std_normal(&mut rng);
        VoltageSideChannel {
            config,
            rng,
            wander: 0.0,
            dc_gain_bias,
            ripple_gain_bias,
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &SideChannelConfig {
        &self.config
    }

    /// Produces one estimate of the aggregate PDU power given the true value.
    ///
    /// Call once per simulation slot; the grid-wander state advances each
    /// call.
    pub fn estimate(&mut self, true_total: Power) -> Power {
        let cfg = &self.config;
        let n = cfg.samples_per_estimate.max(1) as f64;
        let avg_factor = n.sqrt();

        // Slow grid wander: AR(1) with a long time constant.
        self.wander = 0.995 * self.wander + cfg.grid_wander_volts * 0.1 * std_normal(&mut self.rng);

        // --- DC sag path ---
        let true_v = cfg.line.outlet_volts(true_total) + self.wander;
        let sensed_v = cfg.dc_adc.quantize(true_v)
            + cfg.dc_adc.lsb_volts() / avg_factor * std_normal(&mut self.rng);
        let p_dc = cfg.line.power_from_outlet_volts(sensed_v) * self.dc_gain_bias;

        // --- PFC ripple path ---
        let amp_mv = cfg.ripple.amplitude_mv(true_total)
            + cfg.ripple.process_noise_mv / avg_factor * std_normal(&mut self.rng);
        let sensed_mv = cfg.ripple_adc.quantize(amp_mv / 1000.0) * 1000.0;
        let p_ripple = cfg.ripple.power_from_amplitude(sensed_mv) * self.ripple_gain_bias;

        // --- Fusion ---
        // The ripple path is the workhorse (robust to grid wander); the DC
        // path is a sanity anchor. Weights follow the inverse error
        // variances of the two paths under the default calibration.
        let fused = p_ripple * 0.9 + p_dc * 0.1;

        let jammed = fused + cfg.extra_noise * std_normal(&mut self.rng);
        jammed.positive_part()
    }

    /// Runs the channel over a whole series and returns `(estimate, error)`
    /// pairs, as used for the Fig. 5(b) distribution.
    pub fn estimate_series(&mut self, truth: &[Power]) -> Vec<(Power, Power)> {
        truth
            .iter()
            .map(|&p| {
                let est = self.estimate(p);
                (est, est - p)
            })
            .collect()
    }
}

/// One standard-normal draw via Box–Muller (rand ships no Gaussian sampler
/// in the approved dependency set).
fn std_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_truth() {
        let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 7);
        for kw in [3.0, 5.0, 6.5, 7.5] {
            let p = Power::from_kilowatts(kw);
            let est = sc.estimate(p);
            assert!(
                (est - p).abs() < Power::from_kilowatts(0.5),
                "estimate {est} too far from {p}"
            );
        }
    }

    #[test]
    fn default_error_mostly_within_five_percent() {
        // The paper's Fig. 5(b) shows tightly concentrated errors; require
        // ≥90 % of estimates within ±5 % at a typical 6 kW operating point.
        let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 11);
        let truth = vec![Power::from_kilowatts(6.0); 2000];
        let pairs = sc.estimate_series(&truth);
        let within = pairs
            .iter()
            .filter(|(_, e)| e.abs() <= Power::from_kilowatts(0.3))
            .count();
        assert!(
            within as f64 / pairs.len() as f64 > 0.9,
            "only {within}/2000 within ±5 %"
        );
    }

    #[test]
    fn extra_noise_degrades_accuracy() {
        let clean_cfg = SideChannelConfig::paper_default();
        let noisy_cfg = clean_cfg.with_extra_noise(Power::from_kilowatts(0.6));
        let truth = vec![Power::from_kilowatts(6.0); 3000];
        let rmse = |cfg: SideChannelConfig| {
            let mut sc = VoltageSideChannel::new(cfg, 5);
            let pairs = sc.estimate_series(&truth);
            (pairs
                .iter()
                .map(|(_, e)| e.as_kilowatts().powi(2))
                .sum::<f64>()
                / pairs.len() as f64)
                .sqrt()
        };
        let clean = rmse(clean_cfg);
        let noisy = rmse(noisy_cfg);
        assert!(
            noisy > clean * 2.0,
            "jamming should clearly degrade the channel: {clean} vs {noisy}"
        );
    }

    #[test]
    fn estimates_never_negative() {
        let cfg = SideChannelConfig::paper_default().with_extra_noise(Power::from_kilowatts(2.0));
        let mut sc = VoltageSideChannel::new(cfg, 3);
        for _ in 0..500 {
            assert!(sc.estimate(Power::from_kilowatts(0.2)) >= Power::ZERO);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SideChannelConfig::paper_default();
        let mut a = VoltageSideChannel::new(cfg, 9);
        let mut b = VoltageSideChannel::new(cfg, 9);
        for kw in [1.0, 4.0, 7.0] {
            let p = Power::from_kilowatts(kw);
            assert_eq!(a.estimate(p), b.estimate(p));
        }
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
