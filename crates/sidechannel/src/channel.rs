//! The attacker's end-to-end load estimator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hbm_units::Power;

use crate::math::{draw_uniform_pair, std_normal};
use crate::{Adc, PduLine, PfcRipple};

/// Number of standard-normal draws consumed by one [`VoltageSideChannel::estimate`].
pub const NORMALS_PER_ESTIMATE: usize = 4;

/// Configuration of the attacker's voltage side channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SideChannelConfig {
    /// Electrical model of the shared feed.
    pub line: PduLine,
    /// PFC ripple model.
    pub ripple: PfcRipple,
    /// ADC used on the DC (sag) path.
    pub dc_adc: Adc,
    /// ADC used on the filtered ripple path.
    pub ripple_adc: Adc,
    /// Standard deviation of slow grid-voltage wander, in volts. This is the
    /// dominant disturbance on the DC path.
    pub grid_wander_volts: f64,
    /// Relative calibration error of the attacker's gain estimates (e.g.
    /// 0.02 = gains known to within 2 %).
    pub calibration_error: f64,
    /// Number of raw samples averaged per estimate; averaging shrinks the
    /// per-sample noise by `1/√n`.
    pub samples_per_estimate: u32,
    /// Extra zero-mean Gaussian noise added to the final estimate. Zero by
    /// default; raised to model operator jamming (Section VII-A) and the
    /// Fig. 12(b) sensitivity sweep.
    pub extra_noise: Power,
}

impl SideChannelConfig {
    /// Default calibration matching the paper's "high accuracy" channel
    /// (estimation error within a few hundred watts on an 8 kW feed).
    pub fn paper_default() -> Self {
        SideChannelConfig {
            line: PduLine::paper_default(),
            ripple: PfcRipple::paper_default(),
            dc_adc: Adc::paper_default(),
            ripple_adc: Adc::ripple_default(),
            grid_wander_volts: 0.2,
            calibration_error: 0.015,
            samples_per_estimate: 64,
            extra_noise: Power::ZERO,
        }
    }

    /// Returns a copy with a different extra-noise level (Fig. 12b).
    pub fn with_extra_noise(mut self, noise: Power) -> Self {
        self.extra_noise = noise;
        self
    }
}

/// A stateful estimator of the aggregate PDU load.
///
/// Holds the attacker's RNG (for noise processes) and the slowly varying
/// grid-wander state, so consecutive estimates are realistically correlated.
///
/// # Examples
///
/// ```
/// use hbm_sidechannel::{SideChannelConfig, VoltageSideChannel};
/// use hbm_units::Power;
///
/// let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 1);
/// let err = sc.estimate(Power::from_kilowatts(5.0)) - Power::from_kilowatts(5.0);
/// assert!(err.abs() < Power::from_kilowatts(0.5));
/// ```
#[derive(Debug, Clone)]
pub struct VoltageSideChannel {
    config: SideChannelConfig,
    rng: StdRng,
    /// Current grid-wander offset in volts (AR(1) process).
    wander: f64,
    /// Multiplicative calibration biases drawn once at setup.
    dc_gain_bias: f64,
    ripple_gain_bias: f64,
}

impl VoltageSideChannel {
    /// Creates a side channel with the given configuration and RNG seed.
    pub fn new(config: SideChannelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let spread = config.calibration_error;
        let dc_gain_bias = 1.0 + spread * std_normal(&mut rng);
        let ripple_gain_bias = 1.0 + spread * std_normal(&mut rng);
        VoltageSideChannel {
            config,
            rng,
            wander: 0.0,
            dc_gain_bias,
            ripple_gain_bias,
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &SideChannelConfig {
        &self.config
    }

    /// Produces one estimate of the aggregate PDU power given the true value.
    ///
    /// Call once per simulation slot; the grid-wander state advances each
    /// call.
    pub fn estimate(&mut self, true_total: Power) -> Power {
        let mut u = [0.0; 2 * NORMALS_PER_ESTIMATE];
        self.draw_uniforms(&mut u);
        let mut z = [0.0; NORMALS_PER_ESTIMATE];
        crate::math::box_muller_slice(
            &u[..NORMALS_PER_ESTIMATE],
            &u[NORMALS_PER_ESTIMATE..],
            &mut z,
        );
        self.estimate_with_normals(true_total, &z)
    }

    /// Draws the `2 ×` [`NORMALS_PER_ESTIMATE`] uniform variates feeding one
    /// estimate into `out` (`u1` values first, then `u2` values).
    ///
    /// The noise processes are independent of the measured load, so the
    /// draws can be hoisted ahead of the measurement: `draw_uniforms` +
    /// Box–Muller + [`estimate_with_normals`](Self::estimate_with_normals)
    /// consumes the RNG identically to [`estimate`](Self::estimate) and
    /// produces bit-identical results. The batch engine uses this split to
    /// run the Box–Muller transform as one packed pass over all lanes.
    pub fn draw_uniforms(&mut self, out: &mut [f64; 2 * NORMALS_PER_ESTIMATE]) {
        for i in 0..NORMALS_PER_ESTIMATE {
            let (u1, u2) = draw_uniform_pair(&mut self.rng);
            out[i] = u1;
            out[NORMALS_PER_ESTIMATE + i] = u2;
        }
    }

    /// Applies the measurement model given pre-drawn standard normals
    /// (see [`draw_uniforms`](Self::draw_uniforms)). Advances the
    /// grid-wander state exactly as [`estimate`](Self::estimate) does.
    ///
    /// The math lives in `crate::lanes::estimate_kernel` — one op-for-op
    /// IEEE-754 sequence shared with the packed
    /// [`ChannelLanes`](crate::ChannelLanes) passes, so scalar and batched
    /// stepping produce bit-identical estimates.
    pub fn estimate_with_normals(
        &mut self,
        true_total: Power,
        z: &[f64; NORMALS_PER_ESTIMATE],
    ) -> Power {
        let p = crate::lanes::LaneParams::derive(
            &self.config,
            self.dc_gain_bias,
            self.ripple_gain_bias,
        );
        Power::from_watts(crate::lanes::estimate_kernel(
            &p,
            &mut self.wander,
            true_total.as_watts(),
            *z,
        ))
    }

    /// The raw RNG state words (for [`ChannelLanes`](crate::ChannelLanes)'s
    /// column-wise layout and checkpoint serialization).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Current grid-wander offset, in volts.
    pub fn wander_volts(&self) -> f64 {
        self.wander
    }

    /// The `(dc, ripple)` calibration biases drawn at setup.
    pub(crate) fn gain_biases(&self) -> (f64, f64) {
        (self.dc_gain_bias, self.ripple_gain_bias)
    }

    /// Overwrites the RNG and wander state (used by
    /// [`ChannelLanes::sync_back`](crate::ChannelLanes::sync_back), checkpoint
    /// restore, and the rejection tests); configuration and calibration
    /// biases are immutable — they re-derive deterministically from the seed
    /// at construction.
    pub fn restore_noise_state(&mut self, rng: [u64; 4], wander: f64) {
        self.rng = StdRng::from_state(rng);
        self.wander = wander;
    }

    /// Runs the channel over a whole series and returns `(estimate, error)`
    /// pairs, as used for the Fig. 5(b) distribution.
    pub fn estimate_series(&mut self, truth: &[Power]) -> Vec<(Power, Power)> {
        truth
            .iter()
            .map(|&p| {
                let est = self.estimate(p);
                (est, est - p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_truth() {
        let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 7);
        for kw in [3.0, 5.0, 6.5, 7.5] {
            let p = Power::from_kilowatts(kw);
            let est = sc.estimate(p);
            assert!(
                (est - p).abs() < Power::from_kilowatts(0.5),
                "estimate {est} too far from {p}"
            );
        }
    }

    #[test]
    fn default_error_mostly_within_five_percent() {
        // The paper's Fig. 5(b) shows tightly concentrated errors; require
        // ≥90 % of estimates within ±5 % at a typical 6 kW operating point.
        let mut sc = VoltageSideChannel::new(SideChannelConfig::paper_default(), 11);
        let truth = vec![Power::from_kilowatts(6.0); 2000];
        let pairs = sc.estimate_series(&truth);
        let within = pairs
            .iter()
            .filter(|(_, e)| e.abs() <= Power::from_kilowatts(0.3))
            .count();
        assert!(
            within as f64 / pairs.len() as f64 > 0.9,
            "only {within}/2000 within ±5 %"
        );
    }

    #[test]
    fn extra_noise_degrades_accuracy() {
        let clean_cfg = SideChannelConfig::paper_default();
        let noisy_cfg = clean_cfg.with_extra_noise(Power::from_kilowatts(0.6));
        let truth = vec![Power::from_kilowatts(6.0); 3000];
        let rmse = |cfg: SideChannelConfig| {
            let mut sc = VoltageSideChannel::new(cfg, 5);
            let pairs = sc.estimate_series(&truth);
            (pairs
                .iter()
                .map(|(_, e)| e.as_kilowatts().powi(2))
                .sum::<f64>()
                / pairs.len() as f64)
                .sqrt()
        };
        let clean = rmse(clean_cfg);
        let noisy = rmse(noisy_cfg);
        assert!(
            noisy > clean * 2.0,
            "jamming should clearly degrade the channel: {clean} vs {noisy}"
        );
    }

    #[test]
    fn estimates_never_negative() {
        let cfg = SideChannelConfig::paper_default().with_extra_noise(Power::from_kilowatts(2.0));
        let mut sc = VoltageSideChannel::new(cfg, 3);
        for _ in 0..500 {
            assert!(sc.estimate(Power::from_kilowatts(0.2)) >= Power::ZERO);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SideChannelConfig::paper_default();
        let mut a = VoltageSideChannel::new(cfg, 9);
        let mut b = VoltageSideChannel::new(cfg, 9);
        for kw in [1.0, 4.0, 7.0] {
            let p = Power::from_kilowatts(kw);
            assert_eq!(a.estimate(p), b.estimate(p));
        }
    }

    #[test]
    fn split_estimate_matches_monolithic() {
        let cfg = SideChannelConfig::paper_default().with_extra_noise(Power::from_kilowatts(0.1));
        let mut whole = VoltageSideChannel::new(cfg, 21);
        let mut split = VoltageSideChannel::new(cfg, 21);
        for kw in [2.0, 4.5, 6.0, 7.8, 0.3] {
            let p = Power::from_kilowatts(kw);
            let mut u = [0.0; 2 * NORMALS_PER_ESTIMATE];
            split.draw_uniforms(&mut u);
            let mut z = [0.0; NORMALS_PER_ESTIMATE];
            crate::math::box_muller_slice(
                &u[..NORMALS_PER_ESTIMATE],
                &u[NORMALS_PER_ESTIMATE..],
                &mut z,
            );
            let a = whole.estimate(p);
            let b = split.estimate_with_normals(p, &z);
            assert_eq!(a.as_watts().to_bits(), b.as_watts().to_bits());
        }
    }
}
