//! Voltage side channel for estimating co-located tenants' power draw.
//!
//! To time its attacks, the malicious tenant must know when the benign
//! tenants' aggregate load is high — information the operator does not share.
//! The paper adopts the *voltage side channel* of Islam & Ren (CCS'18): every
//! server connected to a shared PDU sees a supply voltage that sags with the
//! total current through the shared cable (Ohm's law), and the high-frequency
//! ripple injected by power-factor-correction (PFC) circuits has an amplitude
//! strongly correlated with the total server load. An ADC on the attacker's
//! own power input is enough to recover the aggregate power with a few
//! percent error (Fig. 5b).
//!
//! This crate models that chain at the feature level:
//!
//! * [`PduLine`] — electrical model of the shared feed (nominal voltage,
//!   cable resistance) producing the DC sag;
//! * [`PfcRipple`] — load-correlated ripple amplitude with process noise;
//! * [`Adc`] — quantization and input-referred noise of the attacker's
//!   sampler;
//! * [`VoltageSideChannel`] — the attacker's calibrated estimator combining
//!   both features, with optional extra noise standing in for operator
//!   jamming (defense of Section VII-A / sensitivity of Fig. 12b).
//!
//! # Examples
//!
//! ```
//! use hbm_sidechannel::{SideChannelConfig, VoltageSideChannel};
//! use hbm_units::Power;
//!
//! let mut channel = VoltageSideChannel::new(SideChannelConfig::paper_default(), 42);
//! let truth = Power::from_kilowatts(6.0);
//! let estimate = channel.estimate(truth);
//! assert!((estimate - truth).abs() < Power::from_kilowatts(0.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod channel;
mod lanes;
pub mod math;
mod signal;
pub mod stats;
pub mod waveform;

pub use adc::Adc;
pub use channel::{SideChannelConfig, VoltageSideChannel, NORMALS_PER_ESTIMATE};
pub use lanes::ChannelLanes;
pub use signal::{PduLine, PfcRipple};
