//! Time-domain voltage waveform synthesis and ripple extraction.
//!
//! The higher-level [`crate::VoltageSideChannel`] works at the *feature*
//! level (DC sag + ripple amplitude). The original attack (Islam & Ren,
//! CCS'18) works on raw ADC samples: it band-passes the PFC switching band
//! out of the mains waveform and measures its amplitude. This module
//! provides that layer — a synthesizer for the voltage waveform an attacker
//! would sample, and a single-bin DFT (Goertzel) amplitude extractor — and
//! is used in tests to validate that the feature-level model matches what
//! full signal processing would recover.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use hbm_units::Power;

use crate::{PduLine, PfcRipple};

/// Parameters of the synthesized PDU voltage waveform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformConfig {
    /// Mains frequency, Hz.
    pub mains_hz: f64,
    /// PFC switching frequency, Hz (tens of kHz on commodity PSUs).
    pub pfc_hz: f64,
    /// ADC sampling rate, Hz (must be well above twice `pfc_hz`).
    pub sample_rate_hz: f64,
    /// RMS of broadband sensor/line noise, volts.
    pub noise_volts: f64,
    /// Electrical model of the shared line (provides the DC/RMS level).
    pub line: PduLine,
    /// Ripple model (provides the amplitude–load relation).
    pub ripple: PfcRipple,
}

impl WaveformConfig {
    /// A 60 Hz feed with a 65 kHz PFC band sampled at 250 kS/s — the NI-DAQ
    /// class setup of the paper's prototype.
    pub fn paper_default() -> Self {
        WaveformConfig {
            mains_hz: 60.0,
            pfc_hz: 65_000.0,
            sample_rate_hz: 250_000.0,
            noise_volts: 0.05,
            line: PduLine::paper_default(),
            ripple: PfcRipple::paper_default(),
        }
    }

    /// Validates signal-processing feasibility.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint (Nyquist, positive
    /// frequencies, finite noise).
    pub fn validate(&self) -> Result<(), String> {
        if self.mains_hz <= 0.0 || self.pfc_hz <= 0.0 {
            return Err("frequencies must be positive".into());
        }
        if self.sample_rate_hz < 2.5 * self.pfc_hz {
            return Err("sample rate must comfortably exceed Nyquist for the PFC band".into());
        }
        if !self.noise_volts.is_finite() || self.noise_volts < 0.0 {
            return Err("noise must be non-negative".into());
        }
        Ok(())
    }
}

/// Synthesizes `samples` ADC samples of the PDU voltage while `total` power
/// flows: mains sine at the sagged RMS level, the load-correlated PFC
/// ripple, and broadband noise.
///
/// # Panics
///
/// Panics if the config is invalid or `samples` is zero.
pub fn synthesize(config: &WaveformConfig, total: Power, samples: usize, seed: u64) -> Vec<f64> {
    config.validate().expect("invalid waveform config");
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let rms = config.line.outlet_volts(total);
    let mains_peak = rms * std::f64::consts::SQRT_2;
    let ripple_peak = config.ripple.amplitude_mv(total) / 1000.0;
    let dt = 1.0 / config.sample_rate_hz;
    let w_mains = std::f64::consts::TAU * config.mains_hz;
    let w_pfc = std::f64::consts::TAU * config.pfc_hz;
    (0..samples)
        .map(|k| {
            let t = k as f64 * dt;
            let noise = config.noise_volts * (rng.random::<f64>() * 2.0 - 1.0) * 1.732;
            mains_peak * (w_mains * t).sin() + ripple_peak * (w_pfc * t).sin() + noise
        })
        .collect()
}

/// Amplitude of the `target_hz` component of `signal` via the Goertzel
/// single-bin DFT.
///
/// # Panics
///
/// Panics if `signal` is empty or frequencies are non-positive.
pub fn goertzel_amplitude(signal: &[f64], sample_rate_hz: f64, target_hz: f64) -> f64 {
    assert!(!signal.is_empty(), "empty signal");
    assert!(
        sample_rate_hz > 0.0 && target_hz > 0.0,
        "frequencies must be positive"
    );
    let n = signal.len() as f64;
    // Generalized Goertzel: use the exact target frequency rather than the
    // nearest DFT bin. The result is exact when the window holds an integer
    // number of cycles (callers should truncate accordingly — see
    // `power_from_waveform`).
    let w = std::f64::consts::TAU * target_hz / sample_rate_hz;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in signal {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2;
    2.0 * power.max(0.0).sqrt() / n
}

/// Recovers the aggregate PDU power from a raw waveform: high-pass the
/// mains component away (first difference — the ~300 V mains peak would
/// otherwise leak into the PFC bin), extract the PFC ripple amplitude with
/// [`goertzel_amplitude`], compensate the filter gain, and invert the
/// ripple model — the full signal-processing path of the original attack.
///
/// # Panics
///
/// Panics if `signal` has fewer than two samples.
pub fn power_from_waveform(config: &WaveformConfig, signal: &[f64]) -> Power {
    assert!(signal.len() >= 2, "need at least two samples");
    // First-difference high-pass: -60 dB at 60 Hz, ×1.45 at 65 kHz.
    let mut filtered: Vec<f64> = signal.windows(2).map(|w| w[1] - w[0]).collect();
    // Truncate to an integer number of PFC cycles so the rectangular window
    // is periodic in the target tone (no scalloping loss).
    let cycles_per_sample = config.pfc_hz / config.sample_rate_hz;
    let cycles = (filtered.len() as f64 * cycles_per_sample).floor();
    let usable = (cycles / cycles_per_sample).round() as usize;
    filtered.truncate(usable.max(2).min(filtered.len()));
    let gain = 2.0 * (std::f64::consts::PI * config.pfc_hz / config.sample_rate_hz).sin();
    let amplitude_v = goertzel_amplitude(&filtered, config.sample_rate_hz, config.pfc_hz) / gain;
    config.ripple.power_from_amplitude(amplitude_v * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goertzel_measures_a_pure_tone() {
        let fs = 250_000.0;
        let f = 65_000.0;
        let n = 2500;
        let signal: Vec<f64> = (0..n)
            .map(|k| 0.042 * (std::f64::consts::TAU * f * k as f64 / fs).sin())
            .collect();
        let a = goertzel_amplitude(&signal, fs, f);
        assert!((a - 0.042).abs() < 0.002, "amplitude {a}");
    }

    #[test]
    fn goertzel_rejects_off_band_energy() {
        let fs = 250_000.0;
        let n = 2500;
        // Strong 60 Hz mains, nothing at the PFC band.
        let signal: Vec<f64> = (0..n)
            .map(|k| 300.0 * (std::f64::consts::TAU * 60.0 * k as f64 / fs).sin())
            .collect();
        let a = goertzel_amplitude(&signal, fs, 65_000.0);
        assert!(a < 1.0, "mains leakage {a} too high");
    }

    #[test]
    fn waveform_pipeline_recovers_the_load() {
        let config = WaveformConfig::paper_default();
        for kw in [2.0, 5.0, 7.5] {
            let truth = Power::from_kilowatts(kw);
            // 10 ms of samples (one PFC-band analysis window).
            let signal = synthesize(&config, truth, 2500, 42);
            let recovered = power_from_waveform(&config, &signal);
            assert!(
                (recovered - truth).abs() < Power::from_kilowatts(0.5),
                "{kw} kW recovered as {recovered}"
            );
        }
    }

    #[test]
    fn waveform_matches_feature_level_model() {
        // The feature-level ripple amplitude and the one recovered from the
        // full waveform must agree — this validates using the cheap model
        // in year-long simulations.
        let config = WaveformConfig::paper_default();
        let truth = Power::from_kilowatts(6.0);
        let signal = synthesize(&config, truth, 5000, 7);
        let recovered = power_from_waveform(&config, &signal);
        let model = config
            .ripple
            .power_from_amplitude(config.ripple.amplitude_mv(truth));
        assert!(
            (recovered - model).abs() < model * 0.1,
            "waveform {recovered} vs model {model}"
        );
    }

    #[test]
    fn more_load_more_ripple_in_the_waveform() {
        let config = WaveformConfig::paper_default();
        let low = synthesize(&config, Power::from_kilowatts(2.0), 2500, 1);
        let high = synthesize(&config, Power::from_kilowatts(7.5), 2500, 1);
        let a_low = goertzel_amplitude(&low, config.sample_rate_hz, config.pfc_hz);
        let a_high = goertzel_amplitude(&high, config.sample_rate_hz, config.pfc_hz);
        assert!(a_high > a_low);
    }

    #[test]
    fn nyquist_violation_rejected() {
        let mut config = WaveformConfig::paper_default();
        config.sample_rate_hz = 100_000.0; // < 2.5 × 65 kHz
        assert!(config.validate().is_err());
    }
}
