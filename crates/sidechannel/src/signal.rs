//! Electrical models of the shared PDU feed and the PFC ripple.

use serde::{Deserialize, Serialize};

use hbm_units::Power;

/// Electrical model of the shared PDU supply line.
///
/// All tenants' servers hang off one feed; the voltage any server sees is the
/// nominal supply minus the IR drop across the shared cable, so the *total*
/// current (∝ total power) is readable from any outlet — the physical root of
/// the side channel (Fig. 5a of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PduLine {
    /// Nominal RMS supply voltage at the PDU input, in volts.
    pub nominal_volts: f64,
    /// Effective resistance of the shared cable/busbar, in ohms.
    pub cable_ohms: f64,
}

impl PduLine {
    /// A 208 V feed with a realistic tens-of-milliohms shared cable.
    pub fn paper_default() -> Self {
        PduLine {
            nominal_volts: 208.0,
            cable_ohms: 0.06,
        }
    }

    /// Total RMS current for a given aggregate power, in amperes.
    pub fn current_amps(&self, total: Power) -> f64 {
        total.as_watts() / self.nominal_volts
    }

    /// Voltage observed at a server outlet when `total` power flows.
    pub fn outlet_volts(&self, total: Power) -> f64 {
        self.nominal_volts - self.current_amps(total) * self.cable_ohms
    }

    /// Inverts [`PduLine::outlet_volts`]: the aggregate power that would
    /// produce the observed outlet voltage.
    pub fn power_from_outlet_volts(&self, volts: f64) -> Power {
        let amps = (self.nominal_volts - volts) / self.cable_ohms;
        Power::from_watts(amps * self.nominal_volts)
    }
}

/// Load-correlated amplitude of the PFC switching ripple.
///
/// Every modern server PSU runs active power-factor correction whose
/// switching residue leaks onto the feed; its amplitude grows with the
/// aggregate load. The paper's estimator keys off this ripple because it is
/// easier to separate from slow grid-voltage wander than the DC sag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PfcRipple {
    /// Ripple amplitude at zero load, in millivolts.
    pub baseline_mv: f64,
    /// Amplitude gain, in millivolts per kilowatt of aggregate load.
    pub gain_mv_per_kw: f64,
    /// Standard deviation of amplitude process noise, in millivolts.
    pub process_noise_mv: f64,
}

impl PfcRipple {
    /// Calibration in the range reported for commodity PSUs.
    pub fn paper_default() -> Self {
        PfcRipple {
            baseline_mv: 18.0,
            gain_mv_per_kw: 42.0,
            process_noise_mv: 2.0,
        }
    }

    /// Mean ripple amplitude (mV) at a given aggregate power.
    pub fn amplitude_mv(&self, total: Power) -> f64 {
        self.baseline_mv + self.gain_mv_per_kw * total.as_kilowatts()
    }

    /// Inverts [`PfcRipple::amplitude_mv`] (clamping below the baseline).
    pub fn power_from_amplitude(&self, amplitude_mv: f64) -> Power {
        Power::from_kilowatts(((amplitude_mv - self.baseline_mv) / self.gain_mv_per_kw).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlet_voltage_sags_with_load() {
        let line = PduLine::paper_default();
        let v0 = line.outlet_volts(Power::ZERO);
        let v8 = line.outlet_volts(Power::from_kilowatts(8.0));
        assert_eq!(v0, 208.0);
        assert!(v8 < v0);
        // 8 kW at 208 V ≈ 38.5 A; over 60 mΩ that's ≈ 2.3 V of sag.
        assert!((v0 - v8 - 2.307).abs() < 0.01);
    }

    #[test]
    fn line_inversion_round_trips() {
        let line = PduLine::paper_default();
        for kw in [0.5, 2.0, 6.0, 8.0] {
            let p = Power::from_kilowatts(kw);
            let v = line.outlet_volts(p);
            let back = line.power_from_outlet_volts(v);
            assert!((back - p).abs() < Power::from_watts(1e-6));
        }
    }

    #[test]
    fn ripple_grows_linearly_with_load() {
        let r = PfcRipple::paper_default();
        let a0 = r.amplitude_mv(Power::ZERO);
        let a4 = r.amplitude_mv(Power::from_kilowatts(4.0));
        let a8 = r.amplitude_mv(Power::from_kilowatts(8.0));
        assert!((a8 - a4 - (a4 - a0)).abs() < 1e-9, "linearity");
        assert_eq!(a0, 18.0);
    }

    #[test]
    fn ripple_inversion_round_trips_and_clamps() {
        let r = PfcRipple::paper_default();
        let p = Power::from_kilowatts(6.0);
        let back = r.power_from_amplitude(r.amplitude_mv(p));
        assert!((back - p).abs() < Power::from_watts(1e-6));
        assert_eq!(r.power_from_amplitude(0.0), Power::ZERO);
    }
}
