//! Small statistics helpers shared by the experiment harness.
//!
//! The paper reports probability distributions (Fig. 5b, temperature
//! distributions), percentiles (95th-percentile latency), and time-fraction
//! metrics. This module provides the few primitives those need, with exact,
//! easily testable semantics.

use serde::{Deserialize, Serialize};

/// A fixed-range histogram over `f64` samples.
///
/// # Examples
///
/// ```
/// use hbm_sidechannel::stats::Histogram;
///
/// let mut h = Histogram::new(-1.0, 1.0, 4);
/// for x in [-0.9, -0.1, 0.1, 0.2, 0.9, 2.0] {
///     h.add(x);
/// }
/// assert_eq!(h.total(), 6);
/// assert_eq!(h.overflow(), 1);
/// assert!((h.fraction_within(-0.5, 0.5) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width()) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Overwrites the counts wholesale (range and bin count are unchanged).
    ///
    /// This is the write-back half of keeping many same-shaped histograms in
    /// a packed lane-major matrix: accumulate externally with the exact
    /// [`add`](Histogram::add) binning arithmetic, then flow the counts back.
    ///
    /// # Panics
    ///
    /// Panics if `counts` has a different number of bins.
    pub fn set_counts(&mut self, counts: &[u64], underflow: u64, overflow: u64) {
        assert_eq!(counts.len(), self.bins.len(), "bin count mismatch");
        self.bins.copy_from_slice(counts);
        self.underflow = underflow;
        self.overflow = overflow;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins.len(), "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// Probability mass per bin (empty histogram yields all zeros).
    pub fn pdf(&self) -> Vec<f64> {
        let n = self.total();
        if n == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&c| c as f64 / n as f64).collect()
    }

    /// Fraction of samples falling in `[a, b)`, counted by bin midpoint.
    pub fn fraction_within(&self, a: f64, b: f64) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            let mid = self.bin_center(i);
            if mid >= a && mid < b {
                hits += c;
            }
        }
        hits as f64 / n as f64
    }
}

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "summary of empty sample set");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "summary requires finite samples"
        );
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Summary {
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }
}

/// Percentile (nearest-rank with linear interpolation) of pre-sorted data.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Convenience: percentile of unsorted data.
///
/// # Panics
///
/// Panics if `samples` is empty, contains non-finite values, or `p` is
/// outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 1.6, 9.99]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([-1.0, 0.2, 1.0, 5.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn histogram_pdf_sums_to_at_most_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.2, 0.3, 0.9, 2.0]);
        let sum: f64 = h.pdf().iter().sum();
        assert!((sum - 0.8).abs() < 1e-12); // one overflow of five samples
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 4.0);
        assert_eq!(percentile(&data, 50.0), 2.5);
        assert!((percentile(&data, 95.0) - 3.85).abs() < 1e-12);
    }

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[5.0; 20]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p95, 5.0);
        assert_eq!((s.min, s.max), (5.0, 5.0));
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
