//! Analog-to-digital converter model for the attacker's voltage tap.

use serde::{Deserialize, Serialize};

/// A simple ADC: uniform quantization over a full-scale range plus
/// input-referred Gaussian noise (applied by the caller; the ADC itself is
/// deterministic so it can be tested exactly).
///
/// The paper's prototype uses an NI DAQ as an ADC proxy; a production attack
/// would use a small ADC soldered onto the server's PSU input (demonstrated
/// feasible by the VoltKey work it cites).
///
/// # Examples
///
/// ```
/// use hbm_sidechannel::Adc;
///
/// let adc = Adc::new(12, 0.0, 250.0);
/// let code = adc.sample(208.3);
/// let back = adc.to_volts(code);
/// assert!((back - 208.3).abs() < adc.lsb_volts());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    bits: u8,
    min_volts: f64,
    max_volts: f64,
}

impl Adc {
    /// Creates an ADC with `bits` of resolution over `[min_volts, max_volts]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 24, or the range is empty.
    pub fn new(bits: u8, min_volts: f64, max_volts: f64) -> Self {
        assert!(
            (1..=24).contains(&bits),
            "ADC resolution must be 1..=24 bits"
        );
        assert!(max_volts > min_volts, "ADC range must be non-empty");
        Adc {
            bits,
            min_volts,
            max_volts,
        }
    }

    /// A 12-bit ADC spanning 0–250 V, adequate for the DC sag feature.
    pub fn paper_default() -> Self {
        Adc::new(12, 0.0, 250.0)
    }

    /// A 16-bit ADC spanning ±0.5 V, used for the ripple amplitude after
    /// high-pass filtering.
    pub fn ripple_default() -> Self {
        Adc::new(16, -0.5, 0.5)
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Lower end of the input range, in volts.
    pub fn min_volts(&self) -> f64 {
        self.min_volts
    }

    /// Upper end of the input range, in volts.
    pub fn max_volts(&self) -> f64 {
        self.max_volts
    }

    /// Size of one least-significant bit, in volts.
    pub fn lsb_volts(&self) -> f64 {
        (self.max_volts - self.min_volts) / self.levels() as f64
    }

    /// Quantizes an input voltage to a code, clamping to the range.
    pub fn sample(&self, volts: f64) -> u32 {
        let clamped = volts.clamp(self.min_volts, self.max_volts);
        let code = ((clamped - self.min_volts) / self.lsb_volts()).floor() as u32;
        code.min(self.levels() - 1)
    }

    /// Reconstructs the (mid-tread) voltage for a code.
    pub fn to_volts(&self, code: u32) -> f64 {
        self.min_volts + (code as f64 + 0.5) * self.lsb_volts()
    }

    /// Quantize-and-reconstruct in one step.
    pub fn quantize(&self, volts: f64) -> f64 {
        self.to_volts(self.sample(volts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_error_bounded_by_lsb() {
        let adc = Adc::paper_default();
        for i in 0..1000 {
            let v = 0.1 + i as f64 * 0.2497;
            let err = (adc.quantize(v) - v).abs();
            assert!(err <= adc.lsb_volts(), "error {err} above one LSB");
        }
    }

    #[test]
    fn clamps_out_of_range_inputs() {
        let adc = Adc::new(8, 0.0, 10.0);
        assert_eq!(adc.sample(-5.0), 0);
        assert_eq!(adc.sample(50.0), adc.levels() - 1);
    }

    #[test]
    fn lsb_matches_resolution() {
        let adc = Adc::new(12, 0.0, 250.0);
        assert_eq!(adc.levels(), 4096);
        assert!((adc.lsb_volts() - 250.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_codes() {
        let adc = Adc::new(10, -1.0, 1.0);
        let mut prev = 0;
        for i in 0..=200 {
            let v = -1.0 + i as f64 * 0.01;
            let c = adc.sample(v);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn rejects_zero_bits() {
        let _ = Adc::new(0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn rejects_empty_range() {
        let _ = Adc::new(8, 1.0, 1.0);
    }
}
