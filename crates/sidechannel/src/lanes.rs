//! Structure-of-arrays batch layout for many voltage side channels.
//!
//! [`ChannelLanes`] holds N independent [`VoltageSideChannel`]s column-wise:
//! the xoshiro256++ state words, the AR(1) grid-wander state, and the
//! measurement-model parameters (flattened to plain `f64` invariants) each
//! live in their own dense array. The per-slot work then runs as two packed
//! passes over the lane dimension — [`draw_all`](ChannelLanes::draw_all)
//! steps every lane's generator in lockstep and
//! [`estimate_all`](ChannelLanes::estimate_all) applies the measurement
//! model — which LLVM auto-vectorizes because every load is unit-stride and
//! every op is a plain lane-wise `u64`/`f64` expression (no libm, no
//! `mul_add`).
//!
//! # Determinism contract
//!
//! Lane `i` consumes its RNG and computes its estimates with exactly the
//! operation sequence of the scalar channel it was built from:
//!
//! * [`VoltageSideChannel::estimate_with_normals`] routes through the same
//!   [`estimate_kernel`] the packed pass inlines, so scalar and batched
//!   estimates are the same IEEE-754 op sequence;
//! * the packed RNG sweep applies the textbook xoshiro256++ update per lane
//!   (same ops as the scalar generator), and the one-in-2⁵³
//!   subnormal-rejection case is replayed per lane from the saved pre-sweep
//!   state, reproducing the scalar rejection loop exactly.
//!
//! Results are therefore bit-identical whether a lane is stepped here or on
//! the source channel, at any batch width.

use rand::rngs::StdRng;

use hbm_units::Power;

use crate::channel::{SideChannelConfig, VoltageSideChannel, NORMALS_PER_ESTIMATE};
use crate::math::draw_uniform_pair;

/// `2⁻⁵³`, the scale mapping a 53-bit integer to a uniform in `[0, 1)`
/// (matches the vendored generator's `f64` sampling).
const U53_SCALE: f64 = 1.0 / 9_007_199_254_740_992.0;

/// The measurement model of one channel, flattened to the plain `f64`
/// invariants the hot kernel needs.
///
/// Derived from [`SideChannelConfig`] by [`LaneParams::derive`] — the same
/// derivation (and therefore bit-identical values) no matter how often or
/// where it runs, so precomputing at batch build time is value-identical to
/// the scalar channel re-deriving per call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneParams {
    /// Grid-wander innovation scale, `grid_wander_volts · 0.1`.
    pub wander_step: f64,
    pub nominal_volts: f64,
    pub cable_ohms: f64,
    pub dc_min_v: f64,
    pub dc_max_v: f64,
    pub dc_lsb_v: f64,
    /// `levels − 1` of the DC ADC, exactly representable (≤ 2²⁴ − 1).
    pub dc_levels_m1: f64,
    /// DC sampling-noise scale, `dc_lsb_v / √samples_per_estimate`.
    pub dc_noise_v: f64,
    pub rip_baseline_mv: f64,
    pub rip_gain_mv_per_kw: f64,
    /// Ripple process-noise scale, `process_noise_mv / √samples_per_estimate`.
    pub rip_noise_mv: f64,
    pub rip_min_v: f64,
    pub rip_max_v: f64,
    pub rip_lsb_v: f64,
    pub rip_levels_m1: f64,
    pub extra_noise_w: f64,
    pub dc_gain_bias: f64,
    pub ripple_gain_bias: f64,
}

impl LaneParams {
    /// Flattens a channel configuration plus its calibration biases.
    pub(crate) fn derive(
        cfg: &SideChannelConfig,
        dc_gain_bias: f64,
        ripple_gain_bias: f64,
    ) -> Self {
        let n = cfg.samples_per_estimate.max(1) as f64;
        let avg_factor = n.sqrt();
        LaneParams {
            wander_step: cfg.grid_wander_volts * 0.1,
            nominal_volts: cfg.line.nominal_volts,
            cable_ohms: cfg.line.cable_ohms,
            dc_min_v: cfg.dc_adc.min_volts(),
            dc_max_v: cfg.dc_adc.max_volts(),
            dc_lsb_v: cfg.dc_adc.lsb_volts(),
            dc_levels_m1: (cfg.dc_adc.levels() - 1) as f64,
            dc_noise_v: cfg.dc_adc.lsb_volts() / avg_factor,
            rip_baseline_mv: cfg.ripple.baseline_mv,
            rip_gain_mv_per_kw: cfg.ripple.gain_mv_per_kw,
            rip_noise_mv: cfg.ripple.process_noise_mv / avg_factor,
            rip_min_v: cfg.ripple_adc.min_volts(),
            rip_max_v: cfg.ripple_adc.max_volts(),
            rip_lsb_v: cfg.ripple_adc.lsb_volts(),
            rip_levels_m1: (cfg.ripple_adc.levels() - 1) as f64,
            extra_noise_w: cfg.extra_noise.as_watts(),
            dc_gain_bias,
            ripple_gain_bias,
        }
    }
}

/// Mid-tread quantization — the pure-`f64` image of `Adc::quantize`.
///
/// Bit-identical to `to_volts(sample(v))` for finite inputs: the clamped
/// offset divided by the LSB lies in `[0, levels]`, so its floor is an
/// exactly representable integer (levels ≤ 2²⁴), and the float `min`
/// against `levels − 1` coincides with the integer `min` the ADC performs.
/// Staying in `f64` keeps the expression branch-free and vectorizable.
#[inline(always)]
fn quantize(v: f64, min_v: f64, max_v: f64, lsb_v: f64, levels_m1: f64) -> f64 {
    // max/min instead of `f64::clamp`: identical for the finite inputs the
    // model produces, and free of clamp's bounds assert, whose panic branch
    // would keep the packed pass from vectorizing.
    let clamped = v.max(min_v).min(max_v);
    let code = ((clamped - min_v) / lsb_v).floor().min(levels_m1);
    min_v + (code + 0.5) * lsb_v
}

/// Advances the slow grid wander: AR(1) with a long time constant.
#[inline(always)]
fn wander_update(wander: f64, wander_step: f64, z0: f64) -> f64 {
    0.995 * wander + wander_step * z0
}

/// The measurement model given an already-advanced wander state — a pure
/// `f64` expression (reads only, no state writes), which lets the packed
/// pass stream every input read-only and vectorize without alias checks.
#[inline(always)]
fn estimate_body(p: &LaneParams, wander: f64, true_total_w: f64, z1: f64, z2: f64, z3: f64) -> f64 {
    // --- DC sag path ---
    let true_v = p.nominal_volts - true_total_w / p.nominal_volts * p.cable_ohms + wander;
    let sensed_v =
        quantize(true_v, p.dc_min_v, p.dc_max_v, p.dc_lsb_v, p.dc_levels_m1) + p.dc_noise_v * z1;
    let p_dc_w = (p.nominal_volts - sensed_v) / p.cable_ohms * p.nominal_volts * p.dc_gain_bias;

    // --- PFC ripple path ---
    let amp_mv =
        p.rip_baseline_mv + p.rip_gain_mv_per_kw * (true_total_w / 1e3) + p.rip_noise_mv * z2;
    let sensed_mv = quantize(
        amp_mv / 1000.0,
        p.rip_min_v,
        p.rip_max_v,
        p.rip_lsb_v,
        p.rip_levels_m1,
    ) * 1000.0;
    let p_rip_w = ((sensed_mv - p.rip_baseline_mv) / p.rip_gain_mv_per_kw).max(0.0)
        * 1e3
        * p.ripple_gain_bias;

    // --- Fusion (ripple is the workhorse, DC the sanity anchor) ---
    let fused_w = p_rip_w * 0.9 + p_dc_w * 0.1;
    (fused_w + p.extra_noise_w * z3).max(0.0)
}

/// One application of the measurement model, in raw watts/volts.
///
/// The single source of truth for the estimator's IEEE-754 op sequence:
/// both the scalar [`VoltageSideChannel::estimate_with_normals`] and the
/// packed [`ChannelLanes::estimate_all`] compose the same
/// [`wander_update`] + [`estimate_body`] pair, which is what makes batched
/// and scalar trajectories bit-identical.
#[inline(always)]
pub(crate) fn estimate_kernel(
    p: &LaneParams,
    wander: &mut f64,
    true_total_w: f64,
    z: [f64; NORMALS_PER_ESTIMATE],
) -> f64 {
    *wander = wander_update(*wander, p.wander_step, z[0]);
    estimate_body(p, *wander, true_total_w, z[1], z[2], z[3])
}

/// N voltage side channels in structure-of-arrays form (see module docs).
///
/// Built from scalar channels with
/// [`from_channels`](ChannelLanes::from_channels); per slot the batch engine
/// calls [`draw_all`](ChannelLanes::draw_all) +
/// [`estimate_all`](ChannelLanes::estimate_all) (dense) or the `_lane`
/// variants (when some lanes sit out a slot); state flows back to the scalar
/// channels with [`sync_back`](ChannelLanes::sync_back).
#[derive(Debug)]
pub struct ChannelLanes {
    // xoshiro256++ state, one column per state word.
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
    // Back buffer for the double-buffered RNG sweep. Writing each sweep's
    // output here (then swapping) keeps the pre-sweep state intact for the
    // subnormal-rejection replay, with no per-slot allocation.
    t0: Vec<u64>,
    t1: Vec<u64>,
    t2: Vec<u64>,
    t3: Vec<u64>,
    /// Grid-wander state (AR(1)) per lane, in volts.
    wander: Vec<f64>,
    // LaneParams, one column per field (unit-stride loads in the packed
    // estimate pass; an array-of-structs here would defeat vectorization).
    wander_step: Vec<f64>,
    nominal_volts: Vec<f64>,
    cable_ohms: Vec<f64>,
    dc_min_v: Vec<f64>,
    dc_max_v: Vec<f64>,
    dc_lsb_v: Vec<f64>,
    dc_levels_m1: Vec<f64>,
    dc_noise_v: Vec<f64>,
    rip_baseline_mv: Vec<f64>,
    rip_gain_mv_per_kw: Vec<f64>,
    rip_noise_mv: Vec<f64>,
    rip_min_v: Vec<f64>,
    rip_max_v: Vec<f64>,
    rip_lsb_v: Vec<f64>,
    rip_levels_m1: Vec<f64>,
    extra_noise_w: Vec<f64>,
    dc_gain_bias: Vec<f64>,
    ripple_gain_bias: Vec<f64>,
}

impl ChannelLanes {
    /// Captures the state of `channels` column-wise. The source channels are
    /// left untouched (their RNG/wander become stale copies; sync fresh
    /// state back with [`sync_back`](ChannelLanes::sync_back)).
    pub fn from_channels(channels: &[VoltageSideChannel]) -> Self {
        let n = channels.len();
        let mut lanes = ChannelLanes {
            s0: Vec::with_capacity(n),
            s1: Vec::with_capacity(n),
            s2: Vec::with_capacity(n),
            s3: Vec::with_capacity(n),
            t0: vec![0; n],
            t1: vec![0; n],
            t2: vec![0; n],
            t3: vec![0; n],
            wander: Vec::with_capacity(n),
            wander_step: Vec::with_capacity(n),
            nominal_volts: Vec::with_capacity(n),
            cable_ohms: Vec::with_capacity(n),
            dc_min_v: Vec::with_capacity(n),
            dc_max_v: Vec::with_capacity(n),
            dc_lsb_v: Vec::with_capacity(n),
            dc_levels_m1: Vec::with_capacity(n),
            dc_noise_v: Vec::with_capacity(n),
            rip_baseline_mv: Vec::with_capacity(n),
            rip_gain_mv_per_kw: Vec::with_capacity(n),
            rip_noise_mv: Vec::with_capacity(n),
            rip_min_v: Vec::with_capacity(n),
            rip_max_v: Vec::with_capacity(n),
            rip_lsb_v: Vec::with_capacity(n),
            rip_levels_m1: Vec::with_capacity(n),
            extra_noise_w: Vec::with_capacity(n),
            dc_gain_bias: Vec::with_capacity(n),
            ripple_gain_bias: Vec::with_capacity(n),
        };
        for ch in channels {
            let s = ch.rng_state();
            lanes.s0.push(s[0]);
            lanes.s1.push(s[1]);
            lanes.s2.push(s[2]);
            lanes.s3.push(s[3]);
            lanes.wander.push(ch.wander_volts());
            let (dc_bias, rip_bias) = ch.gain_biases();
            let p = LaneParams::derive(ch.config(), dc_bias, rip_bias);
            lanes.wander_step.push(p.wander_step);
            lanes.nominal_volts.push(p.nominal_volts);
            lanes.cable_ohms.push(p.cable_ohms);
            lanes.dc_min_v.push(p.dc_min_v);
            lanes.dc_max_v.push(p.dc_max_v);
            lanes.dc_lsb_v.push(p.dc_lsb_v);
            lanes.dc_levels_m1.push(p.dc_levels_m1);
            lanes.dc_noise_v.push(p.dc_noise_v);
            lanes.rip_baseline_mv.push(p.rip_baseline_mv);
            lanes.rip_gain_mv_per_kw.push(p.rip_gain_mv_per_kw);
            lanes.rip_noise_mv.push(p.rip_noise_mv);
            lanes.rip_min_v.push(p.rip_min_v);
            lanes.rip_max_v.push(p.rip_max_v);
            lanes.rip_lsb_v.push(p.rip_lsb_v);
            lanes.rip_levels_m1.push(p.rip_levels_m1);
            lanes.extra_noise_w.push(p.extra_noise_w);
            lanes.dc_gain_bias.push(p.dc_gain_bias);
            lanes.ripple_gain_bias.push(p.ripple_gain_bias);
        }
        lanes
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.wander.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.wander.is_empty()
    }

    /// Writes the live RNG and wander state back into the source channels
    /// (index-aligned with the `from_channels` input).
    ///
    /// # Panics
    ///
    /// Panics if `channels` and the batch disagree on length.
    pub fn sync_back(&self, channels: &mut [VoltageSideChannel]) {
        assert_eq!(channels.len(), self.len(), "lane count mismatch");
        for (i, ch) in channels.iter_mut().enumerate() {
            ch.restore_noise_state(
                [self.s0[i], self.s1[i], self.s2[i], self.s3[i]],
                self.wander[i],
            );
        }
    }

    /// Draws the `2 ×` [`NORMALS_PER_ESTIMATE`] uniforms feeding one
    /// estimate for **every** lane, in draw-major layout:
    /// `u1[k·len + i]` is lane `i`'s `k`-th pair's first uniform.
    ///
    /// Each lane consumes its generator in exactly the order of
    /// [`VoltageSideChannel::draw_uniforms`]; across lanes the sweep runs
    /// pair-major so the xoshiro update vectorizes over the lane dimension.
    ///
    /// # Panics
    ///
    /// Panics if `u1` or `u2` is not exactly `NORMALS_PER_ESTIMATE · len`
    /// long.
    pub fn draw_all(&mut self, u1: &mut [f64], u2: &mut [f64]) {
        let n = self.len();
        assert_eq!(u1.len(), NORMALS_PER_ESTIMATE * n, "u1 layout mismatch");
        assert_eq!(u2.len(), NORMALS_PER_ESTIMATE * n, "u2 layout mismatch");
        for k in 0..NORMALS_PER_ESTIMATE {
            let at = k * n;
            let mut any_rejected = false;
            {
                let u1k = &mut u1[at..at + n];
                let u2k = &mut u2[at..at + n];
                let s0 = &self.s0[..n];
                let s1 = &self.s1[..n];
                let s2 = &self.s2[..n];
                let s3 = &self.s3[..n];
                let t0 = &mut self.t0[..n];
                let t1 = &mut self.t1[..n];
                let t2 = &mut self.t2[..n];
                let t3 = &mut self.t3[..n];
                for i in 0..n {
                    let (mut a, mut b, mut c, mut d) = (s0[i], s1[i], s2[i], s3[i]);
                    // Two xoshiro256++ draws, exactly the scalar update.
                    let r1 = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
                    let t = b << 17;
                    c ^= a;
                    d ^= b;
                    b ^= c;
                    a ^= d;
                    c ^= t;
                    d = d.rotate_left(45);
                    let r2 = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
                    let t = b << 17;
                    c ^= a;
                    d ^= b;
                    b ^= c;
                    a ^= d;
                    c ^= t;
                    d = d.rotate_left(45);
                    t0[i] = a;
                    t1[i] = b;
                    t2[i] = c;
                    t3[i] = d;
                    let h1 = r1 >> 11;
                    u1k[i] = h1 as f64 * U53_SCALE;
                    u2k[i] = (r2 >> 11) as f64 * U53_SCALE;
                    any_rejected |= h1 == 0;
                }
            }
            if any_rejected {
                // Cold path (probability 2⁻⁵³ per lane-pair): replay the
                // offending lanes through the scalar rejection loop from the
                // still-intact pre-sweep state.
                for i in 0..n {
                    if u1[at + i] <= f64::MIN_POSITIVE {
                        let mut rng =
                            StdRng::from_state([self.s0[i], self.s1[i], self.s2[i], self.s3[i]]);
                        let (a, b) = draw_uniform_pair(&mut rng);
                        u1[at + i] = a;
                        u2[at + i] = b;
                        let s = rng.state();
                        self.t0[i] = s[0];
                        self.t1[i] = s[1];
                        self.t2[i] = s[2];
                        self.t3[i] = s[3];
                    }
                }
            }
            std::mem::swap(&mut self.s0, &mut self.t0);
            std::mem::swap(&mut self.s1, &mut self.t1);
            std::mem::swap(&mut self.s2, &mut self.t2);
            std::mem::swap(&mut self.s3, &mut self.t3);
        }
    }

    /// Applies the measurement model to every lane as one packed pass.
    ///
    /// `z` holds the standard normals in the draw-major layout produced by
    /// [`draw_all`](ChannelLanes::draw_all) + a packed Box–Muller pass;
    /// `true_totals_w`/`out_w` are watts, one per lane. Advances each lane's
    /// grid-wander state exactly as the scalar estimate does.
    ///
    /// # Panics
    ///
    /// Panics on any slice-length mismatch.
    pub fn estimate_all(&mut self, true_totals_w: &[f64], z: &[f64], out_w: &mut [f64]) {
        let n = self.len();
        assert_eq!(true_totals_w.len(), n, "input layout mismatch");
        assert_eq!(out_w.len(), n, "output layout mismatch");
        assert_eq!(z.len(), NORMALS_PER_ESTIMATE * n, "normals layout mismatch");
        // Re-slice every stream to a literal length of `n` so the index
        // loops below carry no per-iteration bounds checks.
        let (z0, rest) = z.split_at(n);
        let (z1, rest) = rest.split_at(n);
        let (z2, rest) = rest.split_at(n);
        let z3 = &rest[..n];
        let true_totals_w = &true_totals_w[..n];
        let out_w = &mut out_w[..n];
        // Pass 1: advance the wander states (the only state write, kept in
        // its own sweep so pass 2 is pure reads and vectorizes freely).
        {
            let wander = &mut self.wander[..n];
            let wander_step = &self.wander_step[..n];
            for i in 0..n {
                wander[i] = wander_update(wander[i], wander_step[i], z0[i]);
            }
        }
        // Pass 2: the measurement model proper. All lane state is read-only
        // here; the only store stream is the caller's `out_w`.
        let wander = &self.wander[..n];
        let wander_step = &self.wander_step[..n];
        let nominal_volts = &self.nominal_volts[..n];
        let cable_ohms = &self.cable_ohms[..n];
        let dc_min_v = &self.dc_min_v[..n];
        let dc_max_v = &self.dc_max_v[..n];
        let dc_lsb_v = &self.dc_lsb_v[..n];
        let dc_levels_m1 = &self.dc_levels_m1[..n];
        let dc_noise_v = &self.dc_noise_v[..n];
        let rip_baseline_mv = &self.rip_baseline_mv[..n];
        let rip_gain_mv_per_kw = &self.rip_gain_mv_per_kw[..n];
        let rip_noise_mv = &self.rip_noise_mv[..n];
        let rip_min_v = &self.rip_min_v[..n];
        let rip_max_v = &self.rip_max_v[..n];
        let rip_lsb_v = &self.rip_lsb_v[..n];
        let rip_levels_m1 = &self.rip_levels_m1[..n];
        let extra_noise_w = &self.extra_noise_w[..n];
        let dc_gain_bias = &self.dc_gain_bias[..n];
        let ripple_gain_bias = &self.ripple_gain_bias[..n];
        for i in 0..n {
            let p = LaneParams {
                wander_step: wander_step[i],
                nominal_volts: nominal_volts[i],
                cable_ohms: cable_ohms[i],
                dc_min_v: dc_min_v[i],
                dc_max_v: dc_max_v[i],
                dc_lsb_v: dc_lsb_v[i],
                dc_levels_m1: dc_levels_m1[i],
                dc_noise_v: dc_noise_v[i],
                rip_baseline_mv: rip_baseline_mv[i],
                rip_gain_mv_per_kw: rip_gain_mv_per_kw[i],
                rip_noise_mv: rip_noise_mv[i],
                rip_min_v: rip_min_v[i],
                rip_max_v: rip_max_v[i],
                rip_lsb_v: rip_lsb_v[i],
                rip_levels_m1: rip_levels_m1[i],
                extra_noise_w: extra_noise_w[i],
                dc_gain_bias: dc_gain_bias[i],
                ripple_gain_bias: ripple_gain_bias[i],
            };
            out_w[i] = estimate_body(&p, wander[i], true_totals_w[i], z1[i], z2[i], z3[i]);
        }
    }

    /// Draws one lane's uniforms through the scalar path (for slots where
    /// only a subset of lanes participates). Layout matches
    /// [`VoltageSideChannel::draw_uniforms`]: `u1` values first, then `u2`.
    pub fn draw_uniforms_lane(&mut self, lane: usize, out: &mut [f64; 2 * NORMALS_PER_ESTIMATE]) {
        let mut rng =
            StdRng::from_state([self.s0[lane], self.s1[lane], self.s2[lane], self.s3[lane]]);
        for k in 0..NORMALS_PER_ESTIMATE {
            let (a, b) = draw_uniform_pair(&mut rng);
            out[k] = a;
            out[NORMALS_PER_ESTIMATE + k] = b;
        }
        let s = rng.state();
        self.s0[lane] = s[0];
        self.s1[lane] = s[1];
        self.s2[lane] = s[2];
        self.s3[lane] = s[3];
    }

    /// Applies the measurement model to one lane (scalar counterpart of
    /// [`estimate_all`](ChannelLanes::estimate_all), same kernel).
    pub fn estimate_lane(
        &mut self,
        lane: usize,
        true_total: Power,
        z: &[f64; NORMALS_PER_ESTIMATE],
    ) -> Power {
        let p = LaneParams {
            wander_step: self.wander_step[lane],
            nominal_volts: self.nominal_volts[lane],
            cable_ohms: self.cable_ohms[lane],
            dc_min_v: self.dc_min_v[lane],
            dc_max_v: self.dc_max_v[lane],
            dc_lsb_v: self.dc_lsb_v[lane],
            dc_levels_m1: self.dc_levels_m1[lane],
            dc_noise_v: self.dc_noise_v[lane],
            rip_baseline_mv: self.rip_baseline_mv[lane],
            rip_gain_mv_per_kw: self.rip_gain_mv_per_kw[lane],
            rip_noise_mv: self.rip_noise_mv[lane],
            rip_min_v: self.rip_min_v[lane],
            rip_max_v: self.rip_max_v[lane],
            rip_lsb_v: self.rip_lsb_v[lane],
            rip_levels_m1: self.rip_levels_m1[lane],
            extra_noise_w: self.extra_noise_w[lane],
            dc_gain_bias: self.dc_gain_bias[lane],
            ripple_gain_bias: self.ripple_gain_bias[lane],
        };
        Power::from_watts(estimate_kernel(
            &p,
            &mut self.wander[lane],
            true_total.as_watts(),
            *z,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::box_muller_slice;

    fn mixed_fleet(n: usize) -> Vec<VoltageSideChannel> {
        (0..n)
            .map(|i| {
                let mut cfg = SideChannelConfig::paper_default();
                cfg.samples_per_estimate = 16 + (i as u32 % 5) * 24;
                if i % 3 == 0 {
                    cfg = cfg.with_extra_noise(Power::from_watts(50.0 * i as f64));
                }
                VoltageSideChannel::new(cfg, 1000 + i as u64)
            })
            .collect()
    }

    /// The packed draw + estimate passes must reproduce every scalar
    /// channel bit for bit, over many slots and heterogeneous configs.
    #[test]
    fn packed_passes_match_scalar_channels() {
        let n = 37; // odd width exercises the vector remainder lanes
        let mut scalar = mixed_fleet(n);
        let mut lanes = ChannelLanes::from_channels(&scalar);
        let mut u1 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut u2 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut z = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut out_w = vec![0.0; n];
        for slot in 0..200u64 {
            let totals: Vec<f64> = (0..n)
                .map(|i| 4000.0 + 37.0 * ((slot as f64) + i as f64).sin().abs() * 1000.0)
                .collect();
            lanes.draw_all(&mut u1, &mut u2);
            box_muller_slice(&u1, &u2, &mut z);
            lanes.estimate_all(&totals, &z, &mut out_w);
            for (i, ch) in scalar.iter_mut().enumerate() {
                let want = ch.estimate(Power::from_watts(totals[i]));
                assert_eq!(
                    out_w[i].to_bits(),
                    want.as_watts().to_bits(),
                    "lane {i} slot {slot} diverged"
                );
            }
        }
    }

    /// The per-lane scalar path (used when some lanes sit out a slot) stays
    /// on the same stream as the scalar channel, interleaved with packed
    /// slots.
    #[test]
    fn lane_path_matches_scalar_and_interleaves_with_packed() {
        let n = 8;
        let mut scalar = mixed_fleet(n);
        let mut lanes = ChannelLanes::from_channels(&scalar);
        let mut u1 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut u2 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut z = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut out_w = vec![0.0; n];
        for round in 0..50u64 {
            let total = Power::from_kilowatts(5.0 + (round % 7) as f64 * 0.3);
            if round % 2 == 0 {
                // Scalar per-lane slot.
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    let mut u = [0.0; 2 * NORMALS_PER_ESTIMATE];
                    lanes.draw_uniforms_lane(i, &mut u);
                    let mut zl = [0.0; NORMALS_PER_ESTIMATE];
                    box_muller_slice(
                        &u[..NORMALS_PER_ESTIMATE],
                        &u[NORMALS_PER_ESTIMATE..],
                        &mut zl,
                    );
                    let got = lanes.estimate_lane(i, total, &zl);
                    let want = scalar[i].estimate(total);
                    assert_eq!(got.as_watts().to_bits(), want.as_watts().to_bits());
                }
            } else {
                // Packed slot.
                lanes.draw_all(&mut u1, &mut u2);
                box_muller_slice(&u1, &u2, &mut z);
                let totals = vec![total.as_watts(); n];
                lanes.estimate_all(&totals, &z, &mut out_w);
                for (i, ch) in scalar.iter_mut().enumerate() {
                    let want = ch.estimate(total);
                    assert_eq!(out_w[i].to_bits(), want.as_watts().to_bits());
                }
            }
        }
    }

    /// After batched stepping, `sync_back` must leave the scalar channels
    /// exactly where per-channel stepping would have.
    #[test]
    fn sync_back_resumes_scalar_stepping() {
        let n = 5;
        let mut reference = mixed_fleet(n);
        let mut resumed = mixed_fleet(n);
        let mut lanes = ChannelLanes::from_channels(&resumed);
        let mut u1 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut u2 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut z = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut out_w = vec![0.0; n];
        let total = Power::from_kilowatts(6.0);
        for _ in 0..30 {
            lanes.draw_all(&mut u1, &mut u2);
            box_muller_slice(&u1, &u2, &mut z);
            lanes.estimate_all(&vec![total.as_watts(); n], &z, &mut out_w);
            for ch in reference.iter_mut() {
                ch.estimate(total);
            }
        }
        lanes.sync_back(&mut resumed);
        for (a, b) in reference.iter_mut().zip(resumed.iter_mut()) {
            for kw in [2.0, 5.5, 7.9] {
                let p = Power::from_kilowatts(kw);
                assert_eq!(
                    a.estimate(p).as_watts().to_bits(),
                    b.estimate(p).as_watts().to_bits()
                );
            }
        }
    }

    /// Forces the one-in-2⁵³ subnormal rejection by planting an RNG state
    /// whose first output word has 53 leading zero bits; the packed sweep
    /// must replay that lane through the scalar rejection loop.
    #[test]
    fn rejection_replay_matches_scalar() {
        let n = 3;
        let mut scalar = mixed_fleet(n);
        // s0 = s3 = 0 makes the next output rotl(0, 23) + 0 = 0 → u1 = 0.0,
        // which the scalar path rejects; s1/s2 keep the stream alive.
        let planted = [0u64, 0x9E37_79B9_7F4A_7C15, 0xDEAD_BEEF_CAFE_F00D, 0u64];
        scalar[1].restore_noise_state(planted, 0.0);
        let mut lanes = ChannelLanes::from_channels(&scalar);
        let mut u1 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        let mut u2 = vec![0.0; NORMALS_PER_ESTIMATE * n];
        lanes.draw_all(&mut u1, &mut u2);
        for (i, ch) in scalar.iter_mut().enumerate() {
            let mut want = [0.0; 2 * NORMALS_PER_ESTIMATE];
            ch.draw_uniforms(&mut want);
            for k in 0..NORMALS_PER_ESTIMATE {
                assert_eq!(u1[k * n + i].to_bits(), want[k].to_bits());
                assert_eq!(
                    u2[k * n + i].to_bits(),
                    want[NORMALS_PER_ESTIMATE + k].to_bits()
                );
            }
        }
    }
}
