//! Portable, branch-light math kernels for the noise model.
//!
//! The side channel draws four standard normals per estimate via Box–Muller,
//! which costs one `ln` and one `cos` per draw. Routing those through libm
//! has two problems: the result depends on the platform's libm (glibc, musl
//! and macOS round differently in the last ulp, breaking cross-platform
//! bit-reproducibility of simulation trajectories), and opaque libm calls
//! block auto-vectorization of the batch engine's packed Box–Muller pass.
//!
//! The polynomial kernels here fix both: they are plain `f64` arithmetic
//! (no table lookups, no fused multiply-adds, no libm), so LLVM can unroll
//! them across SIMD lanes, and every platform computes bit-identical values.
//! Accuracy is far beyond what a measurement-noise model needs: `fast_ln` is
//! within 5 ulp over the Box–Muller input domain and `cos_tau` within 5·10⁻¹⁵
//! absolute.
//!
//! Determinism contract: these functions are pure element-wise `f64`
//! expressions without `mul_add`, so scalar and SIMD execution apply exactly
//! the same IEEE-754 operation sequence per element and produce identical
//! bits at any vector width and on any target.

use rand::RngExt;

/// Natural logarithm for `x` in the Box–Muller input domain `[2⁻⁵³, 1)`
/// (finite, positive, normal — the values produced by a 53-bit uniform
/// draw after the subnormal rejection in [`std_normal`]).
///
/// Decomposes `x = m · 2ᵉ` with `m ∈ [√2/2, √2)` and evaluates the
/// atanh-series `ln m = 2t(1 + t²/3 + t⁴/5 + …)` with `t = (m−1)/(m+1)`.
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    // Select-style normalization (not a branch) keeps the whole kernel a
    // straight-line expression that vectorizes across packed lanes.
    let fold = m > std::f64::consts::SQRT_2;
    let e = e + i64::from(fold);
    let m = if fold { m * 0.5 } else { m };
    let t = (m - 1.0) / (m + 1.0);
    let s = t * t;
    let p = 2.0 / 15.0;
    let p = p * s + 2.0 / 13.0;
    let p = p * s + 2.0 / 11.0;
    let p = p * s + 2.0 / 9.0;
    let p = p * s + 2.0 / 7.0;
    let p = p * s + 2.0 / 5.0;
    let p = p * s + 2.0 / 3.0;
    let p = p * s + 2.0;
    e as f64 * std::f64::consts::LN_2 + t * p
}

/// `cos(2π·u)` for `u ∈ [0, 1)` (a uniform phase draw).
///
/// Reduces to `w ∈ [−1/2, 1/2)` turns — exact, since `u` and `1/2` are
/// representable — then evaluates the Taylor series of `cos` on `[−π, π)`.
#[inline]
pub fn cos_tau(u: f64) -> f64 {
    let w = u - (u + 0.5).floor();
    let x = std::f64::consts::TAU * w;
    let s = x * x;
    let c = -1.0 / 403_291_461_126_605_635_584_000_000.0; // -1/26!
    let c = c * s + 1.0 / 620_448_401_733_239_439_360_000.0; // 1/24!
    let c = c * s + -1.0 / 1_124_000_727_777_607_680_000.0; // -1/22!
    let c = c * s + 1.0 / 2_432_902_008_176_640_000.0; // 1/20!
    let c = c * s + -1.0 / 6_402_373_705_728_000.0; // -1/18!
    let c = c * s + 1.0 / 20_922_789_888_000.0; // 1/16!
    let c = c * s + -1.0 / 87_178_291_200.0; // -1/14!
    let c = c * s + 1.0 / 479_001_600.0; // 1/12!
    let c = c * s + -1.0 / 3_628_800.0; // -1/10!
    let c = c * s + 1.0 / 40_320.0; // 1/8!
    let c = c * s + -1.0 / 720.0; // -1/6!
    let c = c * s + 1.0 / 24.0; // 1/4!
    let c = c * s + -0.5; // -1/2!
    c * s + 1.0
}

/// The Box–Muller transform: maps two uniform draws to one standard normal.
#[inline]
pub fn box_muller(u1: f64, u2: f64) -> f64 {
    (-2.0 * fast_ln(u1)).sqrt() * cos_tau(u2)
}

/// Packed Box–Muller over slices: `z[i] = box_muller(u1[i], u2[i])`.
///
/// This is the batch engine's vectorized inner loop — the polynomial kernels
/// inline and LLVM unrolls them across SIMD lanes. Element values are
/// bit-identical to calling [`box_muller`] per element.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn box_muller_slice(u1: &[f64], u2: &[f64], z: &mut [f64]) {
    assert_eq!(u1.len(), z.len());
    assert_eq!(u2.len(), z.len());
    for ((zi, &a), &b) in z.iter_mut().zip(u1).zip(u2) {
        *zi = box_muller(a, b);
    }
}

/// Draws the uniform pair feeding one Box–Muller transform, rejecting `u1`
/// values too small to take a logarithm of.
#[inline]
pub fn draw_uniform_pair<R: RngExt + ?Sized>(rng: &mut R) -> (f64, f64) {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (u1, u2);
    }
}

/// One standard-normal draw via Box–Muller (rand ships no Gaussian sampler
/// in the approved dependency set).
#[inline]
pub fn std_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    let (u1, u2) = draw_uniform_pair(rng);
    box_muller(u1, u2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fast_ln_matches_libm_on_domain() {
        let mut x = 2f64.powi(-53);
        while x < 1.0 {
            let got = fast_ln(x);
            let want = x.ln();
            let rel = (got - want).abs() / want.abs().max(1.0);
            assert!(rel < 1e-14, "ln({x}) = {got}, libm {want}");
            x *= 1.31;
        }
        // Exact anchor: ln of a power of two uses only the exponent path.
        assert_eq!(fast_ln(0.5), -std::f64::consts::LN_2);
        assert_eq!(fast_ln(0.25), -2.0 * std::f64::consts::LN_2);
    }

    #[test]
    fn cos_tau_matches_libm_on_domain() {
        for k in 0..4096 {
            let u = k as f64 / 4096.0;
            let got = cos_tau(u);
            let want = (std::f64::consts::TAU * u).cos();
            assert!(
                (got - want).abs() < 5e-15,
                "cos_tau({u}) = {got}, libm {want}"
            );
        }
        assert_eq!(cos_tau(0.0), 1.0);
        assert!(cos_tau(0.25).abs() < 1e-15);
    }

    #[test]
    fn slice_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 257; // odd length to exercise the vector remainder
        let mut u1 = vec![0.0; n];
        let mut u2 = vec![0.0; n];
        for i in 0..n {
            let (a, b) = draw_uniform_pair(&mut rng);
            u1[i] = a;
            u2[i] = b;
        }
        let mut z = vec![0.0; n];
        box_muller_slice(&u1, &u2, &mut z);
        for i in 0..n {
            assert_eq!(z[i].to_bits(), box_muller(u1[i], u2[i]).to_bits());
        }
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
