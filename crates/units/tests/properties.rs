//! Property-based tests of the quantity arithmetic.

use hbm_units::{Duration, Energy, Power, Temperature, TemperatureDelta};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn positive() -> impl Strategy<Value = f64> {
    1e-3..1e6f64
}

proptest! {
    #[test]
    fn power_addition_commutes(a in finite(), b in finite()) {
        let (pa, pb) = (Power::from_watts(a), Power::from_watts(b));
        prop_assert_eq!(pa + pb, pb + pa);
    }

    #[test]
    fn power_addition_associates(a in finite(), b in finite(), c in finite()) {
        let (pa, pb, pc) = (Power::from_watts(a), Power::from_watts(b), Power::from_watts(c));
        let lhs = ((pa + pb) + pc).as_watts();
        let rhs = (pa + (pb + pc)).as_watts();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn unit_conversions_round_trip(w in finite()) {
        let p = Power::from_watts(w);
        prop_assert!((Power::from_kilowatts(p.as_kilowatts()).as_watts() - w).abs() < 1e-9 * (1.0 + w.abs()));
        let e = Energy::from_watt_hours(w);
        prop_assert!((Energy::from_kilowatt_hours(e.as_kilowatt_hours()).as_watt_hours() - w).abs() < 1e-9 * (1.0 + w.abs()));
        let d = Duration::from_seconds(w.abs());
        prop_assert!((Duration::from_hours(d.as_hours()).as_seconds() - w.abs()).abs() < 1e-6 * (1.0 + w.abs()));
    }

    #[test]
    fn energy_equals_power_times_time(kw in positive(), hours in 1e-3..1e3f64) {
        let e = Power::from_kilowatts(kw) * Duration::from_hours(hours);
        prop_assert!((e.as_kilowatt_hours() - kw * hours).abs() < 1e-9 * (1.0 + kw * hours));
        // And the inverse relations hold.
        let p_back = e / Duration::from_hours(hours);
        prop_assert!((p_back.as_kilowatts() - kw).abs() < 1e-9 * (1.0 + kw));
        let t_back = e / Power::from_kilowatts(kw);
        prop_assert!((t_back.as_hours() - hours).abs() < 1e-9 * (1.0 + hours));
    }

    #[test]
    fn positive_part_is_idempotent_and_non_negative(w in finite()) {
        let p = Power::from_watts(w).positive_part();
        prop_assert!(p >= Power::ZERO);
        prop_assert_eq!(p.positive_part(), p);
        let d = TemperatureDelta::from_celsius(w).positive_part();
        prop_assert!(d >= TemperatureDelta::ZERO);
    }

    #[test]
    fn clamp_is_within_bounds(w in finite(), lo in -1e3..0.0f64, hi in 0.0..1e3f64) {
        let c = Power::from_watts(w).clamp(Power::from_watts(lo), Power::from_watts(hi));
        prop_assert!(c >= Power::from_watts(lo) && c <= Power::from_watts(hi));
    }

    #[test]
    fn temperature_delta_algebra(a in finite(), b in finite()) {
        let ta = Temperature::from_celsius(a);
        let d = TemperatureDelta::from_celsius(b);
        // (t + d) - t == d
        let back = (ta + d) - ta;
        prop_assert!((back.as_celsius() - b).abs() < 1e-9 * (1.0 + b.abs()));
    }

    #[test]
    fn power_ratio_inverts_scaling(kw in positive(), f in 1e-3..1e3f64) {
        let p = Power::from_kilowatts(kw);
        let ratio = (p * f) / p;
        prop_assert!((ratio - f).abs() < 1e-9 * (1.0 + f));
    }

    #[test]
    fn sum_matches_fold(values in prop::collection::vec(finite(), 0..50)) {
        let sum: Power = values.iter().map(|&w| Power::from_watts(w)).sum();
        let fold = values.iter().fold(0.0, |acc, w| acc + w);
        prop_assert!((sum.as_watts() - fold).abs() < 1e-6 * (1.0 + fold.abs()));
    }
}
