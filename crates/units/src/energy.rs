//! Energy quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{Duration, Power, SECONDS_PER_HOUR};

/// An energy quantity, stored internally in kilowatt-hours.
///
/// Battery state, charged/discharged energy per slot, and annual electricity
/// cost computations all use this type.
///
/// # Examples
///
/// ```
/// use hbm_units::{Energy, Power, Duration};
///
/// // The default attacker battery: 0.2 kWh drained at 1 kW lasts 12 minutes.
/// let battery = Energy::from_kilowatt_hours(0.2);
/// let runtime = battery / Power::from_kilowatts(1.0);
/// assert!((runtime.as_minutes() - 12.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from kilowatt-hours.
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Energy(kwh)
    }

    /// Creates an energy from watt-hours.
    pub fn from_watt_hours(wh: f64) -> Self {
        Energy(wh / 1e3)
    }

    /// Creates an energy from joules.
    pub fn from_joules(joules: f64) -> Self {
        Energy(joules / (1e3 * SECONDS_PER_HOUR))
    }

    /// Returns the value in kilowatt-hours.
    pub fn as_kilowatt_hours(self) -> f64 {
        self.0
    }

    /// Returns the value in watt-hours.
    pub fn as_watt_hours(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in joules.
    pub fn as_joules(self) -> f64 {
        self.0 * 1e3 * SECONDS_PER_HOUR
    }

    /// Returns the smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Returns the larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Clamps this energy to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Energy, hi: Energy) -> Energy {
        assert!(lo.0 <= hi.0, "energy clamp bounds inverted");
        Energy(self.0.clamp(lo.0, hi.0))
    }

    /// Energy that is negative or zero becomes zero.
    pub fn positive_part(self) -> Energy {
        Energy(self.0.max(0.0))
    }

    /// Whether this energy is a finite, non-NaN value.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} kWh", self.0)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Dimensionless ratio of two energies (e.g. battery state-of-charge).
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<Power> for Energy {
    /// Time for which `rhs` can be sustained from this energy.
    type Output = Duration;
    fn div(self, rhs: Power) -> Duration {
        Duration::from_hours(self.0 / rhs.as_kilowatts())
    }
}

impl Div<Duration> for Energy {
    /// Average power when this energy is spread over `rhs`.
    type Output = Power;
    fn div(self, rhs: Duration) -> Power {
        Power::from_kilowatts(self.0 / rhs.as_hours())
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Energy> for Energy {
    fn sum<I: Iterator<Item = &'a Energy>>(iter: I) -> Energy {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let e = Energy::from_kilowatt_hours(0.05);
        assert!((e.as_watt_hours() - 50.0).abs() < 1e-12);
        assert!((e.as_joules() - 180_000.0).abs() < 1e-6);
        assert!((Energy::from_joules(3_600_000.0).as_kilowatt_hours() - 1.0).abs() < 1e-12);
        assert!((Energy::from_watt_hours(200.0).as_kilowatt_hours() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn battery_runtime() {
        let rt = Energy::from_kilowatt_hours(0.2) / Power::from_kilowatts(3.0);
        assert!((rt.as_minutes() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn average_power() {
        let p = Energy::from_kilowatt_hours(2.0) / Duration::from_hours(4.0);
        assert!((p.as_watts() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn soc_ratio() {
        let soc = Energy::from_kilowatt_hours(0.1) / Energy::from_kilowatt_hours(0.2);
        assert_eq!(soc, 0.5);
    }

    #[test]
    fn sum_and_clamp() {
        let total: Energy = (0..4).map(|_| Energy::from_kilowatt_hours(0.05)).sum();
        assert!((total.as_kilowatt_hours() - 0.2).abs() < 1e-12);
        assert_eq!(
            Energy::from_kilowatt_hours(0.5).clamp(Energy::ZERO, Energy::from_kilowatt_hours(0.2)),
            Energy::from_kilowatt_hours(0.2)
        );
    }
}
