//! Simulation time quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::SECONDS_PER_HOUR;

/// A span of simulated time, stored internally in seconds.
///
/// The simulator is slotted (1-minute slots by default, per the paper's MDP),
/// but thermal dynamics integrate with finer sub-steps and experiments speak
/// in hours and days, so conversions in both directions are provided.
///
/// # Examples
///
/// ```
/// use hbm_units::Duration;
///
/// let slot = Duration::from_minutes(1.0);
/// let year = Duration::from_days(365.0);
/// assert_eq!((year / slot).round() as u64, 525_600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Duration(f64);

impl Duration {
    /// Zero duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from seconds.
    pub fn from_seconds(seconds: f64) -> Self {
        Duration(seconds)
    }

    /// Creates a duration from minutes.
    pub fn from_minutes(minutes: f64) -> Self {
        Duration(minutes * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Duration(hours * SECONDS_PER_HOUR)
    }

    /// Creates a duration from days.
    pub fn from_days(days: f64) -> Self {
        Duration(days * 24.0 * SECONDS_PER_HOUR)
    }

    /// Returns the value in seconds.
    pub fn as_seconds(self) -> f64 {
        self.0
    }

    /// Returns the value in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the value in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / SECONDS_PER_HOUR
    }

    /// Returns the value in days.
    pub fn as_days(self) -> f64 {
        self.0 / (24.0 * SECONDS_PER_HOUR)
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Whether this duration is a finite, non-NaN value.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 24.0 * SECONDS_PER_HOUR {
            write!(f, "{:.2} d", self.as_days())
        } else if self.0 >= SECONDS_PER_HOUR {
            write!(f, "{:.2} h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.2} min", self.as_minutes())
        } else {
            write!(f, "{:.1} s", self.0)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for f64 {
    type Output = Duration;
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    fn div(self, rhs: f64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    /// Dimensionless ratio of two durations (e.g. slots per day).
    type Output = f64;
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Duration> for Duration {
    fn sum<I: Iterator<Item = &'a Duration>>(iter: I) -> Duration {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_minutes(2.0).as_seconds(), 120.0);
        assert_eq!(Duration::from_hours(1.5).as_minutes(), 90.0);
        assert_eq!(Duration::from_days(2.0).as_hours(), 48.0);
        assert!((Duration::from_seconds(90.0).as_minutes() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slot_counting() {
        let slots = Duration::from_days(1.0) / Duration::from_minutes(1.0);
        assert_eq!(slots.round() as u64, 1440);
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_minutes(5.0);
        let b = Duration::from_minutes(2.0);
        assert_eq!((a + b).as_minutes(), 7.0);
        assert_eq!((a - b).as_minutes(), 3.0);
        assert_eq!((a * 2.0).as_minutes(), 10.0);
        assert_eq!((a / 5.0).as_minutes(), 1.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Duration::from_seconds(30.0).to_string(), "30.0 s");
        assert_eq!(Duration::from_minutes(5.0).to_string(), "5.00 min");
        assert_eq!(Duration::from_hours(4.0).to_string(), "4.00 h");
        assert_eq!(Duration::from_days(365.0).to_string(), "365.00 d");
    }
}
