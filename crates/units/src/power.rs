//! Electrical/thermal power quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{Duration, Energy, SECONDS_PER_HOUR};

/// A power quantity, stored internally in watts.
///
/// In this workspace power is used both for electrical draw and for cooling
/// load: the paper's threat model rests on the fact that (fan power aside)
/// essentially 100 % of server electrical power becomes heat, so the two share
/// a unit.
///
/// # Examples
///
/// ```
/// use hbm_units::Power;
///
/// let subscribed = Power::from_kilowatts(0.8);
/// let battery_boost = Power::from_kilowatts(1.0);
/// let actual = subscribed + battery_boost;
/// assert_eq!(actual.as_kilowatts(), 1.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    pub fn from_watts(watts: f64) -> Self {
        Power(watts)
    }

    /// Creates a power from kilowatts.
    pub fn from_kilowatts(kilowatts: f64) -> Self {
        Power(kilowatts * 1e3)
    }

    /// Returns the value in watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Returns the value in kilowatts.
    pub fn as_kilowatts(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the smaller of two powers.
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    /// Returns the larger of two powers.
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }

    /// Clamps this power to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Power, hi: Power) -> Power {
        assert!(lo.0 <= hi.0, "power clamp bounds inverted");
        Power(self.0.clamp(lo.0, hi.0))
    }

    /// Power that is negative or zero becomes zero (`[·]⁺` in the paper).
    pub fn positive_part(self) -> Power {
        Power(self.0.max(0.0))
    }

    /// Whether this power is a finite, non-NaN value.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Absolute value.
    pub fn abs(self) -> Power {
        Power(self.0.abs())
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e3 {
            write!(f, "{:.3} kW", self.0 / 1e3)
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl SubAssign for Power {
    fn sub_assign(&mut self, rhs: Power) {
        self.0 -= rhs.0;
    }
}

impl Neg for Power {
    type Output = Power;
    fn neg(self) -> Power {
        Power(-self.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

impl Div<Power> for Power {
    /// Dimensionless ratio of two powers (e.g. utilization).
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<Duration> for Power {
    type Output = Energy;
    fn mul(self, rhs: Duration) -> Energy {
        Energy::from_kilowatt_hours(self.as_kilowatts() * rhs.as_seconds() / SECONDS_PER_HOUR)
    }
}

impl Mul<Power> for Duration {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Power> for Power {
    fn sum<I: Iterator<Item = &'a Power>>(iter: I) -> Power {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Power::from_kilowatts(8.0).as_watts(), 8000.0);
        assert_eq!(Power::from_watts(450.0).as_kilowatts(), 0.45);
    }

    #[test]
    fn arithmetic() {
        let a = Power::from_watts(200.0);
        let b = Power::from_watts(250.0);
        assert_eq!((a + b).as_watts(), 450.0);
        assert_eq!((b - a).as_watts(), 50.0);
        assert_eq!((a * 2.0).as_watts(), 400.0);
        assert_eq!((a / 2.0).as_watts(), 100.0);
        assert_eq!(b / a, 1.25);
        assert_eq!((-a).as_watts(), -200.0);
    }

    #[test]
    fn positive_part_clips_negatives() {
        assert_eq!(Power::from_watts(-5.0).positive_part(), Power::ZERO);
        assert_eq!(Power::from_watts(5.0).positive_part().as_watts(), 5.0);
    }

    #[test]
    fn sum_over_servers() {
        let loads = vec![Power::from_watts(100.0); 40];
        let total: Power = loads.iter().sum();
        assert_eq!(total.as_kilowatts(), 4.0);
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(Power::from_watts(200.0).to_string(), "200.0 W");
        assert_eq!(Power::from_kilowatts(8.0).to_string(), "8.000 kW");
    }

    #[test]
    fn clamp_and_minmax() {
        let p = Power::from_watts(500.0);
        assert_eq!(
            p.clamp(Power::ZERO, Power::from_watts(120.0)).as_watts(),
            120.0
        );
        assert_eq!(p.min(Power::from_watts(120.0)).as_watts(), 120.0);
        assert_eq!(p.max(Power::from_watts(800.0)).as_watts(), 800.0);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Power::ZERO.clamp(Power::from_watts(2.0), Power::from_watts(1.0));
    }
}
