//! Typed physical quantities for the Heat Behind the Meter simulator.
//!
//! Every crate in this workspace moves power, energy, temperature, and time
//! between subsystems (power delivery, batteries, cooling, reinforcement
//! learning). Using raw `f64` for all of them invites silent unit bugs — a
//! kilowatt where a watt was meant, minutes where seconds were meant — which
//! in a year-long simulation are very hard to spot. This crate provides
//! zero-cost newtypes with the arithmetic that is physically meaningful and
//! nothing more.
//!
//! # Examples
//!
//! ```
//! use hbm_units::{Power, Energy, Duration};
//!
//! let attack_load = Power::from_kilowatts(1.0);
//! let slot = Duration::from_minutes(1.0);
//! let drained: Energy = attack_load * slot;
//! assert!((drained.as_kilowatt_hours() - 1.0 / 60.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod power;
mod temperature;
mod time;

pub use energy::Energy;
pub use power::Power;
pub use temperature::{Temperature, TemperatureDelta};
pub use time::Duration;

/// Number of seconds in one hour, used by power/energy conversions.
pub(crate) const SECONDS_PER_HOUR: f64 = 3600.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_duration_is_energy() {
        let e = Power::from_watts(200.0) * Duration::from_hours(2.0);
        assert!((e.as_kilowatt_hours() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn energy_over_duration_is_power() {
        let p = Energy::from_kilowatt_hours(0.2) / Duration::from_hours(0.5);
        assert!((p.as_watts() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Power>();
        assert_send_sync::<Energy>();
        assert_send_sync::<Temperature>();
        assert_send_sync::<Duration>();
    }
}
