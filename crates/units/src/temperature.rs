//! Absolute temperature and temperature difference quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute temperature in degrees Celsius.
///
/// Server inlet temperature is the paper's central thermal metric: the AC
/// conditions it at 27 °C, an emergency is declared above 32 °C, and the PDU
/// powers off at 45 °C.
///
/// Subtracting two [`Temperature`]s yields a [`TemperatureDelta`]; an absolute
/// temperature plus a delta is again absolute. Adding two absolute
/// temperatures is physically meaningless and deliberately not implemented.
///
/// # Examples
///
/// ```
/// use hbm_units::Temperature;
///
/// let setpoint = Temperature::from_celsius(27.0);
/// let emergency = Temperature::from_celsius(32.0);
/// let margin = emergency - setpoint;
/// assert_eq!(margin.as_celsius(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Temperature(f64);

impl Temperature {
    /// Creates a temperature from degrees Celsius.
    pub fn from_celsius(celsius: f64) -> Self {
        Temperature(celsius)
    }

    /// Returns the value in degrees Celsius.
    pub fn as_celsius(self) -> f64 {
        self.0
    }

    /// Returns the smaller of two temperatures.
    pub fn min(self, other: Temperature) -> Temperature {
        Temperature(self.0.min(other.0))
    }

    /// Returns the larger of two temperatures.
    pub fn max(self, other: Temperature) -> Temperature {
        Temperature(self.0.max(other.0))
    }

    /// Whether this temperature is a finite, non-NaN value.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Default for Temperature {
    /// The ASHRAE-recommended 27 °C inlet setpoint used throughout the paper.
    fn default() -> Self {
        Temperature::from_celsius(27.0)
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} °C", self.0)
    }
}

impl Sub for Temperature {
    type Output = TemperatureDelta;
    fn sub(self, rhs: Temperature) -> TemperatureDelta {
        TemperatureDelta(self.0 - rhs.0)
    }
}

impl Add<TemperatureDelta> for Temperature {
    type Output = Temperature;
    fn add(self, rhs: TemperatureDelta) -> Temperature {
        Temperature(self.0 + rhs.0)
    }
}

impl AddAssign<TemperatureDelta> for Temperature {
    fn add_assign(&mut self, rhs: TemperatureDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TemperatureDelta> for Temperature {
    type Output = Temperature;
    fn sub(self, rhs: TemperatureDelta) -> Temperature {
        Temperature(self.0 - rhs.0)
    }
}

impl SubAssign<TemperatureDelta> for Temperature {
    fn sub_assign(&mut self, rhs: TemperatureDelta) {
        self.0 -= rhs.0;
    }
}

/// A temperature difference in kelvin (equivalently, Celsius degrees).
///
/// Used for temperature rises above the setpoint (the paper's ΔT) and for
/// thermal-model increments.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TemperatureDelta(f64);

impl TemperatureDelta {
    /// Zero temperature difference.
    pub const ZERO: TemperatureDelta = TemperatureDelta(0.0);

    /// Creates a difference from Celsius degrees (kelvin).
    pub fn from_celsius(celsius: f64) -> Self {
        TemperatureDelta(celsius)
    }

    /// Returns the difference in Celsius degrees (kelvin).
    pub fn as_celsius(self) -> f64 {
        self.0
    }

    /// Difference that is negative becomes zero (`[·]⁺` in the paper's reward).
    pub fn positive_part(self) -> TemperatureDelta {
        TemperatureDelta(self.0.max(0.0))
    }

    /// Absolute value of the difference.
    pub fn abs(self) -> TemperatureDelta {
        TemperatureDelta(self.0.abs())
    }

    /// Returns the smaller of two deltas.
    pub fn min(self, other: TemperatureDelta) -> TemperatureDelta {
        TemperatureDelta(self.0.min(other.0))
    }

    /// Returns the larger of two deltas.
    pub fn max(self, other: TemperatureDelta) -> TemperatureDelta {
        TemperatureDelta(self.0.max(other.0))
    }
}

impl fmt::Display for TemperatureDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.2} K", self.0)
    }
}

impl Add for TemperatureDelta {
    type Output = TemperatureDelta;
    fn add(self, rhs: TemperatureDelta) -> TemperatureDelta {
        TemperatureDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TemperatureDelta {
    fn add_assign(&mut self, rhs: TemperatureDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TemperatureDelta {
    type Output = TemperatureDelta;
    fn sub(self, rhs: TemperatureDelta) -> TemperatureDelta {
        TemperatureDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TemperatureDelta {
    fn sub_assign(&mut self, rhs: TemperatureDelta) {
        self.0 -= rhs.0;
    }
}

impl Neg for TemperatureDelta {
    type Output = TemperatureDelta;
    fn neg(self) -> TemperatureDelta {
        TemperatureDelta(-self.0)
    }
}

impl Mul<f64> for TemperatureDelta {
    type Output = TemperatureDelta;
    fn mul(self, rhs: f64) -> TemperatureDelta {
        TemperatureDelta(self.0 * rhs)
    }
}

impl Mul<TemperatureDelta> for f64 {
    type Output = TemperatureDelta;
    fn mul(self, rhs: TemperatureDelta) -> TemperatureDelta {
        TemperatureDelta(self * rhs.0)
    }
}

impl Div<f64> for TemperatureDelta {
    type Output = TemperatureDelta;
    fn div(self, rhs: f64) -> TemperatureDelta {
        TemperatureDelta(self.0 / rhs)
    }
}

impl Div<TemperatureDelta> for TemperatureDelta {
    /// Dimensionless ratio of two temperature differences.
    type Output = f64;
    fn div(self, rhs: TemperatureDelta) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for TemperatureDelta {
    fn sum<I: Iterator<Item = TemperatureDelta>>(iter: I) -> TemperatureDelta {
        iter.fold(TemperatureDelta::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_and_delta_interplay() {
        let t = Temperature::from_celsius(27.0) + TemperatureDelta::from_celsius(5.0);
        assert_eq!(t.as_celsius(), 32.0);
        let d = Temperature::from_celsius(45.0) - t;
        assert_eq!(d.as_celsius(), 13.0);
        assert_eq!((t - TemperatureDelta::from_celsius(2.0)).as_celsius(), 30.0);
    }

    #[test]
    fn default_is_ashrae_setpoint() {
        assert_eq!(Temperature::default().as_celsius(), 27.0);
    }

    #[test]
    fn delta_positive_part() {
        assert_eq!(
            TemperatureDelta::from_celsius(-3.0).positive_part(),
            TemperatureDelta::ZERO
        );
        assert_eq!(
            TemperatureDelta::from_celsius(3.0)
                .positive_part()
                .as_celsius(),
            3.0
        );
    }

    #[test]
    fn delta_arithmetic() {
        let d = TemperatureDelta::from_celsius(4.0);
        assert_eq!((d * 0.5).as_celsius(), 2.0);
        assert_eq!((0.5 * d).as_celsius(), 2.0);
        assert_eq!((d / 2.0).as_celsius(), 2.0);
        assert_eq!((-d).as_celsius(), -4.0);
        assert_eq!(d / TemperatureDelta::from_celsius(2.0), 2.0);
    }

    #[test]
    fn ordering() {
        assert!(Temperature::from_celsius(32.0) > Temperature::from_celsius(27.0));
        assert!(TemperatureDelta::from_celsius(1.0) < TemperatureDelta::from_celsius(2.0));
    }

    #[test]
    fn display() {
        assert_eq!(Temperature::from_celsius(27.0).to_string(), "27.00 °C");
        assert_eq!(TemperatureDelta::from_celsius(5.0).to_string(), "+5.00 K");
    }
}
