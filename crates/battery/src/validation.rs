//! Reproduction of the paper's battery-dynamics validation (Fig. 7b).
//!
//! The prototype experiment: two Dell desktops (~175 W total) powered from a
//! 600 VA CyberPower UPS. The UPS first runs unplugged (battery discharging)
//! for 10 minutes, then is reconnected (battery charging). Power meters on
//! both sides of the UPS expose its internal consumption. The observation the
//! paper draws from it: the energy trace is linear in both phases, and the
//! charging slope is shallower than the discharging slope because conversion
//! losses ride on top of the desktop load.

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Energy, Power};

use crate::{Battery, BatterySpec};

/// Configuration of the UPS charge/discharge validation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpsExperiment {
    /// Battery under test.
    pub spec: BatterySpec,
    /// Steady load powered through the UPS (the two desktops).
    pub load: Power,
    /// How long the UPS stays unplugged (discharge phase).
    pub discharge_phase: Duration,
    /// How long the recharge phase is observed afterwards.
    pub charge_phase: Duration,
    /// Sampling interval of the recorded energy trace.
    pub sample_interval: Duration,
}

impl Default for UpsExperiment {
    /// The prototype setup of Section V-B: ~175 W load, 10-minute discharge,
    /// then recharge, sampled every 30 s on a CyberPower-class battery.
    fn default() -> Self {
        UpsExperiment {
            spec: BatterySpec {
                capacity: Energy::from_watt_hours(60.0), // 600 VA consumer UPS class
                max_charge_rate: Power::from_watts(90.0),
                max_discharge_rate: Power::from_watts(360.0),
                charge_efficiency: 0.85,
                discharge_efficiency: 0.90,
            },
            load: Power::from_watts(175.0),
            discharge_phase: Duration::from_minutes(10.0),
            charge_phase: Duration::from_minutes(25.0),
            sample_interval: Duration::from_seconds(30.0),
        }
    }
}

/// One sample of the recorded battery-energy trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpsSample {
    /// Time since the start of the experiment.
    pub elapsed: Duration,
    /// Battery energy at this instant.
    pub stored: Energy,
    /// Power drawn from the wall (zero while unplugged).
    pub wall_power: Power,
}

/// Runs the Fig. 7(b) validation experiment and returns the energy trace.
///
/// The battery starts full, sustains `experiment.load` alone during the
/// discharge phase, and then recharges at its charger rate while the wall
/// additionally carries the load.
///
/// # Examples
///
/// ```
/// use hbm_battery::{ups_experiment, UpsExperiment};
///
/// let trace = ups_experiment(&UpsExperiment::default());
/// let lowest = trace.iter().map(|s| s.stored).fold(trace[0].stored, |a, b| a.min(b));
/// assert!(lowest < trace[0].stored);            // discharged first
/// assert!(trace.last().unwrap().stored > lowest); // then recharged
/// ```
///
/// # Panics
///
/// Panics if the spec is invalid or any duration is non-positive.
pub fn ups_experiment(experiment: &UpsExperiment) -> Vec<UpsSample> {
    assert!(
        experiment.sample_interval > Duration::ZERO,
        "sample interval must be positive"
    );
    let mut battery = Battery::full(experiment.spec);
    let dt = experiment.sample_interval;
    let total = experiment.discharge_phase + experiment.charge_phase;
    let steps = (total / dt).ceil() as usize;
    let mut trace = Vec::with_capacity(steps + 1);
    let mut elapsed = Duration::ZERO;
    trace.push(UpsSample {
        elapsed,
        stored: battery.stored(),
        wall_power: experiment.load,
    });
    for _ in 0..steps {
        let wall_power = if elapsed < experiment.discharge_phase {
            // Unplugged: the battery alone carries the desktops.
            battery.discharge(experiment.load, dt);
            Power::ZERO
        } else {
            // Plugged back in: wall carries the load plus charger draw.
            let charger = battery.charge(experiment.spec.max_charge_rate, dt);
            experiment.load + charger
        };
        elapsed += dt;
        trace.push(UpsSample {
            elapsed,
            stored: battery.stored(),
            wall_power,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slope_wh_per_min(a: &UpsSample, b: &UpsSample) -> f64 {
        (b.stored.as_watt_hours() - a.stored.as_watt_hours()) / (b.elapsed - a.elapsed).as_minutes()
    }

    #[test]
    fn discharge_then_recharge_shape() {
        let exp = UpsExperiment::default();
        let trace = ups_experiment(&exp);
        let turn = trace
            .iter()
            .position(|s| s.elapsed >= exp.discharge_phase)
            .expect("discharge phase inside trace");
        assert!(trace[turn].stored < trace[0].stored);
        assert!(trace.last().unwrap().stored > trace[turn].stored);
    }

    #[test]
    fn both_phases_are_linear() {
        let exp = UpsExperiment::default();
        let trace = ups_experiment(&exp);
        // Compare early and late slope within the discharge phase.
        let s1 = slope_wh_per_min(&trace[1], &trace[2]);
        let s2 = slope_wh_per_min(&trace[10], &trace[11]);
        assert!((s1 - s2).abs() < 1e-9, "discharge slope must be constant");
        assert!(s1 < 0.0);
    }

    #[test]
    fn charging_is_slower_than_discharging() {
        let exp = UpsExperiment::default();
        let trace = ups_experiment(&exp);
        let turn = trace
            .iter()
            .position(|s| s.elapsed >= exp.discharge_phase)
            .unwrap();
        let discharge_slope = slope_wh_per_min(&trace[1], &trace[turn - 1]).abs();
        let charge_slope = slope_wh_per_min(&trace[turn + 1], &trace[turn + 5]).abs();
        assert!(
            charge_slope < discharge_slope,
            "charge {charge_slope} must be slower than discharge {discharge_slope}"
        );
    }

    #[test]
    fn wall_power_is_zero_only_while_unplugged() {
        let exp = UpsExperiment::default();
        let trace = ups_experiment(&exp);
        for s in &trace[1..] {
            if s.elapsed <= exp.discharge_phase {
                assert_eq!(s.wall_power, Power::ZERO);
            } else {
                assert!(s.wall_power >= exp.load);
            }
        }
    }

    #[test]
    fn ups_loss_visible_in_wall_power_during_charge() {
        // Wall power during charging exceeds the desktop load by the charger
        // draw — that surplus is the "UPS loss + recharge" the paper measures.
        let exp = UpsExperiment::default();
        let trace = ups_experiment(&exp);
        let charging: Vec<_> = trace
            .iter()
            .filter(|s| s.elapsed > exp.discharge_phase && !s.wall_power.as_watts().eq(&0.0))
            .collect();
        let peak_wall = charging
            .iter()
            .map(|s| s.wall_power)
            .fold(Power::ZERO, Power::max);
        assert!(peak_wall > exp.load);
        assert!(peak_wall <= exp.load + exp.spec.max_charge_rate);
    }
}
