//! Aggregation of per-server battery packs.

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Energy, Power};

use crate::{Battery, BatterySpec};

/// A bank of identical per-server battery packs operated in lock-step.
///
/// The paper's attacker has four servers, each with a 0.05 kWh pack, used as
/// one 0.2 kWh aggregate. The bank charges and discharges all packs evenly —
/// matching a dual-source PSU setup where every server contributes the same
/// share of the attack load — while still tracking per-pack state so that
/// uneven requests saturate gracefully.
///
/// # Examples
///
/// ```
/// use hbm_battery::{BatteryBank, BatterySpec};
/// use hbm_units::{Duration, Energy, Power};
///
/// let per_server = BatterySpec {
///     capacity: Energy::from_kilowatt_hours(0.05),
///     max_charge_rate: Power::from_kilowatts(0.05),
///     max_discharge_rate: Power::from_kilowatts(0.25),
///     charge_efficiency: 0.92,
///     discharge_efficiency: 0.95,
/// };
/// let mut bank = BatteryBank::full(per_server, 4);
/// assert_eq!(bank.capacity(), Energy::from_kilowatt_hours(0.2));
/// let p = bank.discharge(Power::from_kilowatts(1.0), Duration::from_minutes(1.0));
/// assert_eq!(p.as_kilowatts(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryBank {
    packs: Vec<Battery>,
}

impl BatteryBank {
    /// Creates a bank of `count` fully charged packs.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `per_pack` is invalid.
    pub fn full(per_pack: BatterySpec, count: usize) -> Self {
        assert!(count > 0, "battery bank needs at least one pack");
        BatteryBank {
            packs: (0..count).map(|_| Battery::full(per_pack)).collect(),
        }
    }

    /// Creates a bank of `count` empty packs.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `per_pack` is invalid.
    pub fn empty(per_pack: BatterySpec, count: usize) -> Self {
        assert!(count > 0, "battery bank needs at least one pack");
        BatteryBank {
            packs: (0..count).map(|_| Battery::empty(per_pack)).collect(),
        }
    }

    /// Number of packs in the bank.
    pub fn len(&self) -> usize {
        self.packs.len()
    }

    /// Whether the bank has no packs (never true for constructed banks).
    pub fn is_empty(&self) -> bool {
        self.packs.is_empty()
    }

    /// Iterates over the individual packs.
    pub fn iter(&self) -> std::slice::Iter<'_, Battery> {
        self.packs.iter()
    }

    /// Total usable capacity across packs.
    pub fn capacity(&self) -> Energy {
        self.packs.iter().map(|p| p.spec().capacity).sum()
    }

    /// Total stored energy across packs.
    pub fn stored(&self) -> Energy {
        self.packs.iter().map(Battery::stored).sum()
    }

    /// Aggregate state of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.stored() / self.capacity()
    }

    /// Whether every pack is drained.
    pub fn is_drained(&self) -> bool {
        self.packs.iter().all(Battery::is_empty)
    }

    /// Whether every pack is at capacity.
    pub fn is_full(&self) -> bool {
        self.packs.iter().all(Battery::is_full)
    }

    /// Charges the bank, splitting `input` evenly across packs.
    ///
    /// Returns the total power drawn from the PDU.
    ///
    /// # Panics
    ///
    /// Panics if `input` is negative or `dt` is non-positive.
    pub fn charge(&mut self, input: Power, dt: Duration) -> Power {
        let share = input / self.packs.len() as f64;
        self.packs.iter_mut().map(|p| p.charge(share, dt)).sum()
    }

    /// Discharges the bank, splitting the `output` request evenly.
    ///
    /// Returns the total net power delivered to the servers.
    ///
    /// # Panics
    ///
    /// Panics if `output` is negative or `dt` is non-positive.
    pub fn discharge(&mut self, output: Power, dt: Duration) -> Power {
        let share = output / self.packs.len() as f64;
        self.packs.iter_mut().map(|p| p.discharge(share, dt)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn per_server() -> BatterySpec {
        BatterySpec {
            capacity: Energy::from_kilowatt_hours(0.05),
            max_charge_rate: Power::from_kilowatts(0.05),
            max_discharge_rate: Power::from_kilowatts(0.25),
            charge_efficiency: 1.0,
            discharge_efficiency: 1.0,
        }
    }

    #[test]
    fn aggregates_match_paper_defaults() {
        let bank = BatteryBank::full(per_server(), 4);
        assert_eq!(bank.len(), 4);
        assert!((bank.capacity().as_kilowatt_hours() - 0.2).abs() < 1e-12);
        assert_eq!(bank.state_of_charge(), 1.0);
        assert!(bank.is_full());
    }

    #[test]
    fn even_discharge_runs_twelve_minutes_at_one_kilowatt() {
        let mut bank = BatteryBank::full(per_server(), 4);
        let dt = Duration::from_minutes(1.0);
        let mut minutes = 0;
        loop {
            let p = bank.discharge(Power::from_kilowatts(1.0), dt);
            if p < Power::from_watts(999.0) {
                break;
            }
            minutes += 1;
        }
        assert_eq!(minutes, 12); // 0.2 kWh at 1 kW
        assert!(bank.is_drained());
    }

    #[test]
    fn charge_rate_is_aggregate_of_pack_rates() {
        let mut bank = BatteryBank::empty(per_server(), 4);
        let drawn = bank.charge(Power::from_kilowatts(1.0), Duration::from_minutes(1.0));
        assert!((drawn.as_kilowatts() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one pack")]
    fn zero_packs_rejected() {
        let _ = BatteryBank::full(per_server(), 0);
    }
}
