//! Built-in server battery model.
//!
//! The attack in *Heat Behind the Meter* hinges on servers whose power supply
//! units embed battery packs (e.g. Supermicro BBP). Discharging those packs
//! lets a malicious tenant consume more power — and therefore emit more heat —
//! than the colocation operator's power meters register. This crate models
//! that energy buffer.
//!
//! The paper validates (Section V-B, Fig. 7b) that a **linear** energy model
//! `b_{k+1} = min(b_k + e_k, B̄)` suffices; the only refinement kept here is a
//! configurable round-trip efficiency, which reproduces the experimentally
//! observed asymmetry between charge and discharge slopes (the prototype UPS
//! charges slower than it discharges because conversion losses ride on top of
//! the desktop load).
//!
//! # Examples
//!
//! ```
//! use hbm_battery::{Battery, BatterySpec};
//! use hbm_units::{Duration, Energy, Power};
//!
//! // The paper's default attacker battery: 0.2 kWh, 0.2 kW charge rate.
//! let mut battery = Battery::full(BatterySpec::paper_default());
//! // One minute of attack at 1 kW net output:
//! let delivered = battery.discharge(Power::from_kilowatts(1.0), Duration::from_minutes(1.0));
//! assert_eq!(delivered.as_kilowatts(), 1.0);
//! assert!(battery.stored() < Energy::from_kilowatt_hours(0.2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod validation;

pub use bank::BatteryBank;
pub use validation::{ups_experiment, UpsExperiment, UpsSample};

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Energy, Power};

/// Static parameters of a battery (pack) as installed in a server PSU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatterySpec {
    /// Usable energy capacity `B̄`.
    pub capacity: Energy,
    /// Maximum power the charger draws from the PDU.
    pub max_charge_rate: Power,
    /// Maximum net power the pack can deliver to the server.
    pub max_discharge_rate: Power,
    /// Fraction of charger input energy that ends up stored (0, 1].
    pub charge_efficiency: f64,
    /// Fraction of stored energy that reaches the server on discharge (0, 1].
    pub discharge_efficiency: f64,
}

impl BatterySpec {
    /// The paper's Table I attacker default: 0.2 kWh total capacity,
    /// 0.2 kW charging, enough discharge headroom for the 1 kW repeated-attack
    /// load. The 3 kW one-shot load uses [`BatterySpec::one_shot`].
    pub fn paper_default() -> Self {
        BatterySpec {
            capacity: Energy::from_kilowatt_hours(0.2),
            max_charge_rate: Power::from_kilowatts(0.2),
            max_discharge_rate: Power::from_kilowatts(1.0),
            charge_efficiency: 0.92,
            discharge_efficiency: 0.95,
        }
    }

    /// A larger pack sized for the 3 kW one-shot attack (950 W peak per
    /// server across four servers, sustained for several minutes).
    pub fn one_shot() -> Self {
        BatterySpec {
            capacity: Energy::from_kilowatt_hours(0.5),
            max_charge_rate: Power::from_kilowatts(0.2),
            max_discharge_rate: Power::from_kilowatts(3.0),
            charge_efficiency: 0.92,
            discharge_efficiency: 0.95,
        }
    }

    /// Returns a copy with a different capacity (sensitivity sweeps, Fig. 12a).
    pub fn with_capacity(mut self, capacity: Energy) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns a copy with a different maximum discharge rate (Fig. 12c).
    pub fn with_max_discharge_rate(mut self, rate: Power) -> Self {
        self.max_discharge_rate = rate;
        self
    }

    /// Returns a copy with a different maximum charge rate.
    pub fn with_max_charge_rate(mut self, rate: Power) -> Self {
        self.max_charge_rate = rate;
        self
    }

    /// Returns a copy with ideal (lossless) conversion, matching the paper's
    /// plain linear model exactly.
    pub fn lossless(mut self) -> Self {
        self.charge_efficiency = 1.0;
        self.discharge_efficiency = 1.0;
        self
    }

    /// Validates physical plausibility of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`BatterySpecError`] describing the first violated constraint
    /// (non-positive capacity/rates, efficiency outside `(0, 1]`, or
    /// non-finite values).
    pub fn validate(&self) -> Result<(), BatterySpecError> {
        if !self.capacity.is_finite() || self.capacity <= Energy::ZERO {
            return Err(BatterySpecError::NonPositiveCapacity);
        }
        if !self.max_charge_rate.is_finite() || self.max_charge_rate <= Power::ZERO {
            return Err(BatterySpecError::NonPositiveChargeRate);
        }
        if !self.max_discharge_rate.is_finite() || self.max_discharge_rate <= Power::ZERO {
            return Err(BatterySpecError::NonPositiveDischargeRate);
        }
        if !(self.charge_efficiency > 0.0 && self.charge_efficiency <= 1.0) {
            return Err(BatterySpecError::EfficiencyOutOfRange);
        }
        if !(self.discharge_efficiency > 0.0 && self.discharge_efficiency <= 1.0) {
            return Err(BatterySpecError::EfficiencyOutOfRange);
        }
        Ok(())
    }
}

/// Error returned by [`BatterySpec::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatterySpecError {
    /// Capacity must be positive and finite.
    NonPositiveCapacity,
    /// Charge rate must be positive and finite.
    NonPositiveChargeRate,
    /// Discharge rate must be positive and finite.
    NonPositiveDischargeRate,
    /// Efficiencies must lie in `(0, 1]`.
    EfficiencyOutOfRange,
}

impl std::fmt::Display for BatterySpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            BatterySpecError::NonPositiveCapacity => "battery capacity must be positive",
            BatterySpecError::NonPositiveChargeRate => "battery charge rate must be positive",
            BatterySpecError::NonPositiveDischargeRate => "battery discharge rate must be positive",
            BatterySpecError::EfficiencyOutOfRange => "battery efficiency must be within (0, 1]",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for BatterySpecError {}

/// A battery pack with its current stored energy.
///
/// State transitions follow the paper's linear model with efficiency factors:
///
/// * charging: `b' = min(b + η_c · p_in · Δt, B̄)`
/// * discharging: `b' = max(b − p_out · Δt / η_d, 0)`
///
/// Both operations report how much power actually flowed on the *external*
/// side (PDU draw for charging, server delivery for discharging), so the
/// caller can meter it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    spec: BatterySpec,
    stored: Energy,
}

impl Battery {
    /// Creates a battery at the given initial stored energy.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`BatterySpec::validate`] or if `initial` is
    /// outside `[0, capacity]`.
    pub fn new(spec: BatterySpec, initial: Energy) -> Self {
        spec.validate().expect("invalid battery spec");
        assert!(
            initial >= Energy::ZERO && initial <= spec.capacity,
            "initial battery energy outside [0, capacity]"
        );
        Battery {
            spec,
            stored: initial,
        }
    }

    /// Creates a fully charged battery.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`BatterySpec::validate`].
    pub fn full(spec: BatterySpec) -> Self {
        let capacity = spec.capacity;
        Battery::new(spec, capacity)
    }

    /// Creates an empty battery.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`BatterySpec::validate`].
    pub fn empty(spec: BatterySpec) -> Self {
        Battery::new(spec, Energy::ZERO)
    }

    /// The static parameters of this battery.
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// Currently stored energy `b`.
    pub fn stored(&self) -> Energy {
        self.stored
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.stored / self.spec.capacity
    }

    /// Whether the pack is at capacity.
    pub fn is_full(&self) -> bool {
        self.spec.capacity - self.stored < Energy::from_kilowatt_hours(1e-12)
    }

    /// Whether the pack is drained.
    pub fn is_empty(&self) -> bool {
        self.stored < Energy::from_kilowatt_hours(1e-12)
    }

    /// Charges for `dt` drawing at most `input` from the PDU.
    ///
    /// Returns the power actually drawn, which is capped by the charger rate
    /// and tapers in the final slot when the pack tops out.
    ///
    /// # Panics
    ///
    /// Panics if `input` is negative or `dt` is non-positive.
    pub fn charge(&mut self, input: Power, dt: Duration) -> Power {
        assert!(input >= Power::ZERO, "charge input must be non-negative");
        assert!(dt > Duration::ZERO, "charge duration must be positive");
        let rate = input.min(self.spec.max_charge_rate);
        let headroom = self.spec.capacity - self.stored;
        // Input power whose stored fraction would exactly fill the pack.
        let fill_rate = headroom / dt / self.spec.charge_efficiency;
        let drawn = rate.min(fill_rate);
        self.stored = (self.stored + drawn * dt * self.spec.charge_efficiency)
            .clamp(Energy::ZERO, self.spec.capacity);
        drawn
    }

    /// Discharges for `dt`, requesting `output` net power at the server.
    ///
    /// Returns the power actually delivered, capped by the discharge rate and
    /// by the remaining stored energy (losses considered).
    ///
    /// # Panics
    ///
    /// Panics if `output` is negative or `dt` is non-positive.
    pub fn discharge(&mut self, output: Power, dt: Duration) -> Power {
        assert!(
            output >= Power::ZERO,
            "discharge output must be non-negative"
        );
        assert!(dt > Duration::ZERO, "discharge duration must be positive");
        let rate = output.min(self.spec.max_discharge_rate);
        // Net output sustainable from what is stored over this slot.
        let drain_rate = self.stored / dt * self.spec.discharge_efficiency;
        let delivered = rate.min(drain_rate);
        self.stored = (self.stored - delivered * dt / self.spec.discharge_efficiency)
            .clamp(Energy::ZERO, self.spec.capacity);
        delivered
    }

    /// Sets the stored energy directly (used by tests and warm starts).
    ///
    /// # Panics
    ///
    /// Panics if `stored` is outside `[0, capacity]`.
    pub fn set_stored(&mut self, stored: Energy) {
        assert!(
            stored >= Energy::ZERO && stored <= self.spec.capacity,
            "stored energy outside [0, capacity]"
        );
        self.stored = stored;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> Duration {
        Duration::from_minutes(1.0)
    }

    #[test]
    fn full_battery_delivers_requested_power() {
        let mut b = Battery::full(BatterySpec::paper_default());
        let p = b.discharge(Power::from_kilowatts(1.0), minute());
        assert_eq!(p.as_kilowatts(), 1.0);
    }

    #[test]
    fn discharge_is_rate_limited() {
        let mut b = Battery::full(BatterySpec::paper_default());
        let p = b.discharge(Power::from_kilowatts(5.0), minute());
        assert_eq!(p.as_kilowatts(), 1.0); // spec max
    }

    #[test]
    fn charge_is_rate_limited() {
        let mut b = Battery::empty(BatterySpec::paper_default());
        let p = b.charge(Power::from_kilowatts(2.0), minute());
        assert_eq!(p.as_kilowatts(), 0.2); // spec max
    }

    #[test]
    fn empty_battery_delivers_nothing() {
        let mut b = Battery::empty(BatterySpec::paper_default());
        let p = b.discharge(Power::from_kilowatts(1.0), minute());
        assert_eq!(p, Power::ZERO);
        assert!(b.is_empty());
    }

    #[test]
    fn charge_tapers_at_capacity() {
        let spec = BatterySpec::paper_default().lossless();
        let mut b = Battery::new(spec, spec.capacity - Energy::from_kilowatt_hours(0.001));
        // 0.2 kW for a minute would add 0.00333 kWh; only 0.001 kWh fits.
        let drawn = b.charge(Power::from_kilowatts(0.2), minute());
        assert!(drawn < Power::from_kilowatts(0.2));
        assert!(b.is_full());
    }

    #[test]
    fn lossless_round_trip_conserves_energy() {
        let spec = BatterySpec::paper_default().lossless();
        let mut b = Battery::empty(spec);
        for _ in 0..60 {
            b.charge(Power::from_kilowatts(0.2), minute());
        }
        // 0.2 kW for 1 h = 0.2 kWh = full capacity.
        assert!(b.is_full());
        let mut delivered = Energy::ZERO;
        for _ in 0..12 {
            delivered += b.discharge(Power::from_kilowatts(1.0), minute()) * minute();
        }
        assert!((delivered.as_kilowatt_hours() - 0.2).abs() < 1e-9);
        assert!(b.is_empty());
    }

    #[test]
    fn lossy_round_trip_loses_energy() {
        let spec = BatterySpec::paper_default();
        let mut b = Battery::empty(spec);
        let mut drawn = Energy::ZERO;
        for _ in 0..200 {
            drawn += b.charge(Power::from_kilowatts(0.2), minute()) * minute();
            if b.is_full() {
                break;
            }
        }
        let mut delivered = Energy::ZERO;
        for _ in 0..200 {
            delivered += b.discharge(Power::from_kilowatts(1.0), minute()) * minute();
            if b.is_empty() {
                break;
            }
        }
        assert!(delivered < drawn, "round trip must lose energy");
        let ratio = delivered / drawn;
        let expected = spec.charge_efficiency * spec.discharge_efficiency;
        assert!(
            (ratio - expected).abs() < 0.02,
            "ratio {ratio} vs {expected}"
        );
    }

    #[test]
    fn default_pack_supports_fifteen_minutes_per_server() {
        // Table I: 0.05 kWh per server = 200 W for 15 min.
        let spec = BatterySpec {
            capacity: Energy::from_kilowatt_hours(0.05),
            max_charge_rate: Power::from_kilowatts(0.05),
            max_discharge_rate: Power::from_kilowatts(0.25),
            charge_efficiency: 1.0,
            discharge_efficiency: 1.0,
        };
        let mut b = Battery::full(spec);
        let mut minutes = 0;
        while !b.is_empty() {
            let p = b.discharge(Power::from_watts(200.0), minute());
            if p < Power::from_watts(1.0) {
                break;
            }
            minutes += 1;
        }
        assert_eq!(minutes, 15);
    }

    #[test]
    fn spec_validation_rejects_bad_parameters() {
        let good = BatterySpec::paper_default();
        assert!(good.validate().is_ok());
        assert_eq!(
            good.with_capacity(Energy::ZERO).validate(),
            Err(BatterySpecError::NonPositiveCapacity)
        );
        assert_eq!(
            good.with_max_charge_rate(Power::ZERO).validate(),
            Err(BatterySpecError::NonPositiveChargeRate)
        );
        assert_eq!(
            good.with_max_discharge_rate(Power::from_kilowatts(-1.0))
                .validate(),
            Err(BatterySpecError::NonPositiveDischargeRate)
        );
        let mut bad_eff = good;
        bad_eff.charge_efficiency = 1.5;
        assert_eq!(
            bad_eff.validate(),
            Err(BatterySpecError::EfficiencyOutOfRange)
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, capacity]")]
    fn new_rejects_overfull_state() {
        let spec = BatterySpec::paper_default();
        let _ = Battery::new(spec, spec.capacity + Energy::from_kilowatt_hours(0.1));
    }
}
