//! Property-based tests of the battery invariants.

use hbm_battery::{Battery, BatteryBank, BatterySpec};
use hbm_units::{Duration, Energy, Power};
use proptest::prelude::*;

fn arbitrary_spec() -> impl Strategy<Value = BatterySpec> {
    (
        0.05..1.0f64, // capacity kWh
        0.05..0.5f64, // charge kW
        0.5..4.0f64,  // discharge kW
        0.5..1.0f64,  // charge eff
        0.5..1.0f64,  // discharge eff
    )
        .prop_map(|(cap, chg, dis, ec, ed)| BatterySpec {
            capacity: Energy::from_kilowatt_hours(cap),
            max_charge_rate: Power::from_kilowatts(chg),
            max_discharge_rate: Power::from_kilowatts(dis),
            charge_efficiency: ec,
            discharge_efficiency: ed,
        })
}

/// A sequence of charge (+) / discharge (−) power requests in kW.
fn request_sequence() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0..3.0f64, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stored_energy_always_within_bounds(
        spec in arbitrary_spec(),
        start_frac in 0.0..1.0f64,
        requests in request_sequence(),
    ) {
        let mut battery = Battery::new(spec, spec.capacity * start_frac);
        let dt = Duration::from_minutes(1.0);
        for r in requests {
            if r >= 0.0 {
                battery.charge(Power::from_kilowatts(r), dt);
            } else {
                battery.discharge(Power::from_kilowatts(-r), dt);
            }
            prop_assert!(battery.stored() >= Energy::ZERO);
            prop_assert!(battery.stored() <= spec.capacity + Energy::from_kilowatt_hours(1e-12));
            let soc = battery.state_of_charge();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&soc));
        }
    }

    #[test]
    fn delivered_power_never_exceeds_request_or_rate(
        spec in arbitrary_spec(),
        request in 0.0..5.0f64,
    ) {
        let mut battery = Battery::full(spec);
        let req = Power::from_kilowatts(request);
        let delivered = battery.discharge(req, Duration::from_minutes(1.0));
        prop_assert!(delivered <= req + Power::from_watts(1e-9));
        prop_assert!(delivered <= spec.max_discharge_rate + Power::from_watts(1e-9));
    }

    #[test]
    fn charging_never_draws_more_than_rate(
        spec in arbitrary_spec(),
        input in 0.0..5.0f64,
    ) {
        let mut battery = Battery::empty(spec);
        let drawn = battery.charge(Power::from_kilowatts(input), Duration::from_minutes(1.0));
        prop_assert!(drawn <= spec.max_charge_rate + Power::from_watts(1e-9));
        prop_assert!(drawn <= Power::from_kilowatts(input) + Power::from_watts(1e-9));
    }

    #[test]
    fn round_trip_never_creates_energy(
        spec in arbitrary_spec(),
        cycles in 1u32..20,
    ) {
        let mut battery = Battery::empty(spec);
        let dt = Duration::from_minutes(1.0);
        let mut drawn = Energy::ZERO;
        let mut delivered = Energy::ZERO;
        for _ in 0..cycles {
            for _ in 0..30 {
                drawn += battery.charge(spec.max_charge_rate, dt) * dt;
            }
            for _ in 0..30 {
                delivered += battery.discharge(spec.max_discharge_rate, dt) * dt;
            }
        }
        // delivered ≤ drawn · round-trip efficiency + ε (no free energy).
        let bound = drawn * (spec.charge_efficiency * spec.discharge_efficiency)
            + Energy::from_kilowatt_hours(1e-9);
        prop_assert!(
            delivered <= bound + battery.stored(),
            "delivered {delivered} vs drawn {drawn}"
        );
    }

    #[test]
    fn bank_soc_equals_mean_of_packs(
        spec in arbitrary_spec(),
        packs in 1usize..8,
        requests in request_sequence(),
    ) {
        let mut bank = BatteryBank::full(spec, packs);
        let dt = Duration::from_minutes(1.0);
        for r in requests {
            if r >= 0.0 {
                bank.charge(Power::from_kilowatts(r), dt);
            } else {
                bank.discharge(Power::from_kilowatts(-r), dt);
            }
        }
        let mean_soc: f64 =
            bank.iter().map(Battery::state_of_charge).sum::<f64>() / packs as f64;
        prop_assert!((bank.state_of_charge() - mean_soc).abs() < 1e-9);
    }

    #[test]
    fn discharge_is_monotone_in_stored_energy(
        spec in arbitrary_spec(),
        lo_frac in 0.0..0.5f64,
        hi_extra in 0.0..0.5f64,
    ) {
        let dt = Duration::from_minutes(1.0);
        let hi_frac = lo_frac + hi_extra;
        let mut low = Battery::new(spec, spec.capacity * lo_frac);
        let mut high = Battery::new(spec, spec.capacity * hi_frac);
        let p_low = low.discharge(spec.max_discharge_rate, dt);
        let p_high = high.discharge(spec.max_discharge_rate, dt);
        prop_assert!(p_high >= p_low - Power::from_watts(1e-9));
    }
}
