//! Property-based tests of the tabular RL toolkit.

use hbm_rl::{
    epsilon_sweep, learning_rate_sweep, BatchQLearning, EpsilonSchedule, LearningRate, QTable,
    UniformGrid,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_index_always_in_range(
        lo in -100.0..0.0f64,
        width in 0.1..100.0f64,
        bins in 1usize..64,
        x in -1e6..1e6f64,
    ) {
        let grid = UniformGrid::new(lo, lo + width, bins);
        prop_assert!(grid.index(x) < bins);
    }

    #[test]
    fn grid_center_round_trips(
        lo in -10.0..0.0f64,
        width in 0.5..20.0f64,
        bins in 1usize..64,
    ) {
        let grid = UniformGrid::new(lo, lo + width, bins);
        for i in 0..bins {
            prop_assert_eq!(grid.index(grid.center(i)), i);
        }
    }

    #[test]
    fn grid_index_is_monotone(
        lo in -10.0..0.0f64,
        width in 0.5..20.0f64,
        bins in 1usize..32,
        a in -50.0..50.0f64,
        d in 0.0..50.0f64,
    ) {
        let grid = UniformGrid::new(lo, lo + width, bins);
        prop_assert!(grid.index(a + d) >= grid.index(a));
    }

    #[test]
    fn qtable_blend_stays_between_value_and_target(
        initial in -100.0..100.0f64,
        target in -100.0..100.0f64,
        delta in 0.01..1.0f64,
    ) {
        let mut q = QTable::new(1, 1);
        q.set(0, 0, initial);
        q.blend(0, 0, target, delta);
        let v = q.get(0, 0);
        let (lo, hi) = if initial <= target { (initial, target) } else { (target, initial) };
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn qtable_blend_converges_to_target(
        target in -50.0..50.0f64,
        delta in 0.05..0.9f64,
    ) {
        let mut q = QTable::new(1, 1);
        // 400 iterations keep |50 * (1 - delta)^n| under 1e-3 across the
        // whole delta range, including the 0.05 boundary.
        for _ in 0..400 {
            q.blend(0, 0, target, delta);
        }
        prop_assert!((q.get(0, 0) - target).abs() < 1e-3);
    }

    #[test]
    fn best_action_attains_max(values in prop::collection::vec(-10.0..10.0f64, 1..8)) {
        let mut q = QTable::new(1, values.len());
        for (a, &v) in values.iter().enumerate() {
            q.set(0, a, v);
        }
        let allowed: Vec<usize> = (0..values.len()).collect();
        let best = q.best_action(0, &allowed);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(q.get(0, best), max);
    }

    #[test]
    fn learning_rate_is_in_unit_interval_and_decreasing(t in 1u64..100_000) {
        let s = LearningRate::paper_default();
        let now = s.at(t);
        let later = s.at(t + 1);
        prop_assert!(now > 0.0 && now <= 1.0);
        prop_assert!(later <= now);
    }

    #[test]
    fn epsilon_never_below_floor(t in 1u64..100_000) {
        let e = EpsilonSchedule::paper_default();
        let v = e.at(t);
        prop_assert!(v >= e.floor - 1e-12);
        prop_assert!(v <= e.initial + 1e-12);
    }

    #[test]
    fn batch_state_value_dominates_every_action(
        qs in prop::collection::vec(-5.0..5.0f64, 3),
        vs in prop::collection::vec(-5.0..5.0f64, 3),
    ) {
        let mut agent = BatchQLearning::new(1, 3, 3, 0.9);
        for (a, &q) in qs.iter().enumerate() {
            agent.q_table_mut().set(0, a, q);
        }
        agent.post_values_mut().copy_from_slice(&vs);
        let post = |_s: usize, a: usize| a;
        let allowed = [0usize, 1, 2];
        let c = agent.state_value(0, &allowed, post);
        for &a in &allowed {
            prop_assert!(c + 1e-9 >= qs[a] + 0.9 * vs[a]);
        }
        let chosen = agent.select_greedy(0, &allowed, post);
        prop_assert!((c - (qs[chosen] + 0.9 * vs[chosen])).abs() < 1e-9);
    }

    /// The packed column sweep the batch engine uses for per-lane ε
    /// schedules must be bit-identical to the scalar `at` calls it
    /// replaces, for any schedule parameters, seed-derived day offsets,
    /// and slot counts.
    #[test]
    fn epsilon_sweep_is_bit_identical_to_scalar(
        initial in 0.0..1.0f64,
        decay in 0.5..1.0f64,
        floor in 0.0..0.01f64,
        start_day in 0u64..100_000,
        slots in 1usize..64,
        slots_per_day in 1u64..2000,
    ) {
        let schedules: Vec<EpsilonSchedule> = (0..4)
            .map(|lane| EpsilonSchedule {
                initial: initial * (1.0 + 0.1 * lane as f64).min(1.0),
                decay,
                floor,
            })
            .collect();
        // Lanes step in lockstep: the day column is derived from slot
        // indices exactly the way the batch engine derives it.
        for slot in 0..slots as u64 {
            let day = (start_day + slot) / slots_per_day + 1;
            let days = vec![day; schedules.len()];
            let mut out = vec![0.0; schedules.len()];
            epsilon_sweep(&schedules, &days, &mut out);
            for (o, s) in out.iter().zip(&schedules) {
                prop_assert_eq!(o.to_bits(), s.at(day).to_bits());
            }
        }
    }

    /// Same pinning for the learning-rate sweep, across both schedule
    /// variants and the full day range the simulator can reach.
    #[test]
    fn learning_rate_sweep_is_bit_identical_to_scalar(
        exponent in 0.1..2.0f64,
        constant in 0.0..1.5f64,
        start_day in 0u64..1_000_000,
        slots in 1usize..64,
        slots_per_day in 1u64..2000,
    ) {
        let schedules = [
            LearningRate::Polynomial { exponent },
            LearningRate::Constant(constant),
            LearningRate::paper_default(),
        ];
        for slot in 0..slots as u64 {
            let day = (start_day + slot) / slots_per_day + 1;
            let days = [day; 3];
            let mut out = [0.0; 3];
            learning_rate_sweep(&schedules, &days, &mut out);
            for (o, s) in out.iter().zip(&schedules) {
                prop_assert_eq!(o.to_bits(), s.at(day).to_bits());
            }
        }
    }

    #[test]
    fn batch_update_moves_q_toward_reward(
        reward in -10.0..10.0f64,
        delta in 0.05..1.0f64,
    ) {
        let mut agent = BatchQLearning::new(2, 2, 2, 0.9);
        let before = agent.q_table().get(0, 1);
        agent.update(0, 1, reward, 1, &[0, 1], |_s, a| a % 2, delta);
        let after = agent.q_table().get(0, 1);
        let (lo, hi) = if before <= reward { (before, reward) } else { (reward, before) };
        prop_assert!(after >= lo - 1e-9 && after <= hi + 1e-9);
    }
}
