//! Batch Q-learning with post-decision states (the paper's Eqns. 3–7).

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::QTable;

/// Batch Q-learning.
///
/// The agent maintains **three** value functions (Section IV-B):
///
/// * `Q(s, a)` — the *immediate* reward estimate of acting `a` in `s`
///   (Eqn. 5 blends observed rewards only, no bootstrap);
/// * `V(s̃)` — the value of the *post-decision state* `s̃ = f(s, a)` reached
///   deterministically right after acting (battery updated, exogenous load
///   not yet evolved), learned by Eqn. 7;
/// * `C(s)` — the value of a full state, recomputed on demand as
///   `C(s) = max_a [Q(s, a) + γ·V(f(s, a))]` (Eqn. 6).
///
/// Action selection (Eqn. 3) maximizes `Q(s, a) + γ·V(f(s, a))`.
///
/// Because every action funnels through the deterministic post-state map,
/// experience from *any* action updates the value shared by all actions that
/// lead to the same post state — the "batch" effect that makes the paper's
/// attacker converge within one to four weeks of simulated time.
///
/// # Examples
///
/// ```
/// use hbm_rl::BatchQLearning;
///
/// let mut agent = BatchQLearning::new(4, 2, 4, 0.99);
/// let post = |s: usize, a: usize| (s + a) % 4;
/// let a = agent.select_greedy(0, &[0, 1], post);
/// agent.update(0, a, 0.5, 2, &[0, 1], post, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchQLearning {
    q: QTable,
    v: Vec<f64>,
    gamma: f64,
}

impl BatchQLearning {
    /// Creates an agent with zeroed tables.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `gamma` is outside `[0, 1)`.
    pub fn new(states: usize, actions: usize, post_states: usize, gamma: f64) -> Self {
        assert!(post_states > 0, "need at least one post state");
        assert!((0.0..1.0).contains(&gamma), "discount must be in [0, 1)");
        BatchQLearning {
            q: QTable::new(states, actions),
            v: vec![0.0; post_states],
            gamma,
        }
    }

    /// The immediate-reward table `Q`.
    pub fn q_table(&self) -> &QTable {
        &self.q
    }

    /// Mutable access to `Q` (offline warm starts, as the paper initializes
    /// its tables from offline runs on random traces).
    pub fn q_table_mut(&mut self) -> &mut QTable {
        &mut self.q
    }

    /// The post-state value vector `V`.
    pub fn post_values(&self) -> &[f64] {
        &self.v
    }

    /// Mutable access to `V` (offline warm starts).
    pub fn post_values_mut(&mut self) -> &mut [f64] {
        &mut self.v
    }

    /// Discount factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Eqn. 6: `C(s) = max_a [Q(s, a) + γ·V(f(s, a))]` over `allowed`.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or `post` returns an out-of-range index.
    pub fn state_value<F>(&self, s: usize, allowed: &[usize], post: F) -> f64
    where
        F: Fn(usize, usize) -> usize,
    {
        assert!(!allowed.is_empty(), "no allowed actions");
        // One row lookup bounds-checks the state once; per-action `get`
        // calls would recheck it on every iteration.
        let row = self.q.row(s);
        allowed
            .iter()
            .map(|&a| row[a] + self.gamma * self.v[post(s, a)])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Eqn. 3: greedy action `argmax_a [Q(s, a) + γ·V(f(s, a))]`.
    ///
    /// Ties break toward the earliest entry of `allowed`.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or `post` returns an out-of-range index.
    pub fn select_greedy<F>(&self, s: usize, allowed: &[usize], post: F) -> usize
    where
        F: Fn(usize, usize) -> usize,
    {
        assert!(!allowed.is_empty(), "no allowed actions");
        let row = self.q.row(s);
        let mut best = allowed[0];
        let mut best_v = f64::NEG_INFINITY;
        for &a in allowed {
            let v = row[a] + self.gamma * self.v[post(s, a)];
            if v > best_v {
                best = a;
                best_v = v;
            }
        }
        best
    }

    /// ε-greedy variant of [`BatchQLearning::select_greedy`].
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or `epsilon` is outside `[0, 1]`.
    pub fn select<F, R>(
        &self,
        s: usize,
        allowed: &[usize],
        post: F,
        epsilon: f64,
        rng: &mut R,
    ) -> usize
    where
        F: Fn(usize, usize) -> usize,
        R: RngExt + ?Sized,
    {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        assert!(!allowed.is_empty(), "no allowed actions");
        if rng.random::<f64>() < epsilon {
            allowed[rng.random_range(0..allowed.len())]
        } else {
            self.select_greedy(s, allowed, post)
        }
    }

    /// Eqns. 5 and 7: blends the observed reward into `Q(s, a)` and the
    /// next state's value `C(s')` into `V(f(s, a))`.
    ///
    /// `allowed_next` are the actions available in `s_next`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range, `allowed_next` is empty, or
    /// `delta` is outside `(0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn update<F>(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        allowed_next: &[usize],
        post: F,
        delta: f64,
    ) where
        F: Fn(usize, usize) -> usize,
    {
        assert!(
            delta > 0.0 && delta <= 1.0,
            "learning rate must be in (0, 1]"
        );
        let started = hbm_telemetry::timing::start();
        // Eqn. 5: Q tracks the immediate reward.
        self.q.blend(s, a, reward, delta);
        // Eqns. 6–7: propagate the next state's value to the post state.
        let c_next = self.state_value(s_next, allowed_next, &post);
        let p = post(s, a);
        self.v[p] = (1.0 - delta) * self.v[p] + delta * c_next;
        hbm_telemetry::timing::record_span("rl.batch_update", started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Battery-flavored toy MDP mirroring the paper's structure.
    ///
    /// State = battery (0 = empty, 1 = full) × load (0 = low, 1 = high),
    /// encoded `s = battery * 2 + load`. Actions: 0 = charge, 1 = attack,
    /// 2 = standby. Attacking needs a full battery and empties it; charging
    /// needs an empty battery and fills it. Attacking pays +1 at high load
    /// and −0.5 at low load; everything else pays 0. Load is exogenous
    /// (high with probability 0.3).
    struct Toy {
        rng: StdRng,
    }

    impl Toy {
        fn new(seed: u64) -> Self {
            Toy {
                rng: StdRng::seed_from_u64(seed),
            }
        }

        fn allowed(s: usize) -> &'static [usize] {
            if s / 2 == 1 {
                &[1, 2] // full battery: attack or standby
            } else {
                &[0, 2] // empty battery: charge or standby
            }
        }

        /// Deterministic battery transition; load unchanged (post state).
        fn post(s: usize, a: usize) -> usize {
            let (b, u) = (s / 2, s % 2);
            let b2 = match a {
                0 => 1, // charge fills
                1 => 0, // attack empties
                _ => b,
            };
            b2 * 2 + u
        }

        fn step(&mut self, s: usize, a: usize) -> (f64, usize) {
            let u = s % 2;
            let reward = match a {
                1 => {
                    if u == 1 {
                        1.0
                    } else {
                        -0.5
                    }
                }
                _ => 0.0,
            };
            let post = Self::post(s, a);
            let u_next = usize::from(self.rng.random::<f64>() < 0.3);
            (reward, (post / 2) * 2 + u_next)
        }
    }

    fn train(seed: u64, episodes: usize) -> BatchQLearning {
        let mut agent = BatchQLearning::new(4, 3, 4, 0.9);
        let mut env = Toy::new(seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let mut s = 2; // full battery, low load
        for k in 0..episodes {
            let eps = if k < episodes / 2 { 0.3 } else { 0.05 };
            let a = agent.select(s, Toy::allowed(s), Toy::post, eps, &mut rng);
            let (r, s2) = env.step(s, a);
            let delta = (1.0 / (1.0 + k as f64 / 50.0)).max(0.02);
            agent.update(s, a, r, s2, Toy::allowed(s2), Toy::post, delta);
            s = s2;
        }
        agent
    }

    #[test]
    fn learns_paper_structured_policy() {
        let agent = train(7, 20_000);
        // Full battery + high load → attack.
        assert_eq!(agent.select_greedy(3, Toy::allowed(3), Toy::post), 1);
        // Full battery + low load → wait for a better opportunity.
        assert_eq!(agent.select_greedy(2, Toy::allowed(2), Toy::post), 2);
        // Empty battery → recharge regardless of load.
        assert_eq!(agent.select_greedy(0, Toy::allowed(0), Toy::post), 0);
        assert_eq!(agent.select_greedy(1, Toy::allowed(1), Toy::post), 0);
    }

    #[test]
    fn post_state_values_prefer_full_battery() {
        let agent = train(11, 20_000);
        let v = agent.post_values();
        // Full-battery post states dominate empty-battery ones at equal load.
        assert!(
            v[2] > v[0],
            "V(full, low) {} vs V(empty, low) {}",
            v[2],
            v[0]
        );
        assert!(
            v[3] > v[1],
            "V(full, high) {} vs V(empty, high) {}",
            v[3],
            v[1]
        );
    }

    #[test]
    fn q_table_tracks_immediate_rewards() {
        let agent = train(13, 20_000);
        // Q(full+high, attack) ≈ +1, Q(full+low, attack) ≈ −0.5.
        assert!((agent.q_table().get(3, 1) - 1.0).abs() < 0.2);
        assert!((agent.q_table().get(2, 1) + 0.5).abs() < 0.2);
    }

    #[test]
    fn state_value_is_max_over_actions() {
        let mut agent = BatchQLearning::new(2, 2, 2, 0.5);
        agent.q_table_mut().set(0, 0, 1.0);
        agent.q_table_mut().set(0, 1, 3.0);
        agent.post_values_mut()[0] = 10.0;
        agent.post_values_mut()[1] = 0.0;
        let post = |_s: usize, a: usize| a; // action 0 → post 0, action 1 → post 1
                                            // C(0) = max(1 + 0.5·10, 3 + 0.5·0) = 6.
        assert_eq!(agent.state_value(0, &[0, 1], post), 6.0);
        assert_eq!(agent.select_greedy(0, &[0, 1], post), 0);
    }

    #[test]
    #[should_panic(expected = "no allowed actions")]
    fn empty_allowed_rejected() {
        let agent = BatchQLearning::new(1, 1, 1, 0.9);
        let _ = agent.select_greedy(0, &[], |_, _| 0);
    }
}
