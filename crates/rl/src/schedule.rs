//! Learning-rate and exploration schedules.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule `δ(t)`.
///
/// The paper uses `δ(t) = 1/t^0.85`, re-evaluated once per *day* of
/// simulated time (`t` = days elapsed, starting at 1) — the exponent comes
/// from the Even-Dar & Mansour analysis of polynomial learning rates it
/// cites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearningRate {
    /// Constant rate.
    Constant(f64),
    /// Polynomial decay `1/t^exponent` in the period counter `t ≥ 1`.
    Polynomial {
        /// Decay exponent (0.85 in the paper).
        exponent: f64,
    },
}

impl LearningRate {
    /// The paper's `δ(t) = 1/t^0.85` schedule.
    pub fn paper_default() -> Self {
        LearningRate::Polynomial { exponent: 0.85 }
    }

    /// Rate at period `t` (1-based; 0 is treated as 1).
    ///
    /// Always returns a value in `(0, 1]`.
    pub fn at(&self, t: u64) -> f64 {
        match *self {
            LearningRate::Constant(c) => c.clamp(f64::MIN_POSITIVE, 1.0),
            LearningRate::Polynomial { exponent } => {
                let t = t.max(1) as f64;
                t.powf(-exponent).clamp(f64::MIN_POSITIVE, 1.0)
            }
        }
    }
}

/// An ε-greedy exploration schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    /// Exploration probability at period 1.
    pub initial: f64,
    /// Multiplicative decay applied each period.
    pub decay: f64,
    /// Lower bound.
    pub floor: f64,
}

impl EpsilonSchedule {
    /// A gentle default: start at 20 %, decay 2 %/period, floor at 1 %.
    pub fn paper_default() -> Self {
        EpsilonSchedule {
            initial: 0.2,
            decay: 0.98,
            floor: 0.01,
        }
    }

    /// No exploration at all (pure greedy).
    pub fn greedy() -> Self {
        EpsilonSchedule {
            initial: 0.0,
            decay: 1.0,
            floor: 0.0,
        }
    }

    /// Exploration probability at period `t` (1-based).
    pub fn at(&self, t: u64) -> f64 {
        let t = t.max(1);
        (self.initial * self.decay.powi((t - 1) as i32)).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_values() {
        let s = LearningRate::paper_default();
        assert_eq!(s.at(1), 1.0);
        assert!((s.at(2) - 2.0f64.powf(-0.85)).abs() < 1e-12);
        assert!(s.at(100) < s.at(10));
        assert!(s.at(10_000) > 0.0);
    }

    #[test]
    fn zero_period_is_period_one() {
        let s = LearningRate::paper_default();
        assert_eq!(s.at(0), s.at(1));
    }

    #[test]
    fn constant_clamps_to_unit_interval() {
        assert_eq!(LearningRate::Constant(2.0).at(5), 1.0);
        assert!(LearningRate::Constant(0.3).at(99) == 0.3);
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let e = EpsilonSchedule::paper_default();
        assert_eq!(e.at(1), 0.2);
        assert!(e.at(10) < 0.2);
        assert_eq!(e.at(100_000), 0.01);
        assert_eq!(EpsilonSchedule::greedy().at(1), 0.0);
    }
}
