//! Double Q-learning (van Hasselt, 2010).
//!
//! Standard Q-learning's `max` operator overestimates action values under
//! noise — a bias this workspace ran into directly while developing the
//! attacker (an inflated post-state value can make "wait" look better than
//! "attack" forever). Double Q-learning removes the bias by maintaining two
//! tables and using one to *select* the best next action and the other to
//! *evaluate* it. It is provided as an additional baseline for the
//! learning-rule ablation.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::QTable;

/// Double Q-learning over dense `usize` states/actions.
///
/// On each update, a fair coin picks which table is updated:
///
/// ```text
/// Q_a(s,α) ← (1−δ)·Q_a(s,α) + δ·[r + γ·Q_b(s', argmax_{α'} Q_a(s',α'))]
/// ```
///
/// Greedy action selection uses the *sum* of the tables.
///
/// # Examples
///
/// ```
/// use hbm_rl::DoubleQLearning;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut agent = DoubleQLearning::new(2, 2, 0.9);
/// let mut rng = StdRng::seed_from_u64(1);
/// agent.update(0, 1, 1.0, 1, &[0, 1], 0.5, &mut rng);
/// assert!(agent.value(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoubleQLearning {
    a: QTable,
    b: QTable,
    gamma: f64,
}

impl DoubleQLearning {
    /// Creates an agent with two zeroed tables.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `gamma` is outside `[0, 1)`.
    pub fn new(states: usize, actions: usize, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "discount must be in [0, 1)");
        DoubleQLearning {
            a: QTable::new(states, actions),
            b: QTable::new(states, actions),
            gamma,
        }
    }

    /// Discount factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The first table `Q_a` (checkpointing and lane packing).
    pub fn table_a(&self) -> &QTable {
        &self.a
    }

    /// Mutable access to `Q_a`.
    pub fn table_a_mut(&mut self) -> &mut QTable {
        &mut self.a
    }

    /// The second table `Q_b` (checkpointing and lane packing).
    pub fn table_b(&self) -> &QTable {
        &self.b
    }

    /// Mutable access to `Q_b`.
    pub fn table_b_mut(&mut self) -> &mut QTable {
        &mut self.b
    }

    /// Combined (summed) value of `(s, a)` — the selection criterion.
    pub fn value(&self, s: usize, a: usize) -> f64 {
        self.a.get(s, a) + self.b.get(s, a)
    }

    /// Greedy action among `allowed` by combined value.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    pub fn select_greedy(&self, s: usize, allowed: &[usize]) -> usize {
        assert!(!allowed.is_empty(), "no allowed actions");
        // Row slices bounds-check the state once per table instead of once
        // per action (see [`QTable::row`]).
        let row_a = self.a.row(s);
        let row_b = self.b.row(s);
        let mut best = allowed[0];
        let mut best_v = f64::NEG_INFINITY;
        for &a in allowed {
            let v = row_a[a] + row_b[a];
            if v > best_v {
                best = a;
                best_v = v;
            }
        }
        best
    }

    /// ε-greedy selection.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or `epsilon` is outside `[0, 1]`.
    pub fn select<R: RngExt + ?Sized>(
        &self,
        s: usize,
        allowed: &[usize],
        epsilon: f64,
        rng: &mut R,
    ) -> usize {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        assert!(!allowed.is_empty(), "no allowed actions");
        if rng.random::<f64>() < epsilon {
            allowed[rng.random_range(0..allowed.len())]
        } else {
            self.select_greedy(s, allowed)
        }
    }

    /// One double-Q update for the transition `(s, a, r, s')`; the coin
    /// flip consuming `rng` decides which table learns.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, `allowed_next` is empty, or
    /// `delta` is outside `(0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn update<R: RngExt + ?Sized>(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        allowed_next: &[usize],
        delta: f64,
        rng: &mut R,
    ) {
        let flip: bool = rng.random();
        let (learner, evaluator) = if flip {
            (&mut self.a, &self.b)
        } else {
            (&mut self.b, &self.a)
        };
        let chosen = learner.best_action(s_next, allowed_next);
        let target = reward + self.gamma * evaluator.get(s_next, chosen);
        learner.blend(s, a, target, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The classic bias demo: from state 0, action 0 terminates with 0
    /// reward; action 1 moves to state 1 where every one of many actions
    /// pays noisy reward with mean −0.1. Optimal is action 0, but plain
    /// Q-learning's max over noisy estimates makes action 1 look positive
    /// for a long time.
    fn noisy_env(rng: &mut StdRng, s: usize, _a: usize) -> (f64, usize) {
        if s == 1 {
            let noise = rng.random::<f64>() * 2.0 - 1.0; // ±1
            (-0.1 + noise, 2) // terminal
        } else {
            (0.0, 1)
        }
    }

    #[test]
    fn double_q_resists_maximization_bias() {
        let actions_in_b = 8usize;
        let mut env_rng = StdRng::seed_from_u64(3);
        let mut sel_rng = StdRng::seed_from_u64(4);

        let mut double = DoubleQLearning::new(3, actions_in_b, 0.95);
        let mut single = crate::QLearning::new(3, actions_in_b, 0.95);

        let allowed_b: Vec<usize> = (0..actions_in_b).collect();
        for _ in 0..4000 {
            // From state 0, action 1 = "enter the casino".
            let (r0, s1) = noisy_env(&mut env_rng, 0, 1);
            double.update(0, 1, r0, s1, &allowed_b, 0.1, &mut sel_rng);
            single.update(0, 1, r0, s1, &allowed_b, 0.1);
            // One noisy pull inside.
            let a = sel_rng.random_range(0..actions_in_b);
            let (r1, s2) = noisy_env(&mut env_rng, 1, a);
            double.update(1, a, r1, s2, &[0], 0.1, &mut sel_rng);
            single.update(1, a, r1, s2, &[0], 0.1);
        }
        let double_estimate = double.value(0, 1) / 2.0;
        let single_estimate = single.table().get(0, 1);
        // True value ≈ γ·(−0.1) < 0. Double-Q must be markedly less
        // optimistic than single Q.
        assert!(
            double_estimate < single_estimate - 0.05,
            "double {double_estimate} should undercut single {single_estimate}"
        );
    }

    #[test]
    fn learns_a_simple_chain() {
        // state 0 --a1(+1)--> 0 ; a0 pays 0. Same toy as QLearning's test.
        let mut agent = DoubleQLearning::new(2, 2, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = 0;
        for _ in 0..5000 {
            let a = agent.select(s, &[0, 1], 0.2, &mut rng);
            let (r, s2) = match (s, a) {
                (0, 1) => (1.0, 0),
                (0, 0) => (0.0, 1),
                (1, _) => (0.0, 0),
                _ => unreachable!(),
            };
            agent.update(s, a, r, s2, &[0, 1], 0.1, &mut rng);
            s = s2;
        }
        assert_eq!(agent.select_greedy(0, &[0, 1]), 1);
    }

    #[test]
    fn combined_value_is_sum_of_tables() {
        let mut agent = DoubleQLearning::new(1, 1, 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        agent.update(0, 0, 2.0, 0, &[0], 1.0, &mut rng);
        // One table holds ~2 (plus bootstrap), the other 0.
        assert!(agent.value(0, 0) >= 2.0);
    }
}
