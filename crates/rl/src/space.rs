//! State-space discretization.

use serde::{Deserialize, Serialize};

/// A uniform grid over a closed interval, mapping continuous observations to
/// bin indices and back.
///
/// Out-of-range observations clamp to the edge bins — appropriate for
/// physical quantities (battery energy, power) whose tails carry no extra
/// decision-relevant information.
///
/// # Examples
///
/// ```
/// use hbm_rl::UniformGrid;
///
/// // Battery state-of-charge in ten 10 % bins.
/// let grid = UniformGrid::new(0.0, 1.0, 10);
/// assert_eq!(grid.index(0.45), 4);
/// assert_eq!(grid.index(1.5), 9);   // clamped
/// assert!((grid.center(4) - 0.45).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    lo: f64,
    hi: f64,
    bins: usize,
}

impl UniformGrid {
    /// Creates a grid of `bins` equal cells over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or the interval is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "grid needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad interval");
        UniformGrid { lo, hi, bins }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins
    }

    /// Whether the grid has zero bins (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.bins == 0
    }

    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of one bin.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Bin index of an observation, clamping out-of-range values.
    pub fn index(&self, x: f64) -> usize {
        if !x.is_finite() || x <= self.lo {
            return 0;
        }
        let i = ((x - self.lo) / self.width()) as usize;
        i.min(self.bins - 1)
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn center(&self, i: usize) -> f64 {
        assert!(i < self.bins, "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_center_round_trip() {
        let g = UniformGrid::new(0.0, 8.0, 16);
        for i in 0..16 {
            assert_eq!(g.index(g.center(i)), i);
        }
    }

    #[test]
    fn clamping() {
        let g = UniformGrid::new(0.0, 1.0, 4);
        assert_eq!(g.index(-3.0), 0);
        assert_eq!(g.index(0.0), 0);
        assert_eq!(g.index(1.0), 3);
        assert_eq!(g.index(99.0), 3);
        assert_eq!(g.index(f64::NAN), 0);
    }

    #[test]
    fn boundaries_fall_in_upper_bin() {
        let g = UniformGrid::new(0.0, 1.0, 4);
        assert_eq!(g.index(0.25), 1);
        assert_eq!(g.index(0.5), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = UniformGrid::new(0.0, 1.0, 0);
    }
}
