//! Classic tabular Q-learning (the baseline the paper extends).

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::QTable;

/// Standard Q-learning:
/// `Q(s,a) ← (1−δ)·Q(s,a) + δ·[r + γ·max_{a'} Q(s', a')]`.
///
/// Kept as the ablation baseline for the paper's batch variant: both agents
/// see the same experience stream in tests and benches, and batch Q-learning
/// should converge at least as fast on post-state-structured problems.
///
/// # Examples
///
/// ```
/// use hbm_rl::QLearning;
///
/// let mut agent = QLearning::new(2, 2, 0.9);
/// agent.update(0, 1, 1.0, 1, &[0, 1], 0.5);
/// assert!(agent.table().get(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearning {
    table: QTable,
    gamma: f64,
}

impl QLearning {
    /// Creates an agent with a zeroed table.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `gamma` is outside `[0, 1)`.
    pub fn new(states: usize, actions: usize, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "discount must be in [0, 1)");
        QLearning {
            table: QTable::new(states, actions),
            gamma,
        }
    }

    /// The value table.
    pub fn table(&self) -> &QTable {
        &self.table
    }

    /// Mutable access to the value table (offline warm starts).
    pub fn table_mut(&mut self) -> &mut QTable {
        &mut self.table
    }

    /// Discount factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Greedy action among `allowed` in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    pub fn select_greedy(&self, s: usize, allowed: &[usize]) -> usize {
        self.table.best_action(s, allowed)
    }

    /// ε-greedy action selection.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or `epsilon` is outside `[0, 1]`.
    pub fn select<R: RngExt + ?Sized>(
        &self,
        s: usize,
        allowed: &[usize],
        epsilon: f64,
        rng: &mut R,
    ) -> usize {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        assert!(!allowed.is_empty(), "no allowed actions");
        if rng.random::<f64>() < epsilon {
            allowed[rng.random_range(0..allowed.len())]
        } else {
            self.select_greedy(s, allowed)
        }
    }

    /// One Bellman update for the transition `(s, a, r, s')`, where
    /// `allowed_next` are the actions available in `s'`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, `allowed_next` is empty, or
    /// `delta` is outside `(0, 1]`.
    pub fn update(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        allowed_next: &[usize],
        delta: f64,
    ) {
        let started = hbm_telemetry::timing::start();
        let target = reward + self.gamma * self.table.max(s_next, allowed_next);
        self.table.blend(s, a, target, delta);
        hbm_telemetry::timing::record_span("rl.q_update", started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 2-state toy: in state 0, action 1 pays 1 and stays; action 0 pays 0
    /// and moves to state 1, where everything pays 0 and returns to 0.
    fn toy_step(s: usize, a: usize) -> (f64, usize) {
        match (s, a) {
            (0, 1) => (1.0, 0),
            (0, 0) => (0.0, 1),
            (1, _) => (0.0, 0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn learns_the_rewarding_action() {
        let mut agent = QLearning::new(2, 2, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = 0;
        for _ in 0..3000 {
            let a = agent.select(s, &[0, 1], 0.2, &mut rng);
            let (r, s2) = toy_step(s, a);
            agent.update(s, a, r, s2, &[0, 1], 0.1);
            s = s2;
        }
        assert_eq!(agent.select_greedy(0, &[0, 1]), 1);
        // Optimal value of state 0 is 1/(1-γ) = 10.
        assert!((agent.table().get(0, 1) - 10.0).abs() < 1.0);
    }

    #[test]
    fn epsilon_one_explores_uniformly() {
        let agent = QLearning::new(1, 3, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[agent.select(0, &[0, 1, 2], 1.0, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn rejects_bad_gamma() {
        let _ = QLearning::new(1, 1, 1.0);
    }
}
