//! Packed per-lane learner storage for batched (lockstep) simulation.
//!
//! `hbm_core::BatchSim` steps many scenarios in lockstep over
//! structure-of-arrays state. Its learning lanes keep every lane's
//! Q-table in **one contiguous `[lane × state × action]` matrix**
//! ([`QTableLanes`]) so greedy selection is a dense row scan and TD
//! updates touch a single allocation, instead of chasing one boxed
//! learner per lane through virtual dispatch.
//!
//! The contract mirrors the rest of the batch engine: every per-lane
//! operation replicates the corresponding scalar learner's
//! floating-point sequence **op for op**, so a batched lane stays
//! bit-identical to the scalar [`BatchQLearning`] / [`QLearning`] /
//! [`DoubleQLearning`] it was packed from. Lanes are built by copying
//! scalar learners in ([`BatchLanes::from_agents`] and friends) and
//! synced back out (`sync_into`) when the batch hands its simulations
//! back.
//!
//! Schedule evaluation is packed the same way:
//! [`epsilon_sweep`] / [`learning_rate_sweep`] evaluate per-lane
//! schedules over contiguous day/output columns, bit-identical per
//! element to the scalar [`EpsilonSchedule::at`] /
//! [`LearningRate::at`] calls they replace (property-pinned in
//! `tests/properties.rs`). Exploration *draws* are deliberately not
//! packed: whether a lane consumes RNG output is branch-dependent in
//! the scalar policy, so hoisting draws into a column pass would
//! desynchronize the per-lane streams.

use rand::RngExt;

use crate::{BatchQLearning, DoubleQLearning, EpsilonSchedule, LearningRate, QLearning, QTable};

/// Per-lane Q-tables packed into one contiguous `[lane × state × action]`
/// value matrix (plus matching visit counts).
///
/// Lane `l`'s table occupies `values[l·states·actions ..]`; within a lane
/// the layout is row-major exactly like [`QTable`], so
/// [`QTableLanes::row`] hands out the same contiguous slice
/// [`QTable::row`] would.
#[derive(Debug, Clone, PartialEq)]
pub struct QTableLanes {
    lanes: usize,
    states: usize,
    actions: usize,
    values: Vec<f64>,
    visits: Vec<u64>,
}

impl QTableLanes {
    /// Packs the given tables column-wise. Returns `None` when the slice
    /// is empty or the tables disagree on shape (mixed shapes fall back
    /// to scalar dispatch in the batch engine).
    pub fn from_tables(tables: &[&QTable]) -> Option<Self> {
        let first = tables.first()?;
        let (states, actions) = (first.state_count(), first.action_count());
        if tables
            .iter()
            .any(|t| t.state_count() != states || t.action_count() != actions)
        {
            return None;
        }
        let mut values = Vec::with_capacity(tables.len() * states * actions);
        let mut visits = Vec::with_capacity(tables.len() * states * actions);
        for t in tables {
            values.extend_from_slice(t.values());
            visits.extend_from_slice(t.visits());
        }
        Some(QTableLanes {
            lanes: tables.len(),
            states,
            actions,
            values,
            visits,
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// States per lane.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Actions per lane.
    pub fn actions(&self) -> usize {
        self.actions
    }

    #[inline]
    fn base(&self, lane: usize, s: usize) -> usize {
        debug_assert!(lane < self.lanes, "lane index out of range");
        assert!(s < self.states, "state index out of range");
        (lane * self.states + s) * self.actions
    }

    /// Lane `lane`'s action-value row for state `s` — the same contiguous
    /// slice [`QTable::row`] exposes, found by one multiply.
    #[inline]
    pub fn row(&self, lane: usize, s: usize) -> &[f64] {
        let base = self.base(lane, s);
        &self.values[base..base + self.actions]
    }

    /// [`QTable::blend`] on lane `lane`: `Q ← (1−δ)Q + δ·target`, same
    /// assert, same floating-point expression.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `δ` is outside `(0, 1]`.
    #[inline]
    pub fn blend(&mut self, lane: usize, s: usize, a: usize, target: f64, delta: f64) {
        assert!(
            delta > 0.0 && delta <= 1.0,
            "learning rate must be in (0, 1]"
        );
        assert!(a < self.actions, "action index out of range");
        let i = self.base(lane, s) + a;
        self.values[i] = (1.0 - delta) * self.values[i] + delta * target;
        self.visits[i] += 1;
    }

    /// [`QTable::best_action`] on lane `lane` (ties toward the earliest
    /// entry of `allowed`, identical comparison sequence).
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or contains out-of-range actions.
    #[inline]
    pub fn best_action(&self, lane: usize, s: usize, allowed: &[usize]) -> usize {
        assert!(!allowed.is_empty(), "no allowed actions");
        let row = self.row(lane, s);
        let mut best = allowed[0];
        let mut best_v = row[allowed[0]];
        for &a in &allowed[1..] {
            let v = row[a];
            if v > best_v {
                best = a;
                best_v = v;
            }
        }
        best
    }

    /// [`QTable::max`] on lane `lane`.
    #[inline]
    pub fn max(&self, lane: usize, s: usize, allowed: &[usize]) -> f64 {
        self.row(lane, s)[self.best_action(lane, s, allowed)]
    }

    /// Writes lane `lane` back into a scalar table via [`QTable::restore`].
    ///
    /// # Errors
    ///
    /// Returns a message if the table's shape differs from the lanes'.
    pub fn sync_into(&self, lane: usize, table: &mut QTable) -> Result<(), String> {
        let len = self.states * self.actions;
        let base = lane * len;
        table.restore(
            &self.values[base..base + len],
            &self.visits[base..base + len],
        )
    }
}

/// Packed lanes of [`BatchQLearning`] agents (the paper's post-decision
/// variant): one `[lane × state × action]` Q matrix plus one
/// `[lane × post_state]` V matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLanes {
    q: QTableLanes,
    v: Vec<f64>,
    post_states: usize,
    gamma: Vec<f64>,
}

impl BatchLanes {
    /// Packs the given agents. Returns `None` when the slice is empty or
    /// the agents disagree on any table shape.
    pub fn from_agents(agents: &[&BatchQLearning]) -> Option<Self> {
        let tables: Vec<&QTable> = agents.iter().map(|a| a.q_table()).collect();
        let q = QTableLanes::from_tables(&tables)?;
        let post_states = agents[0].post_values().len();
        if agents.iter().any(|a| a.post_values().len() != post_states) {
            return None;
        }
        let mut v = Vec::with_capacity(agents.len() * post_states);
        for a in agents {
            v.extend_from_slice(a.post_values());
        }
        Some(BatchLanes {
            q,
            v,
            post_states,
            gamma: agents.iter().map(|a| a.gamma()).collect(),
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.gamma.len()
    }

    /// [`BatchQLearning::select_greedy`] on lane `lane`: a dense row scan
    /// of `Q(s, ·) + γ·V(f(s, ·))` with the scalar agent's exact
    /// comparison sequence (`best_v` starts at −∞ and the full `allowed`
    /// list is scanned).
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or `post` returns an out-of-range
    /// index.
    #[inline]
    pub fn select_greedy<F>(&self, lane: usize, s: usize, allowed: &[usize], post: F) -> usize
    where
        F: Fn(usize, usize) -> usize,
    {
        assert!(!allowed.is_empty(), "no allowed actions");
        let row = self.q.row(lane, s);
        let v = &self.v[lane * self.post_states..(lane + 1) * self.post_states];
        let gamma = self.gamma[lane];
        let mut best = allowed[0];
        let mut best_v = f64::NEG_INFINITY;
        for &a in allowed {
            let value = row[a] + gamma * v[post(s, a)];
            if value > best_v {
                best = a;
                best_v = value;
            }
        }
        best
    }

    /// [`BatchQLearning::state_value`] on lane `lane` (Eqn. 6), same
    /// map/fold reduction order as the scalar agent.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or `post` returns an out-of-range
    /// index.
    #[inline]
    pub fn state_value<F>(&self, lane: usize, s: usize, allowed: &[usize], post: F) -> f64
    where
        F: Fn(usize, usize) -> usize,
    {
        assert!(!allowed.is_empty(), "no allowed actions");
        let row = self.q.row(lane, s);
        let v = &self.v[lane * self.post_states..(lane + 1) * self.post_states];
        let gamma = self.gamma[lane];
        allowed
            .iter()
            .map(|&a| row[a] + gamma * v[post(s, a)])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// [`BatchQLearning::update`] on lane `lane` (Eqns. 5 and 7), same
    /// blend/bootstrap order and the same `rl.batch_update` timing span
    /// as the scalar agent.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range, `allowed_next` is empty, or
    /// `delta` is outside `(0, 1]`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn update<F>(
        &mut self,
        lane: usize,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        allowed_next: &[usize],
        post: F,
        delta: f64,
    ) where
        F: Fn(usize, usize) -> usize,
    {
        assert!(
            delta > 0.0 && delta <= 1.0,
            "learning rate must be in (0, 1]"
        );
        let started = hbm_telemetry::timing::start();
        self.q.blend(lane, s, a, reward, delta);
        let c_next = self.state_value(lane, s_next, allowed_next, &post);
        let p = lane * self.post_states + post(s, a);
        self.v[p] = (1.0 - delta) * self.v[p] + delta * c_next;
        hbm_telemetry::timing::record_span("rl.batch_update", started);
    }

    /// Writes lane `lane` back into a scalar agent (tables and
    /// post-state values).
    ///
    /// # Errors
    ///
    /// Returns a message if the agent's shape differs from the lanes'.
    pub fn sync_into(&self, lane: usize, agent: &mut BatchQLearning) -> Result<(), String> {
        self.q.sync_into(lane, agent.q_table_mut())?;
        let base = lane * self.post_states;
        let out = agent.post_values_mut();
        if out.len() != self.post_states {
            return Err(format!(
                "post-state shape mismatch: expected {}, got {}",
                self.post_states,
                out.len()
            ));
        }
        out.copy_from_slice(&self.v[base..base + self.post_states]);
        Ok(())
    }
}

/// Packed lanes of classic [`QLearning`] agents.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardLanes {
    q: QTableLanes,
    gamma: Vec<f64>,
}

impl StandardLanes {
    /// Packs the given agents. Returns `None` when the slice is empty or
    /// the tables disagree on shape.
    pub fn from_agents(agents: &[&QLearning]) -> Option<Self> {
        let tables: Vec<&QTable> = agents.iter().map(|a| a.table()).collect();
        Some(StandardLanes {
            q: QTableLanes::from_tables(&tables)?,
            gamma: agents.iter().map(|a| a.gamma()).collect(),
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.gamma.len()
    }

    /// [`QLearning::select_greedy`] on lane `lane`.
    #[inline]
    pub fn select_greedy(&self, lane: usize, s: usize, allowed: &[usize]) -> usize {
        self.q.best_action(lane, s, allowed)
    }

    /// [`QLearning::update`] on lane `lane`, same Bellman target and the
    /// same `rl.q_update` timing span as the scalar agent.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, `allowed_next` is empty, or
    /// `delta` is outside `(0, 1]`.
    #[inline]
    pub fn update(
        &mut self,
        lane: usize,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        allowed_next: &[usize],
        delta: f64,
    ) {
        let started = hbm_telemetry::timing::start();
        let target = reward + self.gamma[lane] * self.q.max(lane, s_next, allowed_next);
        self.q.blend(lane, s, a, target, delta);
        hbm_telemetry::timing::record_span("rl.q_update", started);
    }

    /// Writes lane `lane` back into a scalar agent.
    ///
    /// # Errors
    ///
    /// Returns a message if the agent's table shape differs from the
    /// lanes'.
    pub fn sync_into(&self, lane: usize, agent: &mut QLearning) -> Result<(), String> {
        self.q.sync_into(lane, agent.table_mut())
    }
}

/// Packed lanes of [`DoubleQLearning`] agents: two `[lane × state ×
/// action]` matrices sharing the coin-flip update rule.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleLanes {
    a: QTableLanes,
    b: QTableLanes,
    gamma: Vec<f64>,
}

impl DoubleLanes {
    /// Packs the given agents. Returns `None` when the slice is empty or
    /// the tables disagree on shape.
    pub fn from_agents(agents: &[&DoubleQLearning]) -> Option<Self> {
        let tables_a: Vec<&QTable> = agents.iter().map(|x| x.table_a()).collect();
        let tables_b: Vec<&QTable> = agents.iter().map(|x| x.table_b()).collect();
        Some(DoubleLanes {
            a: QTableLanes::from_tables(&tables_a)?,
            b: QTableLanes::from_tables(&tables_b)?,
            gamma: agents.iter().map(|x| x.gamma()).collect(),
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.gamma.len()
    }

    /// [`DoubleQLearning::select_greedy`] on lane `lane` (argmax of the
    /// summed tables, same comparison sequence).
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    #[inline]
    pub fn select_greedy(&self, lane: usize, s: usize, allowed: &[usize]) -> usize {
        assert!(!allowed.is_empty(), "no allowed actions");
        let row_a = self.a.row(lane, s);
        let row_b = self.b.row(lane, s);
        let mut best = allowed[0];
        let mut best_v = f64::NEG_INFINITY;
        for &x in allowed {
            let v = row_a[x] + row_b[x];
            if v > best_v {
                best = x;
                best_v = v;
            }
        }
        best
    }

    /// [`DoubleQLearning::update`] on lane `lane`; the coin flip consumes
    /// `rng` exactly like the scalar agent (one `bool` draw per update).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, `allowed_next` is empty, or
    /// `delta` is outside `(0, 1]`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn update<R: RngExt + ?Sized>(
        &mut self,
        lane: usize,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        allowed_next: &[usize],
        delta: f64,
        rng: &mut R,
    ) {
        let flip: bool = rng.random();
        let (learner, evaluator) = if flip {
            (&mut self.a, &self.b)
        } else {
            (&mut self.b, &self.a)
        };
        let chosen = learner.best_action(lane, s_next, allowed_next);
        let target = reward + self.gamma[lane] * evaluator.row(lane, s_next)[chosen];
        learner.blend(lane, s, a, target, delta);
    }

    /// Writes lane `lane` back into a scalar agent (both tables).
    ///
    /// # Errors
    ///
    /// Returns a message if either table's shape differs from the lanes'.
    pub fn sync_into(&self, lane: usize, agent: &mut DoubleQLearning) -> Result<(), String> {
        self.a.sync_into(lane, agent.table_a_mut())?;
        self.b.sync_into(lane, agent.table_b_mut())
    }
}

/// Packed column sweep of per-lane ε schedules: `out[i] =
/// schedules[i].at(days[i])`, bit-identical per element to the scalar
/// [`EpsilonSchedule::at`] calls it replaces.
///
/// # Panics
///
/// Panics if the slices disagree on length.
pub fn epsilon_sweep(schedules: &[EpsilonSchedule], days: &[u64], out: &mut [f64]) {
    assert!(
        schedules.len() == days.len() && days.len() == out.len(),
        "sweep columns must agree on length"
    );
    for ((o, sched), &day) in out.iter_mut().zip(schedules).zip(days) {
        *o = sched.at(day);
    }
}

/// Packed column sweep of per-lane learning-rate schedules: `out[i] =
/// schedules[i].at(days[i])`, bit-identical per element to the scalar
/// [`LearningRate::at`] calls it replaces.
///
/// # Panics
///
/// Panics if the slices disagree on length.
pub fn learning_rate_sweep(schedules: &[LearningRate], days: &[u64], out: &mut [f64]) {
    assert!(
        schedules.len() == days.len() && days.len() == out.len(),
        "sweep columns must agree on length"
    );
    for ((o, sched), &day) in out.iter_mut().zip(schedules).zip(days) {
        *o = sched.at(day);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_post(s: usize, a: usize) -> usize {
        (s + a) % 4
    }

    /// Drives a packed lane and its scalar source through the same
    /// experience stream and demands bit-identical tables throughout.
    #[test]
    fn batch_lanes_track_scalar_agents_bitwise() {
        let mut scalars: Vec<BatchQLearning> = (0..3)
            .map(|i| {
                let mut a = BatchQLearning::new(4, 3, 4, 0.9);
                a.q_table_mut().set(1, 2, 0.25 * i as f64);
                a.post_values_mut()[2] = -0.5 * i as f64;
                a
            })
            .collect();
        let refs: Vec<&BatchQLearning> = scalars.iter().collect();
        let mut lanes = BatchLanes::from_agents(&refs).expect("uniform shapes pack");

        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..200 {
            let s = step % 4;
            let allowed = [0usize, 1, 2];
            let reward = rng.random::<f64>() - 0.4;
            let s_next = (step + 1) % 4;
            let delta = (1.0 / (1.0 + step as f64 / 20.0)).max(0.05);
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(
                    lanes.select_greedy(lane, s, &allowed, toy_post),
                    scalar.select_greedy(s, &allowed, toy_post)
                );
                assert_eq!(
                    lanes.state_value(lane, s, &allowed, toy_post).to_bits(),
                    scalar.state_value(s, &allowed, toy_post).to_bits()
                );
                let a = scalar.select_greedy(s, &allowed, toy_post);
                scalar.update(s, a, reward, s_next, &allowed, toy_post, delta);
                lanes.update(lane, s, a, reward, s_next, &allowed, toy_post, delta);
            }
        }

        for (lane, scalar) in scalars.iter_mut().enumerate() {
            let mut copy = BatchQLearning::new(4, 3, 4, 0.9);
            lanes.sync_into(lane, &mut copy).expect("shapes match");
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(copy.q_table().values()), bits(scalar.q_table().values()));
            assert_eq!(copy.q_table().visits(), scalar.q_table().visits());
            assert_eq!(bits(copy.post_values()), bits(scalar.post_values()));
        }
    }

    #[test]
    fn standard_lanes_track_scalar_agents_bitwise() {
        let mut scalars: Vec<QLearning> = (0..2).map(|_| QLearning::new(3, 2, 0.95)).collect();
        let refs: Vec<&QLearning> = scalars.iter().collect();
        let mut lanes = StandardLanes::from_agents(&refs).expect("uniform shapes pack");
        let mut rng = StdRng::seed_from_u64(11);
        for step in 0..200 {
            let s = step % 3;
            let s_next = (step + 1) % 3;
            let reward = rng.random::<f64>() * 2.0 - 1.0;
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(
                    lanes.select_greedy(lane, s, &[0, 1]),
                    scalar.select_greedy(s, &[0, 1])
                );
                let a = scalar.select_greedy(s, &[0, 1]);
                scalar.update(s, a, reward, s_next, &[0, 1], 0.1);
                lanes.update(lane, s, a, reward, s_next, &[0, 1], 0.1);
            }
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            let mut copy = QLearning::new(3, 2, 0.95);
            lanes.sync_into(lane, &mut copy).expect("shapes match");
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(copy.table().values()), bits(scalar.table().values()));
            assert_eq!(copy.table().visits(), scalar.table().visits());
        }
    }

    /// The double-Q coin flip must consume the RNG exactly like the
    /// scalar agent: identical seeds on both sides, identical tables out.
    #[test]
    fn double_lanes_track_scalar_agents_bitwise() {
        let mut scalars: Vec<DoubleQLearning> =
            (0..2).map(|_| DoubleQLearning::new(3, 2, 0.9)).collect();
        let refs: Vec<&DoubleQLearning> = scalars.iter().collect();
        let mut lanes = DoubleLanes::from_agents(&refs).expect("uniform shapes pack");
        let mut scalar_rngs: Vec<StdRng> = (0..2).map(|i| StdRng::seed_from_u64(i)).collect();
        let mut lane_rngs: Vec<StdRng> = (0..2).map(|i| StdRng::seed_from_u64(i)).collect();
        let mut env = StdRng::seed_from_u64(42);
        for step in 0..200 {
            let s = step % 3;
            let s_next = (step + 1) % 3;
            let reward = env.random::<f64>() - 0.5;
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(
                    lanes.select_greedy(lane, s, &[0, 1]),
                    scalar.select_greedy(s, &[0, 1])
                );
                let a = scalar.select_greedy(s, &[0, 1]);
                scalar.update(s, a, reward, s_next, &[0, 1], 0.2, &mut scalar_rngs[lane]);
                lanes.update(lane, s, a, reward, s_next, &[0, 1], 0.2, &mut lane_rngs[lane]);
            }
        }
        for (lane, scalar) in scalars.iter().enumerate() {
            let mut copy = DoubleQLearning::new(3, 2, 0.9);
            lanes.sync_into(lane, &mut copy).expect("shapes match");
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(copy.table_a().values()), bits(scalar.table_a().values()));
            assert_eq!(bits(copy.table_b().values()), bits(scalar.table_b().values()));
        }
    }

    #[test]
    fn mismatched_shapes_refuse_to_pack() {
        let a = BatchQLearning::new(4, 3, 4, 0.9);
        let b = BatchQLearning::new(4, 3, 5, 0.9);
        assert!(BatchLanes::from_agents(&[&a, &b]).is_none());
        let c = QLearning::new(4, 3, 0.9);
        let d = QLearning::new(5, 3, 0.9);
        assert!(StandardLanes::from_agents(&[&c, &d]).is_none());
        assert!(QTableLanes::from_tables(&[]).is_none());
    }

    #[test]
    fn schedule_sweeps_match_scalar_calls() {
        let eps = [
            EpsilonSchedule::paper_default(),
            EpsilonSchedule {
                initial: 0.05,
                decay: 0.90,
                floor: 0.002,
            },
            EpsilonSchedule::greedy(),
        ];
        let lrs = [
            LearningRate::paper_default(),
            LearningRate::Constant(0.3),
            LearningRate::Polynomial { exponent: 0.5 },
        ];
        let days = [0u64, 1, 61, 100_000];
        for &day in &days {
            let day_col = [day; 3];
            let mut out = [0.0; 3];
            epsilon_sweep(&eps, &day_col, &mut out);
            for (o, e) in out.iter().zip(&eps) {
                assert_eq!(o.to_bits(), e.at(day).to_bits());
            }
            learning_rate_sweep(&lrs, &day_col, &mut out);
            for (o, l) in out.iter().zip(&lrs) {
                assert_eq!(o.to_bits(), l.at(day).to_bits());
            }
        }
    }
}
