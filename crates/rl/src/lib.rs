//! Tabular reinforcement-learning toolkit.
//!
//! The paper's Foresighted attacker learns *when to attack* with **batch
//! Q-learning** (Section IV-B, Eqns. 3–7), a variant of Q-learning built
//! around a *post-decision state*: after the agent acts, the controllable
//! part of the state (battery energy) transitions deterministically to the
//! post state `s̃ = f(s, a)`, and only then does the exogenous part (benign
//! tenants' load) evolve stochastically. Exploiting that structure lets one
//! learned value function `V(s̃)` generalize across all actions that lead to
//! the same post state, which is why the paper's policy converges within
//! weeks of simulated time instead of months.
//!
//! Because no suitable RL crate exists in the allowed dependency set (and
//! the paper's variant is non-standard anyway), this crate implements the
//! whole stack: state-space discretizers, dense Q-tables, ε-greedy
//! exploration, learning-rate schedules (including the paper's
//! `δ(t) = 1/t^0.85`), classic Q-learning as a baseline, and the paper's
//! batch Q-learning.
//!
//! States, actions, and post states are dense `usize` indices; domain crates
//! do their own encoding (see `hbm-core`'s attacker).
//!
//! # Examples
//!
//! ```
//! use hbm_rl::{BatchQLearning, LearningRate};
//!
//! // 4 states, 2 actions, 4 post states; deterministic post map f(s,a).
//! let mut agent = BatchQLearning::new(4, 2, 4, 0.9);
//! let post = |s: usize, a: usize| (s + a) % 4;
//! let s = 0;
//! let a = agent.select_greedy(s, &[0, 1], post);
//! let reward = 1.0;
//! let s_next = post(s, a); // toy environment
//! agent.update(s, a, reward, s_next, &[0, 1], post, 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod double_q;
mod lanes;
mod qtable;
mod schedule;
mod space;
mod standard;

pub use batch::BatchQLearning;
pub use double_q::DoubleQLearning;
pub use lanes::{
    epsilon_sweep, learning_rate_sweep, BatchLanes, DoubleLanes, QTableLanes, StandardLanes,
};
pub use qtable::QTable;
pub use schedule::{EpsilonSchedule, LearningRate};
pub use space::UniformGrid;
pub use standard::QLearning;
