//! Dense state–action value table.

use serde::{Deserialize, Serialize};

/// A dense `states × actions` table of action values with visit counts.
///
/// # Examples
///
/// ```
/// use hbm_rl::QTable;
///
/// let mut q = QTable::new(3, 2);
/// q.set(1, 0, 2.5);
/// q.set(1, 1, 1.0);
/// assert_eq!(q.best_action(1, &[0, 1]), 0);
/// assert_eq!(q.max(1, &[0, 1]), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    states: usize,
    actions: usize,
    values: Vec<f64>,
    visits: Vec<u64>,
}

impl QTable {
    /// Creates a zero-initialized table.
    ///
    /// # Panics
    ///
    /// Panics if `states` or `actions` is zero.
    pub fn new(states: usize, actions: usize) -> Self {
        assert!(states > 0 && actions > 0, "table must be non-empty");
        QTable {
            states,
            actions,
            values: vec![0.0; states * actions],
            visits: vec![0; states * actions],
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Number of actions.
    pub fn action_count(&self) -> usize {
        self.actions
    }

    fn idx(&self, s: usize, a: usize) -> usize {
        assert!(s < self.states, "state index out of range");
        assert!(a < self.actions, "action index out of range");
        s * self.actions + a
    }

    /// Value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, s: usize, a: usize) -> f64 {
        self.values[self.idx(s, a)]
    }

    /// Sets the value of `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn set(&mut self, s: usize, a: usize, v: f64) {
        let i = self.idx(s, a);
        self.values[i] = v;
    }

    /// Exponential-smoothing update `Q ← (1−δ)Q + δ·target`, incrementing
    /// the visit count.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `δ` is outside `(0, 1]`.
    pub fn blend(&mut self, s: usize, a: usize, target: f64, delta: f64) {
        assert!(
            delta > 0.0 && delta <= 1.0,
            "learning rate must be in (0, 1]"
        );
        let i = self.idx(s, a);
        self.values[i] = (1.0 - delta) * self.values[i] + delta * target;
        self.visits[i] += 1;
    }

    /// Number of updates applied to `(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn visit_count(&self, s: usize, a: usize) -> u64 {
        self.visits[self.idx(s, a)]
    }

    /// All action values of state `s` as one contiguous slice.
    ///
    /// Hot selection loops should index this row instead of calling
    /// [`QTable::get`] per action: `get` bounds-checks the state on *every*
    /// call (an assert plus the slice's own check), while a row does it once
    /// and leaves only the in-row slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn row(&self, s: usize) -> &[f64] {
        assert!(s < self.states, "state index out of range");
        &self.values[s * self.actions..(s + 1) * self.actions]
    }

    /// Greedy action among `allowed`, ties broken toward the earliest entry.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or contains out-of-range actions.
    pub fn best_action(&self, s: usize, allowed: &[usize]) -> usize {
        assert!(!allowed.is_empty(), "no allowed actions");
        let row = self.row(s);
        let mut best = allowed[0];
        let mut best_v = row[allowed[0]];
        for &a in &allowed[1..] {
            let v = row[a];
            if v > best_v {
                best = a;
                best_v = v;
            }
        }
        best
    }

    /// Maximum value over `allowed` actions in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or contains out-of-range actions.
    pub fn max(&self, s: usize, allowed: &[usize]) -> f64 {
        self.row(s)[self.best_action(s, allowed)]
    }

    /// Fills every entry with `v` (used for optimistic initialization).
    pub fn fill(&mut self, v: f64) {
        self.values.fill(v);
    }

    /// The full value table in row-major (`state × action`) order, for
    /// checkpoint serialization.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The full visit-count table in row-major order, for checkpoint
    /// serialization.
    pub fn visits(&self) -> &[u64] {
        &self.visits
    }

    /// Overwrites the values and visit counts from checkpointed row-major
    /// slices (the inverse of [`QTable::values`] / [`QTable::visits`]).
    ///
    /// # Errors
    ///
    /// Returns a message if either slice length differs from
    /// `states × actions`.
    pub fn restore(&mut self, values: &[f64], visits: &[u64]) -> Result<(), String> {
        let len = self.states * self.actions;
        if values.len() != len || visits.len() != len {
            return Err(format!(
                "table shape mismatch: expected {len} entries, got {} values / {} visits",
                values.len(),
                visits.len()
            ));
        }
        self.values.copy_from_slice(values);
        self.visits.copy_from_slice(visits);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blend_moves_toward_target() {
        let mut q = QTable::new(2, 2);
        q.blend(0, 1, 10.0, 0.5);
        assert_eq!(q.get(0, 1), 5.0);
        q.blend(0, 1, 10.0, 0.5);
        assert_eq!(q.get(0, 1), 7.5);
        assert_eq!(q.visit_count(0, 1), 2);
    }

    #[test]
    fn best_action_respects_allowed_set() {
        let mut q = QTable::new(1, 3);
        q.set(0, 0, 5.0);
        q.set(0, 1, 1.0);
        q.set(0, 2, 3.0);
        assert_eq!(q.best_action(0, &[0, 1, 2]), 0);
        assert_eq!(q.best_action(0, &[1, 2]), 2);
    }

    #[test]
    fn ties_break_to_first_listed() {
        let q = QTable::new(1, 3);
        assert_eq!(q.best_action(0, &[2, 0, 1]), 2);
    }

    #[test]
    fn fill_sets_everything() {
        let mut q = QTable::new(2, 2);
        q.fill(1.5);
        assert_eq!(q.max(1, &[0, 1]), 1.5);
    }

    #[test]
    fn row_exposes_one_state_contiguously() {
        let mut q = QTable::new(2, 3);
        q.set(1, 0, 4.0);
        q.set(1, 2, 9.0);
        assert_eq!(q.row(1), &[4.0, 0.0, 9.0]);
        assert_eq!(q.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_rejected() {
        let q = QTable::new(2, 2);
        let _ = q.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "state index out of range")]
    fn out_of_range_row_rejected() {
        let q = QTable::new(2, 2);
        let _ = q.row(2);
    }

    #[test]
    #[should_panic(expected = "no allowed actions")]
    fn empty_allowed_rejected() {
        let q = QTable::new(1, 1);
        let _ = q.best_action(0, &[]);
    }
}
