//! Property-based tests of the power-infrastructure substrate.

use hbm_power::{EmergencyProtocol, Pdu, ProtocolState, ServerSpec, Tenant, TenantId};
use hbm_units::{Duration, Power, Temperature};
use proptest::prelude::*;

fn temp_sequence() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(26.0..46.0f64, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn server_power_is_between_idle_and_peak(u in 0.0..=1.0f64) {
        let s = ServerSpec::paper_default();
        let p = s.power_at(u);
        prop_assert!(p >= s.idle && p <= s.peak);
        // Inverse is consistent.
        prop_assert!((s.utilization_for(p) - u).abs() < 1e-9);
    }

    #[test]
    fn metering_clamps_and_sums(
        req in prop::collection::vec(0.0..4.0f64, 4),
    ) {
        let mut tenants = vec![Tenant::uniform(
            TenantId(0),
            "attacker",
            Power::from_kilowatts(0.8),
            ServerSpec::attacker_repeated(),
            4,
        )];
        for i in 1..=3 {
            tenants.push(Tenant::uniform(
                TenantId(i),
                format!("benign-{i}"),
                Power::from_kilowatts(2.4),
                ServerSpec::paper_default(),
                12,
            ));
        }
        let pdu = Pdu::new(Power::from_kilowatts(8.0), tenants);
        let requests: Vec<Power> = req.iter().map(|&k| Power::from_kilowatts(k)).collect();
        let reading = pdu.meter(&requests);
        // Each tenant clamped to its subscription, total ≤ capacity.
        for (t, (id, p)) in pdu.tenants().iter().zip(reading.iter()) {
            prop_assert_eq!(t.id, *id);
            prop_assert!(*p <= t.subscribed + Power::from_watts(1e-9));
        }
        prop_assert!(reading.total() <= pdu.capacity() + Power::from_watts(1e-6));
        let sum: Power = reading.iter().map(|(_, p)| *p).sum();
        prop_assert!((sum - reading.total()).abs() < Power::from_watts(1e-6));
    }

    #[test]
    fn protocol_never_caps_without_prior_dwell(temps in temp_sequence()) {
        let mut p = EmergencyProtocol::paper_default();
        let minute = Duration::from_minutes(1.0);
        let mut over_count = 0u32;
        for &t in &temps {
            let temp = Temperature::from_celsius(t);
            let before = p.state();
            let after = p.step(temp, minute);
            // Newly-declared emergencies require 2 consecutive over-threshold
            // minutes (this one included).
            if after.is_capping() && !before.is_capping() {
                prop_assert!(
                    over_count + 1 >= 2,
                    "emergency declared without dwell at {t} °C"
                );
            }
            if temp > p.threshold {
                over_count += 1;
            } else {
                over_count = 0;
            }
            if after.is_outage() {
                break;
            }
        }
    }

    #[test]
    fn protocol_outage_is_absorbing(temps in temp_sequence()) {
        let mut p = EmergencyProtocol::paper_default();
        let minute = Duration::from_minutes(1.0);
        let mut seen_outage = false;
        for &t in &temps {
            let state = p.step(Temperature::from_celsius(t), minute);
            if seen_outage {
                prop_assert!(state.is_outage(), "outage must persist until reset");
            }
            seen_outage |= state.is_outage();
        }
    }

    #[test]
    fn protocol_capping_episodes_are_bounded(temps in temp_sequence()) {
        let mut p = EmergencyProtocol::paper_default();
        let minute = Duration::from_minutes(1.0);
        let mut consecutive_capping = 0u32;
        for &t in &temps {
            let state = p.step(Temperature::from_celsius(t), minute);
            if state.is_capping() {
                consecutive_capping += 1;
                // One episode caps for 5 minutes; persistent heat can chain
                // episodes only through a fresh 2-minute dwell, so a single
                // uninterrupted capping stretch is at most 5 slots.
                prop_assert!(consecutive_capping <= 5);
            } else {
                consecutive_capping = 0;
            }
            if state.is_outage() {
                break;
            }
        }
    }

    #[test]
    fn cool_input_always_returns_to_normal(initial in 33.0..40.0f64) {
        let mut p = EmergencyProtocol::paper_default();
        let minute = Duration::from_minutes(1.0);
        // Heat up into an emergency.
        for _ in 0..3 {
            p.step(Temperature::from_celsius(initial), minute);
        }
        // Cool for 10 minutes: must end Normal (never stuck capping).
        let mut last = ProtocolState::Normal;
        for _ in 0..10 {
            last = p.step(Temperature::from_celsius(27.0), minute);
        }
        prop_assert_eq!(last, ProtocolState::Normal);
    }
}
