//! Tenants and their subscriptions.

use serde::{Deserialize, Serialize};

use hbm_units::Power;

use crate::ServerSpec;

/// Opaque identifier of a tenant within one colocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub usize);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// One tenant of the colocation: a subscribed power capacity and the servers
/// it houses. The operator's contract is entirely in terms of the metered
/// PDU draw staying below `subscribed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// Identifier within the colocation.
    pub id: TenantId,
    /// Human-readable name.
    pub name: String,
    /// Subscribed power capacity (`c_a` for the attacker).
    pub subscribed: Power,
    /// Per-server power models.
    pub servers: Vec<ServerSpec>,
}

impl Tenant {
    /// Creates a tenant with `count` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, `subscribed` is non-positive, or the spec
    /// is invalid.
    pub fn uniform(
        id: TenantId,
        name: impl Into<String>,
        subscribed: Power,
        spec: ServerSpec,
        count: usize,
    ) -> Self {
        assert!(count > 0, "tenant must house at least one server");
        assert!(
            subscribed > Power::ZERO && subscribed.is_finite(),
            "subscription must be positive"
        );
        spec.validate().expect("invalid server spec");
        Tenant {
            id,
            name: name.into(),
            subscribed,
            servers: vec![spec; count],
        }
    }

    /// Number of servers housed.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Sum of the servers' peak powers.
    pub fn total_peak(&self) -> Power {
        self.servers.iter().map(|s| s.peak).sum()
    }

    /// Sum of the servers' idle powers.
    pub fn total_idle(&self) -> Power {
        self.servers.iter().map(|s| s.idle).sum()
    }

    /// Whether the tenant's metered draw would stay within its subscription
    /// if every server ran flat out. For benign tenants this is how the
    /// operator sizes subscriptions; for the attacker it is *violated* in
    /// actual power but honored in metered power thanks to the battery.
    pub fn peak_fits_subscription(&self) -> bool {
        self.total_peak() <= self.subscribed
    }

    /// Splits an aggregate tenant power draw evenly across its servers.
    pub fn per_server_share(&self, total: Power) -> Power {
        total / self.server_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_construction() {
        let t = Tenant::uniform(
            TenantId(1),
            "benign-1",
            Power::from_kilowatts(2.4),
            ServerSpec::paper_default(),
            12,
        );
        assert_eq!(t.server_count(), 12);
        assert_eq!(t.total_peak(), Power::from_kilowatts(2.4));
        assert!(t.peak_fits_subscription());
    }

    #[test]
    fn attacker_peak_exceeds_subscription() {
        let t = Tenant::uniform(
            TenantId(0),
            "attacker",
            Power::from_kilowatts(0.8),
            ServerSpec::attacker_repeated(),
            4,
        );
        assert!(!t.peak_fits_subscription());
        assert_eq!(t.total_peak(), Power::from_kilowatts(1.8));
    }

    #[test]
    fn share_is_even() {
        let t = Tenant::uniform(
            TenantId(2),
            "t",
            Power::from_kilowatts(2.4),
            ServerSpec::paper_default(),
            12,
        );
        assert_eq!(
            t.per_server_share(Power::from_kilowatts(1.2)),
            Power::from_watts(100.0)
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Tenant::uniform(
            TenantId(0),
            "x",
            Power::from_kilowatts(1.0),
            ServerSpec::paper_default(),
            0,
        );
    }
}
