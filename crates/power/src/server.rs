//! Server power model.

use serde::{Deserialize, Serialize};

use hbm_units::Power;

/// Power model of one physical server: linear in utilization between idle
/// and peak — the standard model validated at warehouse scale by Fan et
/// al., and the family the paper's power-trace methodology builds on (its
/// refs 58–60).
///
/// # Examples
///
/// ```
/// use hbm_power::ServerSpec;
/// use hbm_units::Power;
///
/// let s = ServerSpec::paper_default();
/// assert_eq!(s.power_at(1.0), Power::from_watts(200.0));
/// assert_eq!(s.power_at(0.0), Power::from_watts(60.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Power drawn at zero utilization.
    pub idle: Power,
    /// Power drawn at full utilization.
    pub peak: Power,
}

impl ServerSpec {
    /// The paper's benign server: 200 W peak (Table I), 30 % idle floor.
    pub fn paper_default() -> Self {
        ServerSpec {
            idle: Power::from_watts(60.0),
            peak: Power::from_watts(200.0),
        }
    }

    /// The attacker's repeated-attack server: 450 W peak via one extra GPU
    /// (200 W subscribed + 250 W battery-fed).
    pub fn attacker_repeated() -> Self {
        ServerSpec {
            idle: Power::from_watts(70.0),
            peak: Power::from_watts(450.0),
        }
    }

    /// The attacker's one-shot server: 950 W peak via multiple power-hungry
    /// GPUs (e.g. 3 × RTX-3080-class cards).
    pub fn attacker_one_shot() -> Self {
        ServerSpec {
            idle: Power::from_watts(90.0),
            peak: Power::from_watts(950.0),
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.idle.is_finite() || self.idle < Power::ZERO {
            return Err("idle power must be non-negative".into());
        }
        if !self.peak.is_finite() || self.peak <= self.idle {
            return Err("peak power must exceed idle power".into());
        }
        Ok(())
    }

    /// Power drawn at a CPU utilization in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn power_at(&self, utilization: f64) -> Power {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1]"
        );
        self.idle + (self.peak - self.idle) * utilization
    }

    /// Inverse of [`ServerSpec::power_at`], clamped to `[0, 1]`.
    pub fn utilization_for(&self, power: Power) -> f64 {
        ((power - self.idle) / (self.peak - self.idle)).clamp(0.0, 1.0)
    }

    /// The fraction of peak power a given absolute cap corresponds to
    /// (used by the latency model, whose power axis is normalized to peak).
    pub fn cap_fraction(&self, cap: Power) -> f64 {
        (cap / self.peak).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolation() {
        let s = ServerSpec::paper_default();
        assert_eq!(s.power_at(0.5), Power::from_watts(130.0));
        assert!((s.utilization_for(Power::from_watts(130.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let s = ServerSpec::attacker_repeated();
        for u in [0.0, 0.25, 0.7, 1.0] {
            let p = s.power_at(u);
            assert!((s.utilization_for(p) - u).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_clamps_out_of_range_power() {
        let s = ServerSpec::paper_default();
        assert_eq!(s.utilization_for(Power::from_watts(10.0)), 0.0);
        assert_eq!(s.utilization_for(Power::from_watts(500.0)), 1.0);
    }

    #[test]
    fn cap_fraction_for_emergency_cap() {
        // The 120 W emergency cap is 60 % of the 200 W server rating.
        let s = ServerSpec::paper_default();
        assert!((s.cap_fraction(Power::from_watts(120.0)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn attacker_specs_exceed_subscription() {
        assert!(ServerSpec::attacker_repeated().peak > Power::from_watts(200.0));
        assert!(ServerSpec::attacker_one_shot().peak > Power::from_watts(900.0));
    }

    #[test]
    fn validation() {
        assert!(ServerSpec::paper_default().validate().is_ok());
        let bad = ServerSpec {
            idle: Power::from_watts(300.0),
            peak: Power::from_watts(200.0),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn power_at_rejects_out_of_range() {
        let _ = ServerSpec::paper_default().power_at(1.5);
    }
}
