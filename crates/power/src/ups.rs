//! Facility UPS model: the head of the paper's tree-type power hierarchy.

use serde::{Deserialize, Serialize};

use hbm_units::Power;

/// The colocation's double-conversion UPS.
///
/// Utility power enters through the UPS, which protects the downstream PDU
/// (Fig. 2 of the paper). Two facts about it matter for capacity planning
/// and for the defense side of this reproduction:
///
/// * the *critical power* (what the servers may draw) is the UPS rating,
///   and the paper's capacity `C` is defined at this level — UPS losses
///   and cooling power are excluded from it;
/// * the UPS's own conversion loss is utility-side heat that never reaches
///   the contained white space, so it does **not** contribute to the
///   server-inlet cooling load (it is cooled separately).
///
/// The loss model is the standard two-term fit: a fixed no-load loss plus a
/// proportional conversion loss.
///
/// # Examples
///
/// ```
/// use hbm_power::Ups;
/// use hbm_units::Power;
///
/// let ups = Ups::paper_default();
/// let utility = ups.utility_draw(Power::from_kilowatts(8.0));
/// assert!(utility > Power::from_kilowatts(8.0)); // losses
/// assert!(ups.efficiency_at(Power::from_kilowatts(8.0)) > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ups {
    /// Rated (critical) output power.
    pub rating: Power,
    /// Fixed no-load loss.
    pub no_load_loss: Power,
    /// Proportional conversion loss (fraction of the output power).
    pub proportional_loss: f64,
}

impl Ups {
    /// A UPS sized for the paper's 8 kW colocation: ≈95–96 % efficient at
    /// full load, with a realistic low-load efficiency droop.
    pub fn paper_default() -> Self {
        Ups {
            rating: Power::from_kilowatts(8.0),
            no_load_loss: Power::from_watts(120.0),
            proportional_loss: 0.03,
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.rating.is_finite() || self.rating <= Power::ZERO {
            return Err("UPS rating must be positive".into());
        }
        if !self.no_load_loss.is_finite() || self.no_load_loss < Power::ZERO {
            return Err("no-load loss must be non-negative".into());
        }
        if !(0.0..1.0).contains(&self.proportional_loss) {
            return Err("proportional loss must be in [0, 1)".into());
        }
        Ok(())
    }

    /// Output power clamped to the rating (overload trips are modeled by
    /// the emergency protocol, not here).
    pub fn clamp_output(&self, requested: Power) -> Power {
        requested.clamp(Power::ZERO, self.rating)
    }

    /// Utility-side draw needed to deliver `output` to the PDU.
    ///
    /// # Panics
    ///
    /// Panics if `output` is negative.
    pub fn utility_draw(&self, output: Power) -> Power {
        assert!(output >= Power::ZERO, "output must be non-negative");
        output + self.losses(output)
    }

    /// Heat dissipated inside the UPS at a given output.
    pub fn losses(&self, output: Power) -> Power {
        self.no_load_loss + output * self.proportional_loss
    }

    /// End-to-end efficiency at a given output (0 at zero output).
    pub fn efficiency_at(&self, output: Power) -> f64 {
        let input = self.utility_draw(output);
        if input <= Power::ZERO {
            return 0.0;
        }
        output / input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_droops_at_low_load() {
        let ups = Ups::paper_default();
        let full = ups.efficiency_at(Power::from_kilowatts(8.0));
        let light = ups.efficiency_at(Power::from_kilowatts(1.0));
        assert!(
            full > light,
            "full-load {full} must beat light-load {light}"
        );
        assert!(full > 0.94 && full < 0.98);
        assert!(light > 0.85);
    }

    #[test]
    fn losses_grow_with_output() {
        let ups = Ups::paper_default();
        let l0 = ups.losses(Power::ZERO);
        let l8 = ups.losses(Power::from_kilowatts(8.0));
        assert_eq!(l0, Power::from_watts(120.0));
        assert!((l8.as_watts() - 360.0).abs() < 1e-9);
    }

    #[test]
    fn clamp_respects_rating() {
        let ups = Ups::paper_default();
        assert_eq!(
            ups.clamp_output(Power::from_kilowatts(10.0)),
            Power::from_kilowatts(8.0)
        );
        assert_eq!(
            ups.clamp_output(Power::from_kilowatts(5.0)),
            Power::from_kilowatts(5.0)
        );
    }

    #[test]
    fn utility_draw_is_output_plus_losses() {
        let ups = Ups::paper_default();
        let out = Power::from_kilowatts(6.0);
        assert_eq!(ups.utility_draw(out), out + ups.losses(out));
    }

    #[test]
    fn zero_output_efficiency_is_zero() {
        assert_eq!(Ups::paper_default().efficiency_at(Power::ZERO), 0.0);
    }

    #[test]
    fn validation() {
        assert!(Ups::paper_default().validate().is_ok());
        let mut bad = Ups::paper_default();
        bad.proportional_loss = 1.5;
        assert!(bad.validate().is_err());
    }
}
