//! PDU: capacity enforcement and per-tenant metering.

use serde::{Deserialize, Serialize};

use hbm_units::Power;

use crate::{Tenant, TenantId};

/// One metering snapshot: per-tenant metered draws plus the total.
///
/// Metered power is what the operator *sees*; it is also what the operator
/// uses as a proxy for the cooling load. An attacker discharging built-in
/// batteries makes its actual heat exceed its metered draw — the titular
/// "heat behind the meter".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeterReading {
    per_tenant: Vec<(TenantId, Power)>,
    total: Power,
}

impl MeterReading {
    /// Metered draw of one tenant, if present.
    pub fn tenant(&self, id: TenantId) -> Option<Power> {
        self.per_tenant
            .iter()
            .find(|(t, _)| *t == id)
            .map(|(_, p)| *p)
    }

    /// Total metered PDU draw.
    pub fn total(&self) -> Power {
        self.total
    }

    /// Iterates over `(tenant, metered power)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (TenantId, Power)> {
        self.per_tenant.iter()
    }
}

/// The shared power distribution unit.
///
/// Holds the tenant roster and the colocation's UPS-protected capacity, and
/// produces [`MeterReading`]s from requested tenant draws, clamping each
/// tenant to its subscription (the operator's enforcement) — the paper's
/// attacker always stays below its subscription *in metered terms*, so the
/// clamp never fires for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pdu {
    capacity: Power,
    tenants: Vec<Tenant>,
}

impl Pdu {
    /// Creates a PDU with the given capacity and tenant roster.
    ///
    /// # Panics
    ///
    /// Panics if the roster is empty, tenant ids are not unique, or the sum
    /// of subscriptions exceeds capacity (this reproduction does not model
    /// power oversubscription; the paper's colocation subscribes exactly to
    /// capacity).
    pub fn new(capacity: Power, tenants: Vec<Tenant>) -> Self {
        assert!(!tenants.is_empty(), "PDU needs at least one tenant");
        let mut ids: Vec<_> = tenants.iter().map(|t| t.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), tenants.len(), "tenant ids must be unique");
        let subscribed: Power = tenants.iter().map(|t| t.subscribed).sum();
        assert!(
            subscribed <= capacity + Power::from_watts(1e-6),
            "subscriptions exceed PDU capacity"
        );
        Pdu { capacity, tenants }
    }

    /// UPS-protected capacity of the colocation.
    pub fn capacity(&self) -> Power {
        self.capacity
    }

    /// The tenant roster.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Looks a tenant up by id.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Total subscribed capacity across tenants.
    pub fn total_subscribed(&self) -> Power {
        self.tenants.iter().map(|t| t.subscribed).sum()
    }

    /// Meters one slot: each tenant's requested draw is clamped to its
    /// subscription; returns the per-tenant readings and total.
    ///
    /// # Panics
    ///
    /// Panics if `requested.len()` differs from the tenant count or any
    /// request is negative.
    pub fn meter(&self, requested: &[Power]) -> MeterReading {
        assert_eq!(
            requested.len(),
            self.tenants.len(),
            "one request per tenant required"
        );
        assert!(
            requested.iter().all(|&p| p >= Power::ZERO),
            "power requests must be non-negative"
        );
        let per_tenant: Vec<(TenantId, Power)> = self
            .tenants
            .iter()
            .zip(requested)
            .map(|(t, &req)| (t.id, req.min(t.subscribed)))
            .collect();
        let total = per_tenant.iter().map(|(_, p)| *p).sum();
        MeterReading { per_tenant, total }
    }

    /// Headroom between capacity and a metered total.
    pub fn headroom(&self, reading: &MeterReading) -> Power {
        (self.capacity - reading.total()).positive_part()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerSpec;

    fn paper_roster() -> Vec<Tenant> {
        let mut tenants = vec![Tenant::uniform(
            TenantId(0),
            "attacker",
            Power::from_kilowatts(0.8),
            ServerSpec::attacker_repeated(),
            4,
        )];
        for i in 1..=3 {
            tenants.push(Tenant::uniform(
                TenantId(i),
                format!("benign-{i}"),
                Power::from_kilowatts(2.4),
                ServerSpec::paper_default(),
                12,
            ));
        }
        tenants
    }

    fn paper_pdu() -> Pdu {
        Pdu::new(Power::from_kilowatts(8.0), paper_roster())
    }

    #[test]
    fn roster_matches_table_one() {
        let pdu = paper_pdu();
        assert_eq!(pdu.tenants().len(), 4);
        assert_eq!(
            pdu.tenants()
                .iter()
                .map(Tenant::server_count)
                .sum::<usize>(),
            40
        );
        assert_eq!(pdu.total_subscribed(), Power::from_kilowatts(8.0));
    }

    #[test]
    fn metering_sums_tenant_draws() {
        let pdu = paper_pdu();
        let reading = pdu.meter(&[
            Power::from_kilowatts(0.8),
            Power::from_kilowatts(2.0),
            Power::from_kilowatts(2.2),
            Power::from_kilowatts(1.5),
        ]);
        assert_eq!(reading.total(), Power::from_kilowatts(6.5));
        assert_eq!(
            reading.tenant(TenantId(2)),
            Some(Power::from_kilowatts(2.2))
        );
        assert_eq!(pdu.headroom(&reading), Power::from_kilowatts(1.5));
    }

    #[test]
    fn subscription_clamp_enforced() {
        let pdu = paper_pdu();
        let reading = pdu.meter(&[
            Power::from_kilowatts(1.5), // attacker asking over 0.8 kW
            Power::from_kilowatts(2.4),
            Power::from_kilowatts(2.4),
            Power::from_kilowatts(2.4),
        ]);
        assert_eq!(
            reading.tenant(TenantId(0)),
            Some(Power::from_kilowatts(0.8))
        );
        assert_eq!(reading.total(), Power::from_kilowatts(8.0));
    }

    #[test]
    fn unknown_tenant_is_none() {
        let pdu = paper_pdu();
        let reading = pdu.meter(&[Power::ZERO; 4]);
        assert_eq!(reading.tenant(TenantId(9)), None);
    }

    #[test]
    #[should_panic(expected = "subscriptions exceed")]
    fn oversubscription_rejected() {
        let mut roster = paper_roster();
        roster.push(Tenant::uniform(
            TenantId(4),
            "extra",
            Power::from_kilowatts(1.0),
            ServerSpec::paper_default(),
            5,
        ));
        let _ = Pdu::new(Power::from_kilowatts(8.0), roster);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let mut roster = paper_roster();
        roster[1].id = TenantId(0);
        let _ = Pdu::new(Power::from_kilowatts(8.0), roster);
    }
}
