//! Power-delivery substrate of the edge colocation.
//!
//! Models the paper's tree hierarchy (utility → UPS → PDU → servers), the
//! per-tenant power metering the operator uses both for capacity enforcement
//! and — crucially for the attack — as a *proxy for cooling load*, plus the
//! server power models and the thermal-emergency power-capping protocol.
//!
//! The central observation of the paper lives here: the operator meters what
//! flows out of the PDU, but a server with a built-in battery can consume
//! *more* than its metered draw. [`Pdu::meter`] therefore reports metered
//! power, while the simulator separately tracks actual (heat-producing)
//! power; the gap is the "behind the meter" cooling load.
//!
//! # Examples
//!
//! ```
//! use hbm_power::{EmergencyProtocol, ProtocolState};
//! use hbm_units::{Duration, Temperature};
//!
//! let mut protocol = EmergencyProtocol::paper_default();
//! let minute = Duration::from_minutes(1.0);
//! // Three minutes above the 32 °C threshold → emergency (2-minute dwell).
//! protocol.step(Temperature::from_celsius(33.0), minute);
//! protocol.step(Temperature::from_celsius(33.0), minute);
//! let state = protocol.step(Temperature::from_celsius(33.0), minute);
//! assert!(matches!(state, ProtocolState::Emergency { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capping;
mod pdu;
mod server;
mod tenant;
mod ups;

pub use capping::{EmergencyProtocol, ProtocolState};
pub use pdu::{MeterReading, Pdu};
pub use server::ServerSpec;
pub use tenant::{Tenant, TenantId};
pub use ups::Ups;
