//! Thermal-emergency handling: the operator's power-capping protocol.

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Power, Temperature};

/// Current state of the emergency protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProtocolState {
    /// Inlet temperature within limits; no action.
    Normal,
    /// Inlet has exceeded the threshold but not yet for the full dwell time.
    Watch {
        /// How long the threshold has been continuously exceeded.
        over_threshold_for: Duration,
    },
    /// Thermal emergency declared: every server must cap its power.
    Emergency {
        /// Remaining capping time.
        remaining: Duration,
    },
    /// The inlet reached the shutdown limit: the shared PDU powered off.
    Outage,
}

impl ProtocolState {
    /// Whether servers must currently cap their power.
    pub fn is_capping(&self) -> bool {
        matches!(self, ProtocolState::Emergency { .. })
    }

    /// Whether the colocation is down.
    pub fn is_outage(&self) -> bool {
        matches!(self, ProtocolState::Outage)
    }
}

/// The operator's thermal-emergency protocol (Section V-A):
///
/// * inlet > 32 °C continuously for ≥ 2 minutes ⇒ **thermal emergency**:
///   every server (attacker included) must cap to 120 W (60 % of rating)
///   for 5 minutes;
/// * inlet reaches 45 °C ⇒ **automatic shutdown** of the shared PDU
///   (system outage).
///
/// Drive it with one [`EmergencyProtocol::step`] per slot; it returns the
/// state to apply *during the next slot*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergencyProtocol {
    /// Emergency temperature threshold (32 °C, ASHRAE allowable limit).
    pub threshold: Temperature,
    /// Continuous time above threshold before an emergency is declared.
    pub dwell: Duration,
    /// Per-server power cap during an emergency.
    pub cap_per_server: Power,
    /// Duration of each capping episode.
    pub cap_duration: Duration,
    /// Automatic-shutdown temperature (PDU powers off).
    pub shutdown: Temperature,
    state: ProtocolState,
}

impl EmergencyProtocol {
    /// Creates a protocol in the [`ProtocolState::Normal`] state.
    ///
    /// # Panics
    ///
    /// Panics if `shutdown <= threshold` or durations/cap are non-positive.
    pub fn new(
        threshold: Temperature,
        dwell: Duration,
        cap_per_server: Power,
        cap_duration: Duration,
        shutdown: Temperature,
    ) -> Self {
        assert!(shutdown > threshold, "shutdown limit must exceed threshold");
        assert!(dwell >= Duration::ZERO, "dwell must be non-negative");
        assert!(
            cap_duration > Duration::ZERO,
            "cap duration must be positive"
        );
        assert!(cap_per_server > Power::ZERO, "cap must be positive");
        EmergencyProtocol {
            threshold,
            dwell,
            cap_per_server,
            cap_duration,
            shutdown,
            state: ProtocolState::Normal,
        }
    }

    /// The paper's Table I protocol: 32 °C / 2 min dwell / 120 W cap for
    /// 5 min / 45 °C shutdown.
    pub fn paper_default() -> Self {
        EmergencyProtocol::new(
            Temperature::from_celsius(32.0),
            Duration::from_minutes(2.0),
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Temperature::from_celsius(45.0),
        )
    }

    /// Current state.
    pub fn state(&self) -> ProtocolState {
        self.state
    }

    /// Resets to [`ProtocolState::Normal`] (e.g. after an outage is
    /// serviced and the colocation restarts).
    pub fn reset(&mut self) {
        self.state = ProtocolState::Normal;
    }

    /// Overwrites the current state (checkpoint restore; the inverse of
    /// [`EmergencyProtocol::state`]).
    pub fn restore_state(&mut self, state: ProtocolState) {
        self.state = state;
    }

    /// Advances the protocol by one slot given the inlet temperature
    /// observed during that slot; returns the new state.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is non-positive.
    pub fn step(&mut self, inlet: Temperature, dt: Duration) -> ProtocolState {
        assert!(dt > Duration::ZERO, "step duration must be positive");
        // Shutdown dominates everything (except an existing outage).
        if !self.state.is_outage() && inlet >= self.shutdown {
            self.state = ProtocolState::Outage;
            return self.state;
        }
        self.state = match self.state {
            ProtocolState::Outage => ProtocolState::Outage,
            ProtocolState::Emergency { remaining } => {
                let left = remaining - dt;
                if left > Duration::ZERO {
                    ProtocolState::Emergency { remaining: left }
                } else if inlet > self.threshold {
                    // Still hot after the capping episode: start watching
                    // again immediately (and re-enter emergency after dwell).
                    ProtocolState::Watch {
                        over_threshold_for: dt,
                    }
                } else {
                    ProtocolState::Normal
                }
            }
            ProtocolState::Watch { over_threshold_for } => {
                if inlet > self.threshold {
                    let t = over_threshold_for + dt;
                    if t >= self.dwell {
                        ProtocolState::Emergency {
                            remaining: self.cap_duration,
                        }
                    } else {
                        ProtocolState::Watch {
                            over_threshold_for: t,
                        }
                    }
                } else {
                    ProtocolState::Normal
                }
            }
            ProtocolState::Normal => {
                if inlet > self.threshold {
                    ProtocolState::Watch {
                        over_threshold_for: dt,
                    }
                } else {
                    ProtocolState::Normal
                }
            }
        };
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> Duration {
        Duration::from_minutes(1.0)
    }

    fn hot() -> Temperature {
        Temperature::from_celsius(33.0)
    }

    fn cool() -> Temperature {
        Temperature::from_celsius(27.0)
    }

    #[test]
    fn stays_normal_when_cool() {
        let mut p = EmergencyProtocol::paper_default();
        for _ in 0..10 {
            assert_eq!(p.step(cool(), minute()), ProtocolState::Normal);
        }
    }

    #[test]
    fn declares_emergency_after_dwell() {
        let mut p = EmergencyProtocol::paper_default();
        assert!(matches!(
            p.step(hot(), minute()),
            ProtocolState::Watch { .. }
        ));
        let s = p.step(hot(), minute());
        assert!(
            s.is_capping(),
            "2 minutes over threshold must cap, got {s:?}"
        );
    }

    #[test]
    fn brief_excursion_does_not_trigger() {
        let mut p = EmergencyProtocol::paper_default();
        p.step(hot(), minute());
        let s = p.step(cool(), minute());
        assert_eq!(s, ProtocolState::Normal);
    }

    #[test]
    fn capping_lasts_five_minutes() {
        let mut p = EmergencyProtocol::paper_default();
        p.step(hot(), minute());
        p.step(hot(), minute()); // emergency declared, 5 min episode
        let mut capped = 0;
        for _ in 0..10 {
            if p.step(cool(), minute()).is_capping() {
                capped += 1;
            }
        }
        assert_eq!(
            capped, 4,
            "5-minute episode spans 5 slots incl. declaration"
        );
    }

    #[test]
    fn persistent_heat_retriggers_after_episode() {
        let mut p = EmergencyProtocol::paper_default();
        // Keep the room hot forever; capping episodes must repeat.
        let mut emergencies = 0;
        let mut prev_capping = false;
        for _ in 0..30 {
            let s = p.step(hot(), minute());
            if s.is_capping() && !prev_capping {
                emergencies += 1;
            }
            prev_capping = s.is_capping();
        }
        assert!(emergencies >= 2, "got {emergencies} emergencies");
    }

    #[test]
    fn shutdown_at_45_degrees() {
        let mut p = EmergencyProtocol::paper_default();
        let s = p.step(Temperature::from_celsius(45.0), minute());
        assert!(s.is_outage());
        // Outage is absorbing until reset.
        assert!(p.step(cool(), minute()).is_outage());
        p.reset();
        assert_eq!(p.state(), ProtocolState::Normal);
    }

    #[test]
    fn shutdown_preempts_emergency() {
        let mut p = EmergencyProtocol::paper_default();
        p.step(hot(), minute());
        p.step(hot(), minute());
        assert!(p.state().is_capping());
        assert!(p
            .step(Temperature::from_celsius(46.0), minute())
            .is_outage());
    }

    #[test]
    fn exactly_at_threshold_is_not_over() {
        let mut p = EmergencyProtocol::paper_default();
        for _ in 0..5 {
            let s = p.step(Temperature::from_celsius(32.0), minute());
            assert_eq!(s, ProtocolState::Normal);
        }
    }

    #[test]
    #[should_panic(expected = "shutdown limit")]
    fn rejects_inverted_limits() {
        let _ = EmergencyProtocol::new(
            Temperature::from_celsius(45.0),
            Duration::from_minutes(2.0),
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Temperature::from_celsius(32.0),
        );
    }
}
