//! Fork-join parallelism over scoped threads, with a process-wide thread
//! budget so nested [`par_map`] calls do not oversubscribe the machine.
//!
//! This is the workspace's offline substitute for rayon: the experiment
//! driver parallelizes across experiments while individual experiments
//! parallelize their internal sweeps, and both draw extra workers from
//! one shared budget. When the budget is exhausted, `par_map` degrades
//! to an ordinary sequential loop on the calling thread — results are
//! identical either way because outputs are collected by input index.
//!
//! # Examples
//!
//! ```
//! hbm_par::configure_threads(4);
//! let squares = hbm_par::par_map((0..8u64).collect::<Vec<_>>(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Extra worker threads the whole process may have in flight, beyond the
/// threads that call [`par_map`]. Negative is never stored; 0 means every
/// `par_map` call runs sequentially.
static EXTRA_THREAD_BUDGET: AtomicIsize = AtomicIsize::new(0);
static CONFIGURED: AtomicIsize = AtomicIsize::new(0);

/// Sets the process-wide parallelism level to `total` concurrent threads
/// (the caller's own thread counts as one, so `total = 1` disables all
/// worker spawning). Later calls replace earlier ones; the unreleased
/// portion of the old budget carries over proportionally.
pub fn configure_threads(total: usize) {
    let new_extra = total.saturating_sub(1) as isize;
    let old_extra = CONFIGURED.swap(new_extra, Ordering::SeqCst);
    // Adjust the live budget by the delta so in-flight borrows stay sound.
    EXTRA_THREAD_BUDGET.fetch_add(new_extra - old_extra, Ordering::SeqCst);
}

/// The configured total thread count (1 = sequential).
pub fn configured_threads() -> usize {
    CONFIGURED.load(Ordering::SeqCst) as usize + 1
}

/// A borrow of extra threads from the process-wide budget, returned to
/// the pool on drop.
///
/// [`par_map`] takes short-lived leases per call; long-running consumers
/// (the `hbm-serve` worker pool) hold one for their whole lifetime via
/// [`reserve_threads`], so nested `par_map` calls inside their work items
/// see a correspondingly smaller budget and the process never
/// oversubscribes.
#[derive(Debug)]
pub struct ThreadLease {
    granted: usize,
}

impl ThreadLease {
    fn acquire(want: usize) -> ThreadLease {
        let mut granted = 0;
        while granted < want {
            let cur = EXTRA_THREAD_BUDGET.load(Ordering::SeqCst);
            if cur <= 0 {
                break;
            }
            let take = (cur as usize).min(want - granted) as isize;
            if EXTRA_THREAD_BUDGET
                .compare_exchange(cur, cur - take, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                granted += take as usize;
            }
        }
        ThreadLease { granted }
    }

    /// How many extra threads this lease actually holds (possibly fewer
    /// than requested, down to zero when the budget was exhausted).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        EXTRA_THREAD_BUDGET.fetch_add(self.granted as isize, Ordering::SeqCst);
    }
}

/// Borrows up to `want` extra threads from the global budget for as long
/// as the returned lease lives. Grants whatever is available right now
/// (possibly zero) without blocking; the caller's own thread is not
/// counted and needs no lease.
pub fn reserve_threads(want: usize) -> ThreadLease {
    ThreadLease::acquire(want)
}

/// Applies `f` to every item, in parallel when the thread budget allows,
/// and returns the outputs in input order.
///
/// Work is distributed dynamically (an atomic next-item index), so uneven
/// item costs balance across workers. The calling thread always
/// participates; with an empty budget this is exactly `items.map(f)`.
///
/// Panics in `f` propagate to the caller after all workers stop.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }

    let lease = ThreadLease::acquire(n - 1);
    if lease.granted == 0 {
        return items.into_iter().map(f).collect();
    }

    // Hand items out by index; collect (index, output) pairs and reorder.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        let worker = || {
            let mut local: Vec<(usize, U)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken twice");
                local.push((i, f(item)));
            }
            out.lock().unwrap().extend(local);
        };
        let handles: Vec<_> = (0..lease.granted).map(|_| scope.spawn(worker)).collect();
        worker();
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });

    drop(lease);
    let mut pairs = out.into_inner().unwrap();
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    // The budget is process-global state shared by all #[test] threads, so
    // each test configures generously rather than asserting exact counts.

    #[test]
    fn sequential_when_budget_is_zero() {
        let out = par_map(vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn parallel_results_stay_in_input_order() {
        configure_threads(4);
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, |x| {
            if x % 7 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        configure_threads(4);
        let out = par_map(vec![0usize, 1, 2], |outer| {
            par_map((0..5usize).collect(), move |inner| outer * 100 + inner)
                .into_iter()
                .sum::<usize>()
        });
        assert_eq!(out, vec![10, 510, 1010]);
    }

    #[test]
    fn budget_is_released_after_use() {
        configure_threads(3);
        for _ in 0..50 {
            let _ = par_map(vec![1, 2, 3, 4], |x| x + 1);
        }
        // If leases leaked, the budget would be exhausted and this would
        // still work (sequentially) — so instead check the counter itself.
        let extra = super::EXTRA_THREAD_BUDGET.load(Ordering::SeqCst);
        assert!(extra >= 0, "budget must never stay negative: {extra}");
    }

    #[test]
    fn every_item_processed_exactly_once() {
        configure_threads(4);
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let out = par_map((0..256usize).collect::<Vec<_>>(), |x| {
            HITS.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 256);
        assert_eq!(out, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn reserved_threads_come_back_on_drop() {
        configure_threads(4);
        // The budget is shared with concurrently running tests, so assert
        // only lease-local invariants: the grant is bounded by the request
        // and the counter never goes negative once the lease returns.
        for _ in 0..20 {
            let lease = reserve_threads(2);
            assert!(lease.granted() <= 2);
            drop(lease);
            assert!(super::EXTRA_THREAD_BUDGET.load(Ordering::SeqCst) >= 0);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(empty, |x| x).is_empty());
        assert_eq!(par_map(vec![9], |x| x + 1), vec![10]);
    }
}
