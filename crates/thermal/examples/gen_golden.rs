//! Regenerates the golden traces in `tests/golden/` used by the
//! `golden_equivalence` test.
//!
//! The traces were captured from the original nested-`Vec` CFD and
//! matrix-model implementations; the flat-buffer rewrites must reproduce
//! them to 1e-12. Only rerun this (`cargo run -p hbm-thermal --example
//! gen_golden`) if the *physics* intentionally changes, never to paper
//! over a numerical regression.

use std::fmt::Write as _;

use hbm_thermal::{extract_heat_matrix, CfdConfig, CfdModel, CoolingSystem, HeatMatrixModel};
use hbm_units::{Duration, Power, Temperature};

/// Deterministic time-varying power pattern built from dyadic rationals so
/// every value is exact in binary (no libm involvement).
fn pattern_power(server: usize, step: usize) -> Power {
    let phase = (server * 7 + step * 13) % 16;
    Power::from_watts(150.0 + 50.0 * phase as f64 / 16.0)
}

fn small_config() -> CfdConfig {
    CfdConfig {
        racks: 1,
        servers_per_rack: 4,
        cooling: CoolingSystem {
            capacity: Power::from_kilowatts(0.8),
            supply: Temperature::from_celsius(27.0),
            derate_onset: Temperature::from_celsius(33.0),
            derate_per_kelvin: 0.05,
            min_capacity_fraction: 0.65,
        },
        per_server_flow_kg_s: 0.018,
        leakage_fraction: 0.06,
        cell_mass_kg: 0.5,
        plenum_mass_kg: 1.0,
    }
}

fn cfd_trace(config: CfdConfig, steps: usize) -> String {
    let mut cfd = CfdModel::new(config);
    let n = config.server_count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# per step: all {n} inlet temperatures (deg C), one value per line"
    );
    for k in 0..steps {
        let powers: Vec<Power> = (0..n).map(|s| pattern_power(s, k)).collect();
        cfd.step(&powers, Duration::from_minutes(0.5));
        for t in cfd.inlets() {
            let _ = writeln!(out, "{:.17e}", t.as_celsius());
        }
    }
    out
}

fn matrix_trace(steps: usize) -> String {
    let config = small_config();
    let baseline = vec![Power::from_watts(150.0); 4];
    let spike = Power::from_watts(120.0);
    let window = Duration::from_minutes(5.0);
    let lag = Duration::from_minutes(1.0);

    let mut out = String::new();
    let matrix = extract_heat_matrix(&config, &baseline, spike, window, lag);
    let _ = writeln!(out, "# matrix responses [source][receiver][lag] (K/W)");
    for s in 0..4 {
        for r in 0..4 {
            for l in 0..matrix.lag_count() {
                let _ = writeln!(out, "{:.17e}", matrix.response(s, r, l));
            }
        }
    }

    let mut model = HeatMatrixModel::from_cfd(&config, &baseline, spike, window, lag);
    let _ = writeln!(out, "# per step: 4 predicted inlet temperatures (deg C)");
    for k in 0..steps {
        let powers: Vec<Power> = (0..4).map(|s| pattern_power(s, k)).collect();
        for t in model.step(&powers) {
            let _ = writeln!(out, "{:.17e}", t.as_celsius());
        }
    }
    out
}

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).expect("create golden dir");
    std::fs::write(
        dir.join("cfd_paper_default.txt"),
        cfd_trace(CfdConfig::paper_default(), 100),
    )
    .expect("write cfd golden");
    std::fs::write(
        dir.join("cfd_prototype.txt"),
        cfd_trace(CfdConfig::prototype(), 100),
    )
    .expect("write prototype golden");
    std::fs::write(dir.join("matrix_small.txt"), matrix_trace(100)).expect("write matrix golden");
    println!("golden traces written to {}", dir.display());
}
