//! Lumped-capacitance zone model of the contained container air.

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Power, Temperature, TemperatureDelta};

use crate::CoolingSystem;

/// Fast single-zone thermal model used for year-long simulations.
///
/// With hot/cold-aisle containment all servers see (approximately) one inlet
/// temperature, so the container air can be treated as a single thermal mass
/// `C_th`:
///
/// ```text
/// C_th · dT/dt = P_it − Q_cool(T, P_it)
/// Q_cool = min(effective_capacity(T), P_it + G·(T − T_sup)⁺)
/// ```
///
/// * While `P_it` is below capacity the AC removes all server heat **plus**
///   up to `G·(T − T_sup)` of stored heat, pulling the inlet back to the
///   setpoint within minutes.
/// * While `P_it` exceeds the (possibly derated) capacity the surplus
///   integrates into the air mass, raising the inlet.
/// * The inlet never drops below the supply setpoint.
///
/// Default calibration: `C_th = 40 kJ/K` (≈ container air plus light
/// structure), so 1 kW of overload raises the inlet by the 5 K emergency
/// margin in 200 s — within the "< 4 minutes" the paper reports (Fig. 11a) —
/// and `G = 700 W/K`, consistent with the CFD model's loop airflow
/// (`ṁ·c_p ≈ 0.68 kW/K`), a ≈60 s pull-down time constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneModel {
    cooling: CoolingSystem,
    /// Thermal capacitance of the zone air, J/K.
    heat_capacity_j_per_k: f64,
    /// Pull-down conductance, W/K.
    pulldown_w_per_k: f64,
    /// Integration sub-step.
    substep: Duration,
    inlet: Temperature,
}

impl ZoneModel {
    /// Creates a zone model at thermal equilibrium (inlet = supply).
    ///
    /// # Panics
    ///
    /// Panics if `cooling` fails validation or parameters are non-positive.
    pub fn new(cooling: CoolingSystem, heat_capacity_j_per_k: f64, pulldown_w_per_k: f64) -> Self {
        cooling.validate().expect("invalid cooling system");
        assert!(
            heat_capacity_j_per_k > 0.0 && heat_capacity_j_per_k.is_finite(),
            "heat capacity must be positive"
        );
        assert!(
            pulldown_w_per_k > 0.0 && pulldown_w_per_k.is_finite(),
            "pull-down conductance must be positive"
        );
        ZoneModel {
            cooling,
            heat_capacity_j_per_k,
            pulldown_w_per_k,
            substep: Duration::from_seconds(5.0),
            inlet: cooling.supply,
        }
    }

    /// The paper-calibrated 8 kW container.
    pub fn paper_default() -> Self {
        ZoneModel::new(CoolingSystem::paper_default(), 40_000.0, 700.0)
    }

    /// The scaled-down 14-server prototype of Appendix A (3 kW cooling),
    /// with a smaller sealed-room air mass.
    pub fn prototype() -> Self {
        ZoneModel::new(CoolingSystem::prototype(), 25_000.0, 150.0)
    }

    /// The cooling plant in use.
    pub fn cooling(&self) -> &CoolingSystem {
        &self.cooling
    }

    /// Current server inlet temperature.
    pub fn inlet(&self) -> Temperature {
        self.inlet
    }

    /// Inlet rise above the supply setpoint.
    pub fn rise(&self) -> TemperatureDelta {
        (self.inlet - self.cooling.supply).positive_part()
    }

    /// Resets the inlet to a given temperature (e.g. after an outage).
    pub fn set_inlet(&mut self, inlet: Temperature) {
        assert!(inlet.is_finite(), "inlet temperature must be finite");
        self.inlet = inlet.max(self.cooling.supply);
    }

    /// Advances the model by `dt` with a constant IT (heat) load, returning
    /// the inlet temperature at the end of the step.
    ///
    /// Integrates internally with sub-steps for stability; `dt` can be a full
    /// 1-minute simulation slot.
    ///
    /// # Panics
    ///
    /// Panics if `it_load` is negative or `dt` is non-positive.
    pub fn step(&mut self, it_load: Power, dt: Duration) -> Temperature {
        assert!(it_load >= Power::ZERO, "IT load must be non-negative");
        assert!(dt > Duration::ZERO, "step duration must be positive");
        let started = hbm_telemetry::timing::start();
        let mut substeps: u64 = 0;
        let mut remaining = dt.as_seconds();
        while remaining > 0.0 {
            let h = remaining.min(self.substep.as_seconds());
            self.advance_seconds(it_load, h);
            substeps += 1;
            remaining -= h;
        }
        hbm_telemetry::timing::record_span_units("zone.step", started, substeps);
        self.inlet
    }

    fn advance_seconds(&mut self, it_load: Power, h: f64) {
        self.inlet = Temperature::from_celsius(substep_inlet_celsius(
            self.inlet.as_celsius(),
            it_load.as_watts(),
            h,
            self.cooling.capacity.as_watts(),
            self.cooling.supply.as_celsius(),
            self.cooling.derate_onset.as_celsius(),
            self.cooling.derate_per_kelvin,
            self.cooling.min_capacity_fraction,
            self.heat_capacity_j_per_k,
            self.pulldown_w_per_k,
        ));
    }

    /// Analytic time for the inlet to rise from the supply setpoint to
    /// `threshold` under a constant cooling `overload` (heat beyond
    /// capacity), ignoring derating. Used as the Fig. 11(a) reference curve.
    ///
    /// # Panics
    ///
    /// Panics if `overload` is non-positive.
    pub fn time_to_reach(&self, threshold: Temperature, overload: Power) -> Duration {
        assert!(overload > Power::ZERO, "overload must be positive");
        let margin = (threshold - self.cooling.supply)
            .positive_part()
            .as_celsius();
        Duration::from_seconds(self.heat_capacity_j_per_k * margin / overload.as_watts())
    }

    /// Like [`ZoneModel::time_to_reach`] but starting from a given inlet
    /// temperature (the Fig. 11a "already running hotter" curves).
    ///
    /// # Panics
    ///
    /// Panics if `overload` is non-positive.
    pub fn time_to_reach_from(
        &self,
        start: Temperature,
        threshold: Temperature,
        overload: Power,
    ) -> Duration {
        assert!(overload > Power::ZERO, "overload must be positive");
        let margin = (threshold - start).positive_part().as_celsius();
        Duration::from_seconds(self.heat_capacity_j_per_k * margin / overload.as_watts())
    }
}

/// One explicit-Euler sub-step of the lumped-capacitance zone ODE, on raw
/// `f64` state.
///
/// This is the single source of truth for the zone dynamics: both
/// [`ZoneModel::step`] (scalar, one container) and [`ZoneLanes::step_all`]
/// (SoA, a whole batch of containers) call it, so the two paths apply
/// exactly the same IEEE-754 operation sequence and stay bit-identical. The
/// body is branch-free element-wise arithmetic (`max`/`min` compile to SIMD
/// min/max), which is what lets the batch loop auto-vectorize.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn substep_inlet_celsius(
    inlet_c: f64,
    it_load_w: f64,
    h: f64,
    capacity_w: f64,
    supply_c: f64,
    derate_onset_c: f64,
    derate_per_kelvin: f64,
    min_capacity_fraction: f64,
    heat_capacity_j_per_k: f64,
    pulldown_w_per_k: f64,
) -> f64 {
    let excess = (inlet_c - derate_onset_c).max(0.0);
    let fraction = (1.0 - derate_per_kelvin * excess).max(min_capacity_fraction);
    let capacity = capacity_w * fraction;
    let rise = (inlet_c - supply_c).max(0.0);
    let removable = it_load_w + pulldown_w_per_k * rise;
    let q_cool = removable.min(capacity);
    let net = it_load_w - q_cool; // may be negative (cooling down)
    let delta = net * h / heat_capacity_j_per_k;
    (inlet_c + delta).max(supply_c)
}

/// Structure-of-arrays batch of zone models advanced in lockstep.
///
/// Each lane is one container's lumped-capacitance model; lanes are fully
/// independent and may carry different cooling plants and calibrations. All
/// per-lane state and parameters live in contiguous `f64` arrays so the
/// sub-step sweep in [`step_all`](Self::step_all) is a tight vectorizable
/// loop over the batch dimension instead of pointer-chasing `ZoneModel`
/// structs.
///
/// Lane `i` evolves bit-identically to a standalone [`ZoneModel`] given the
/// same load sequence: both call the same sub-step kernel, and lanes do not
/// interact.
#[derive(Debug, Clone, Default)]
pub struct ZoneLanes {
    inlet_c: Vec<f64>,
    capacity_w: Vec<f64>,
    supply_c: Vec<f64>,
    derate_onset_c: Vec<f64>,
    derate_per_kelvin: Vec<f64>,
    min_capacity_fraction: Vec<f64>,
    heat_capacity_j_per_k: Vec<f64>,
    pulldown_w_per_k: Vec<f64>,
    substep_s: f64,
}

impl ZoneLanes {
    /// Creates an empty batch.
    pub fn new() -> Self {
        ZoneLanes::default()
    }

    /// Appends one lane initialized from `model` (parameters and current
    /// inlet temperature are copied).
    pub fn push(&mut self, model: &ZoneModel) {
        if self.inlet_c.is_empty() {
            self.substep_s = model.substep.as_seconds();
        } else {
            assert_eq!(
                self.substep_s,
                model.substep.as_seconds(),
                "all lanes must share the integration sub-step"
            );
        }
        self.inlet_c.push(model.inlet.as_celsius());
        self.capacity_w.push(model.cooling.capacity.as_watts());
        self.supply_c.push(model.cooling.supply.as_celsius());
        self.derate_onset_c
            .push(model.cooling.derate_onset.as_celsius());
        self.derate_per_kelvin.push(model.cooling.derate_per_kelvin);
        self.min_capacity_fraction
            .push(model.cooling.min_capacity_fraction);
        self.heat_capacity_j_per_k.push(model.heat_capacity_j_per_k);
        self.pulldown_w_per_k.push(model.pulldown_w_per_k);
    }

    /// Builds a batch from a slice of zone models.
    pub fn from_models(models: &[ZoneModel]) -> Self {
        let mut lanes = ZoneLanes::new();
        for model in models {
            lanes.push(model);
        }
        lanes
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.inlet_c.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.inlet_c.is_empty()
    }

    /// Per-lane inlet temperatures, °C.
    pub fn inlet_celsius(&self) -> &[f64] {
        &self.inlet_c
    }

    /// Per-lane supply setpoints, °C.
    pub fn supply_celsius(&self) -> &[f64] {
        &self.supply_c
    }

    /// Inlet temperature of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn inlet(&self, lane: usize) -> Temperature {
        Temperature::from_celsius(self.inlet_c[lane])
    }

    /// Advances every lane by `dt` with its constant IT load from
    /// `it_loads_w` (watts, one entry per lane), sub-stepping exactly like
    /// [`ZoneModel::step`]. Emits the `batch.zone` telemetry span with one
    /// unit per lane-sub-step.
    ///
    /// # Panics
    ///
    /// Panics if `it_loads_w` length differs from the lane count or `dt` is
    /// non-positive.
    pub fn step_all(&mut self, it_loads_w: &[f64], dt: Duration) {
        assert_eq!(it_loads_w.len(), self.len(), "one IT load per lane");
        assert!(dt > Duration::ZERO, "step duration must be positive");
        let started = hbm_telemetry::timing::start();
        // Cache-blocked loop nest: a slot integrates many sub-steps, and one
        // full-batch sweep touches nine f64 columns — far more than L1. Runs
        // all sub-steps over one block of lanes before moving on, so a
        // block's columns (9 × BLOCK × 8 B ≈ 18 KiB) stay cache-hot for the
        // whole slot. Lanes are independent, so the per-lane arithmetic (and
        // the sub-step schedule `h = remaining.min(substep_s)`) is exactly
        // the sweep order's — results are bit-identical.
        const BLOCK: usize = 256;
        let mut substeps: u64 = 0;
        let mut start = 0;
        while start < self.len() {
            let end = (start + BLOCK).min(self.len());
            substeps = 0;
            let mut remaining = dt.as_seconds();
            while remaining > 0.0 {
                let h = remaining.min(self.substep_s);
                // Zipped iteration (rather than indexing nine separate
                // `Vec`s) lets the compiler drop the per-access bounds
                // checks and keep the branch-free kernel vectorized over the
                // lane dimension.
                let lanes = self.inlet_c[start..end]
                    .iter_mut()
                    .zip(&it_loads_w[start..end])
                    .zip(&self.capacity_w[start..end])
                    .zip(&self.supply_c[start..end])
                    .zip(&self.derate_onset_c[start..end])
                    .zip(&self.derate_per_kelvin[start..end])
                    .zip(&self.min_capacity_fraction[start..end])
                    .zip(&self.heat_capacity_j_per_k[start..end])
                    .zip(&self.pulldown_w_per_k[start..end]);
                for ((((((((inlet, &load), &cap), &sup), &onset), &dpk), &minf), &hc), &pwk) in
                    lanes
                {
                    *inlet =
                        substep_inlet_celsius(*inlet, load, h, cap, sup, onset, dpk, minf, hc, pwk);
                }
                substeps += 1;
                remaining -= h;
            }
            start = end;
        }
        hbm_telemetry::timing::record_span_units(
            "batch.zone",
            started,
            substeps * self.len() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes_until(zone: &mut ZoneModel, load: Power, threshold: Temperature) -> f64 {
        let step = Duration::from_seconds(5.0);
        let mut t = 0.0;
        while zone.inlet() < threshold {
            zone.step(load, step);
            t += 5.0 / 60.0;
            assert!(t < 120.0, "never reached {threshold}");
        }
        t
    }

    #[test]
    fn equilibrium_below_capacity() {
        let mut zone = ZoneModel::paper_default();
        for _ in 0..60 {
            zone.step(Power::from_kilowatts(6.0), Duration::from_minutes(1.0));
        }
        assert_eq!(zone.inlet(), Temperature::from_celsius(27.0));
    }

    #[test]
    fn one_kilowatt_overload_crosses_32c_within_four_minutes() {
        let mut zone = ZoneModel::paper_default();
        let t = minutes_until(
            &mut zone,
            Power::from_kilowatts(9.0),
            Temperature::from_celsius(32.0),
        );
        assert!((2.0..4.0).contains(&t), "crossed in {t} min");
    }

    #[test]
    fn bigger_overload_is_faster() {
        let t1 = minutes_until(
            &mut ZoneModel::paper_default(),
            Power::from_kilowatts(8.5),
            Temperature::from_celsius(32.0),
        );
        let t2 = minutes_until(
            &mut ZoneModel::paper_default(),
            Power::from_kilowatts(10.0),
            Temperature::from_celsius(32.0),
        );
        assert!(t2 < t1);
    }

    #[test]
    fn recovers_to_setpoint_after_overload() {
        let mut zone = ZoneModel::paper_default();
        zone.step(Power::from_kilowatts(10.0), Duration::from_minutes(2.5));
        assert!(zone.inlet() > Temperature::from_celsius(31.0));
        // Drop to a light load; should pull back to 27 °C within ~10 min.
        for _ in 0..10 {
            zone.step(Power::from_kilowatts(4.0), Duration::from_minutes(1.0));
        }
        assert!(zone.inlet() < Temperature::from_celsius(27.5));
    }

    #[test]
    fn never_cools_below_supply() {
        let mut zone = ZoneModel::paper_default();
        for _ in 0..100 {
            zone.step(Power::ZERO, Duration::from_minutes(1.0));
            assert!(zone.inlet() >= Temperature::from_celsius(27.0));
        }
    }

    #[test]
    fn derating_produces_runaway_under_sustained_overload() {
        // Total heat just above nameplate: once hot, derating makes the
        // effective overload grow, so the inlet should reach the 45 °C
        // shutdown limit rather than plateau.
        let mut zone = ZoneModel::paper_default();
        zone.step(Power::from_kilowatts(10.3), Duration::from_minutes(4.0));
        let t = minutes_until(
            &mut zone,
            Power::from_kilowatts(8.2),
            Temperature::from_celsius(45.0),
        );
        assert!(t < 30.0, "runaway took {t} min");
    }

    #[test]
    fn analytic_time_matches_simulation() {
        let zone = ZoneModel::paper_default();
        let analytic = zone
            .time_to_reach(Temperature::from_celsius(32.0), Power::from_kilowatts(1.0))
            .as_minutes();
        let simulated = minutes_until(
            &mut ZoneModel::paper_default(),
            Power::from_kilowatts(9.0),
            Temperature::from_celsius(32.0),
        );
        assert!(
            (analytic - simulated).abs() < 0.3,
            "analytic {analytic} vs simulated {simulated}"
        );
    }

    #[test]
    fn hotter_start_reaches_threshold_sooner() {
        let zone = ZoneModel::paper_default();
        let from_27 = zone.time_to_reach_from(
            Temperature::from_celsius(27.0),
            Temperature::from_celsius(32.0),
            Power::from_kilowatts(1.0),
        );
        let from_29 = zone.time_to_reach_from(
            Temperature::from_celsius(29.0),
            Temperature::from_celsius(32.0),
            Power::from_kilowatts(1.0),
        );
        assert!(from_29 < from_27);
    }

    #[test]
    fn lanes_match_scalar_models_bitwise() {
        let mut models = vec![
            ZoneModel::paper_default(),
            ZoneModel::prototype(),
            ZoneModel::new(
                CoolingSystem::paper_default().with_capacity(Power::from_kilowatts(9.5)),
                35_000.0,
                600.0,
            ),
        ];
        let mut lanes = ZoneLanes::from_models(&models);
        let dt = Duration::from_minutes(1.0);
        for k in 0..200u64 {
            // Mix of overload, underload and idle, different per lane.
            let loads: Vec<f64> = (0..models.len())
                .map(|i| ((k + i as u64) % 5) as f64 * 2_500.0)
                .collect();
            for (model, &w) in models.iter_mut().zip(loads.iter()) {
                model.step(Power::from_watts(w), dt);
            }
            lanes.step_all(&loads, dt);
            for (i, model) in models.iter().enumerate() {
                assert_eq!(
                    lanes.inlet_celsius()[i].to_bits(),
                    model.inlet().as_celsius().to_bits(),
                    "lane {i} diverged at slot {k}"
                );
            }
        }
    }

    #[test]
    fn lanes_expose_supply_and_inlet() {
        let lanes = ZoneLanes::from_models(&[ZoneModel::paper_default()]);
        assert_eq!(lanes.len(), 1);
        assert!(!lanes.is_empty());
        assert_eq!(lanes.supply_celsius(), &[27.0]);
        assert_eq!(lanes.inlet(0), Temperature::from_celsius(27.0));
    }

    #[test]
    fn step_is_substep_invariant() {
        let mut coarse = ZoneModel::paper_default();
        let mut fine = ZoneModel::paper_default();
        coarse.step(Power::from_kilowatts(9.5), Duration::from_minutes(3.0));
        for _ in 0..36 {
            fine.step(Power::from_kilowatts(9.5), Duration::from_seconds(5.0));
        }
        assert!(
            (coarse.inlet() - fine.inlet()).abs() < TemperatureDelta::from_celsius(0.01),
            "coarse {} vs fine {}",
            coarse.inlet(),
            fine.inlet()
        );
    }
}
