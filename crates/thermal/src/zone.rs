//! Lumped-capacitance zone model of the contained container air.

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Power, Temperature, TemperatureDelta};

use crate::CoolingSystem;

/// Fast single-zone thermal model used for year-long simulations.
///
/// With hot/cold-aisle containment all servers see (approximately) one inlet
/// temperature, so the container air can be treated as a single thermal mass
/// `C_th`:
///
/// ```text
/// C_th · dT/dt = P_it − Q_cool(T, P_it)
/// Q_cool = min(effective_capacity(T), P_it + G·(T − T_sup)⁺)
/// ```
///
/// * While `P_it` is below capacity the AC removes all server heat **plus**
///   up to `G·(T − T_sup)` of stored heat, pulling the inlet back to the
///   setpoint within minutes.
/// * While `P_it` exceeds the (possibly derated) capacity the surplus
///   integrates into the air mass, raising the inlet.
/// * The inlet never drops below the supply setpoint.
///
/// Default calibration: `C_th = 40 kJ/K` (≈ container air plus light
/// structure), so 1 kW of overload raises the inlet by the 5 K emergency
/// margin in 200 s — within the "< 4 minutes" the paper reports (Fig. 11a) —
/// and `G = 700 W/K`, consistent with the CFD model's loop airflow
/// (`ṁ·c_p ≈ 0.68 kW/K`), a ≈60 s pull-down time constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneModel {
    cooling: CoolingSystem,
    /// Thermal capacitance of the zone air, J/K.
    heat_capacity_j_per_k: f64,
    /// Pull-down conductance, W/K.
    pulldown_w_per_k: f64,
    /// Integration sub-step.
    substep: Duration,
    inlet: Temperature,
}

impl ZoneModel {
    /// Creates a zone model at thermal equilibrium (inlet = supply).
    ///
    /// # Panics
    ///
    /// Panics if `cooling` fails validation or parameters are non-positive.
    pub fn new(cooling: CoolingSystem, heat_capacity_j_per_k: f64, pulldown_w_per_k: f64) -> Self {
        cooling.validate().expect("invalid cooling system");
        assert!(
            heat_capacity_j_per_k > 0.0 && heat_capacity_j_per_k.is_finite(),
            "heat capacity must be positive"
        );
        assert!(
            pulldown_w_per_k > 0.0 && pulldown_w_per_k.is_finite(),
            "pull-down conductance must be positive"
        );
        ZoneModel {
            cooling,
            heat_capacity_j_per_k,
            pulldown_w_per_k,
            substep: Duration::from_seconds(5.0),
            inlet: cooling.supply,
        }
    }

    /// The paper-calibrated 8 kW container.
    pub fn paper_default() -> Self {
        ZoneModel::new(CoolingSystem::paper_default(), 40_000.0, 700.0)
    }

    /// The scaled-down 14-server prototype of Appendix A (3 kW cooling),
    /// with a smaller sealed-room air mass.
    pub fn prototype() -> Self {
        ZoneModel::new(CoolingSystem::prototype(), 25_000.0, 150.0)
    }

    /// The cooling plant in use.
    pub fn cooling(&self) -> &CoolingSystem {
        &self.cooling
    }

    /// Current server inlet temperature.
    pub fn inlet(&self) -> Temperature {
        self.inlet
    }

    /// Inlet rise above the supply setpoint.
    pub fn rise(&self) -> TemperatureDelta {
        (self.inlet - self.cooling.supply).positive_part()
    }

    /// Resets the inlet to a given temperature (e.g. after an outage).
    pub fn set_inlet(&mut self, inlet: Temperature) {
        assert!(inlet.is_finite(), "inlet temperature must be finite");
        self.inlet = inlet.max(self.cooling.supply);
    }

    /// Advances the model by `dt` with a constant IT (heat) load, returning
    /// the inlet temperature at the end of the step.
    ///
    /// Integrates internally with sub-steps for stability; `dt` can be a full
    /// 1-minute simulation slot.
    ///
    /// # Panics
    ///
    /// Panics if `it_load` is negative or `dt` is non-positive.
    pub fn step(&mut self, it_load: Power, dt: Duration) -> Temperature {
        assert!(it_load >= Power::ZERO, "IT load must be non-negative");
        assert!(dt > Duration::ZERO, "step duration must be positive");
        let started = hbm_telemetry::timing::start();
        let mut substeps: u64 = 0;
        let mut remaining = dt.as_seconds();
        while remaining > 0.0 {
            let h = remaining.min(self.substep.as_seconds());
            self.advance_seconds(it_load, h);
            substeps += 1;
            remaining -= h;
        }
        hbm_telemetry::timing::record_span_units("zone.step", started, substeps);
        self.inlet
    }

    fn advance_seconds(&mut self, it_load: Power, h: f64) {
        let capacity = self.cooling.effective_capacity(self.inlet);
        let rise = (self.inlet - self.cooling.supply)
            .positive_part()
            .as_celsius();
        let removable = it_load + Power::from_watts(self.pulldown_w_per_k * rise);
        let q_cool = removable.min(capacity);
        let net = it_load - q_cool; // may be negative (cooling down)
        let delta = TemperatureDelta::from_celsius(net.as_watts() * h / self.heat_capacity_j_per_k);
        self.inlet = (self.inlet + delta).max(self.cooling.supply);
    }

    /// Analytic time for the inlet to rise from the supply setpoint to
    /// `threshold` under a constant cooling `overload` (heat beyond
    /// capacity), ignoring derating. Used as the Fig. 11(a) reference curve.
    ///
    /// # Panics
    ///
    /// Panics if `overload` is non-positive.
    pub fn time_to_reach(&self, threshold: Temperature, overload: Power) -> Duration {
        assert!(overload > Power::ZERO, "overload must be positive");
        let margin = (threshold - self.cooling.supply)
            .positive_part()
            .as_celsius();
        Duration::from_seconds(self.heat_capacity_j_per_k * margin / overload.as_watts())
    }

    /// Like [`ZoneModel::time_to_reach`] but starting from a given inlet
    /// temperature (the Fig. 11a "already running hotter" curves).
    ///
    /// # Panics
    ///
    /// Panics if `overload` is non-positive.
    pub fn time_to_reach_from(
        &self,
        start: Temperature,
        threshold: Temperature,
        overload: Power,
    ) -> Duration {
        assert!(overload > Power::ZERO, "overload must be positive");
        let margin = (threshold - start).positive_part().as_celsius();
        Duration::from_seconds(self.heat_capacity_j_per_k * margin / overload.as_watts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes_until(zone: &mut ZoneModel, load: Power, threshold: Temperature) -> f64 {
        let step = Duration::from_seconds(5.0);
        let mut t = 0.0;
        while zone.inlet() < threshold {
            zone.step(load, step);
            t += 5.0 / 60.0;
            assert!(t < 120.0, "never reached {threshold}");
        }
        t
    }

    #[test]
    fn equilibrium_below_capacity() {
        let mut zone = ZoneModel::paper_default();
        for _ in 0..60 {
            zone.step(Power::from_kilowatts(6.0), Duration::from_minutes(1.0));
        }
        assert_eq!(zone.inlet(), Temperature::from_celsius(27.0));
    }

    #[test]
    fn one_kilowatt_overload_crosses_32c_within_four_minutes() {
        let mut zone = ZoneModel::paper_default();
        let t = minutes_until(
            &mut zone,
            Power::from_kilowatts(9.0),
            Temperature::from_celsius(32.0),
        );
        assert!((2.0..4.0).contains(&t), "crossed in {t} min");
    }

    #[test]
    fn bigger_overload_is_faster() {
        let t1 = minutes_until(
            &mut ZoneModel::paper_default(),
            Power::from_kilowatts(8.5),
            Temperature::from_celsius(32.0),
        );
        let t2 = minutes_until(
            &mut ZoneModel::paper_default(),
            Power::from_kilowatts(10.0),
            Temperature::from_celsius(32.0),
        );
        assert!(t2 < t1);
    }

    #[test]
    fn recovers_to_setpoint_after_overload() {
        let mut zone = ZoneModel::paper_default();
        zone.step(Power::from_kilowatts(10.0), Duration::from_minutes(2.5));
        assert!(zone.inlet() > Temperature::from_celsius(31.0));
        // Drop to a light load; should pull back to 27 °C within ~10 min.
        for _ in 0..10 {
            zone.step(Power::from_kilowatts(4.0), Duration::from_minutes(1.0));
        }
        assert!(zone.inlet() < Temperature::from_celsius(27.5));
    }

    #[test]
    fn never_cools_below_supply() {
        let mut zone = ZoneModel::paper_default();
        for _ in 0..100 {
            zone.step(Power::ZERO, Duration::from_minutes(1.0));
            assert!(zone.inlet() >= Temperature::from_celsius(27.0));
        }
    }

    #[test]
    fn derating_produces_runaway_under_sustained_overload() {
        // Total heat just above nameplate: once hot, derating makes the
        // effective overload grow, so the inlet should reach the 45 °C
        // shutdown limit rather than plateau.
        let mut zone = ZoneModel::paper_default();
        zone.step(Power::from_kilowatts(10.3), Duration::from_minutes(4.0));
        let t = minutes_until(
            &mut zone,
            Power::from_kilowatts(8.2),
            Temperature::from_celsius(45.0),
        );
        assert!(t < 30.0, "runaway took {t} min");
    }

    #[test]
    fn analytic_time_matches_simulation() {
        let zone = ZoneModel::paper_default();
        let analytic = zone
            .time_to_reach(Temperature::from_celsius(32.0), Power::from_kilowatts(1.0))
            .as_minutes();
        let simulated = minutes_until(
            &mut ZoneModel::paper_default(),
            Power::from_kilowatts(9.0),
            Temperature::from_celsius(32.0),
        );
        assert!(
            (analytic - simulated).abs() < 0.3,
            "analytic {analytic} vs simulated {simulated}"
        );
    }

    #[test]
    fn hotter_start_reaches_threshold_sooner() {
        let zone = ZoneModel::paper_default();
        let from_27 = zone.time_to_reach_from(
            Temperature::from_celsius(27.0),
            Temperature::from_celsius(32.0),
            Power::from_kilowatts(1.0),
        );
        let from_29 = zone.time_to_reach_from(
            Temperature::from_celsius(29.0),
            Temperature::from_celsius(32.0),
            Power::from_kilowatts(1.0),
        );
        assert!(from_29 < from_27);
    }

    #[test]
    fn step_is_substep_invariant() {
        let mut coarse = ZoneModel::paper_default();
        let mut fine = ZoneModel::paper_default();
        coarse.step(Power::from_kilowatts(9.5), Duration::from_minutes(3.0));
        for _ in 0..36 {
            fine.step(Power::from_kilowatts(9.5), Duration::from_seconds(5.0));
        }
        assert!(
            (coarse.inlet() - fine.inlet()).abs() < TemperatureDelta::from_celsius(0.01),
            "coarse {} vs fine {}",
            coarse.inlet(),
            fine.inlet()
        );
    }
}
