//! Thermal substrate of the edge colocation: cooling plant, fast zone model,
//! CFD-lite container simulator, and the heat-distribution matrix.
//!
//! The paper's methodology (Section V-A) is two-level:
//!
//! 1. **CFD analysis** gives detailed transient thermal dynamics, but is far
//!    too slow for year-long experiments. Here that role is played by
//!    [`CfdModel`], a coarse finite-volume model of the Vertiv SmartMod-class
//!    container (two racks × 20 servers, hot/cold-aisle containment with a
//!    small leakage bypass, an AC with capacity saturation).
//! 2. A **heat-distribution matrix** ([`HeatMatrix`]) is extracted from the
//!    CFD model by injecting a 10-minute heat spike at every server and
//!    recording the per-server inlet-temperature response — exactly the
//!    paper's extraction procedure — and then drives long simulations via
//!    linear superposition.
//!
//! For the year-long attack studies the workspace additionally provides
//! [`ZoneModel`], a calibrated lumped-capacitance model of the aggregate
//! inlet temperature with the same anchor dynamics (1 kW of cooling overload
//! crosses the 32 °C emergency threshold in under four minutes, Fig. 11a),
//! plus the capacity derating above the design point that produces the
//! thermal runaway of one-shot attacks (Fig. 8).
//!
//! # Examples
//!
//! ```
//! use hbm_thermal::{CoolingSystem, ZoneModel};
//! use hbm_units::{Duration, Power, Temperature};
//!
//! let mut zone = ZoneModel::paper_default();
//! // 1 kW overload: 9 kW of heat against an 8 kW cooling plant.
//! let overload = Power::from_kilowatts(9.0);
//! let mut minutes = 0.0;
//! while zone.inlet() < Temperature::from_celsius(32.0) {
//!     zone.step(overload, Duration::from_seconds(10.0));
//!     minutes += 10.0 / 60.0;
//! }
//! assert!(minutes < 4.0, "crossed in {minutes} min");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfd;
mod cooling;
mod matrix;
mod zone;

pub use cfd::{CfdConfig, CfdModel};
pub use cooling::CoolingSystem;
pub use matrix::{
    clear_heat_matrix_cache, extract_heat_matrix, heat_matrix_cache_stats, HeatMatrix,
    HeatMatrixCacheStats, HeatMatrixLanes, HeatMatrixModel,
};
pub use zone::{ZoneLanes, ZoneModel};
