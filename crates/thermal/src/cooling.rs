//! Cooling plant model.

use serde::{Deserialize, Serialize};

use hbm_units::{Power, Temperature, TemperatureDelta};

/// The computer-room air conditioner of the edge colocation.
///
/// Sized to the colocation's power capacity (8 kW in the paper's Table I),
/// supplying air at the ASHRAE-recommended 27 °C. Real refrigeration loses
/// effectiveness as the return/room temperature climbs past the design point
/// (falling COP, unreachable supply setpoint), which is what turns a
/// sustained overload into the runaway the paper's one-shot attack exploits:
/// once the room is hot, even a modest residual overload keeps it climbing to
/// the 45 °C shutdown limit. That derating is modeled linearly above
/// `derate_onset`, floored at `min_capacity_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingSystem {
    /// Nameplate heat-removal capacity at the design point.
    pub capacity: Power,
    /// Supply-air temperature setpoint (server inlet under containment).
    pub supply: Temperature,
    /// Room temperature above which capacity starts to derate.
    pub derate_onset: Temperature,
    /// Fractional capacity lost per kelvin above the onset.
    pub derate_per_kelvin: f64,
    /// Lower bound on the derated capacity, as a fraction of nameplate.
    pub min_capacity_fraction: f64,
}

impl CoolingSystem {
    /// The paper's 8 kW edge colocation plant: 8 kW capacity, 27 °C supply.
    pub fn paper_default() -> Self {
        CoolingSystem {
            capacity: Power::from_kilowatts(8.0),
            supply: Temperature::from_celsius(27.0),
            derate_onset: Temperature::from_celsius(33.0),
            derate_per_kelvin: 0.05,
            min_capacity_fraction: 0.65,
        }
    }

    /// The scaled-down 3 kW prototype plant of Appendix A (14-server rack).
    pub fn prototype() -> Self {
        CoolingSystem {
            capacity: Power::from_kilowatts(3.0),
            supply: Temperature::from_celsius(24.0),
            derate_onset: Temperature::from_celsius(30.0),
            derate_per_kelvin: 0.05,
            min_capacity_fraction: 0.65,
        }
    }

    /// Returns a copy with a different nameplate capacity (Fig. 12e's extra
    /// cooling capacity sweep).
    pub fn with_capacity(mut self, capacity: Power) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns a copy with a different supply setpoint (the "lower the
    /// setpoint" prevention defense of Section VII-A).
    pub fn with_supply(mut self, supply: Temperature) -> Self {
        self.supply = supply;
        self
    }

    /// Heat-removal capacity available when the room/inlet air is at `room`.
    pub fn effective_capacity(&self, room: Temperature) -> Power {
        let excess = (room - self.derate_onset).positive_part().as_celsius();
        let fraction = (1.0 - self.derate_per_kelvin * excess).max(self.min_capacity_fraction);
        self.capacity * fraction
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.capacity.is_finite() || self.capacity <= Power::ZERO {
            return Err("cooling capacity must be positive".into());
        }
        if !self.supply.is_finite() {
            return Err("supply temperature must be finite".into());
        }
        if self.derate_onset < self.supply {
            return Err("derate onset must be at or above the supply setpoint".into());
        }
        if !(0.0..1.0).contains(&self.derate_per_kelvin) {
            return Err("derate per kelvin must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.min_capacity_fraction) {
            return Err("minimum capacity fraction must be in [0, 1]".into());
        }
        Ok(())
    }

    /// Convenience: temperature delta of the room above the supply setpoint.
    pub fn rise_above_supply(&self, room: Temperature) -> TemperatureDelta {
        room - self.supply
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_capacity_at_design_point() {
        let ac = CoolingSystem::paper_default();
        assert_eq!(
            ac.effective_capacity(Temperature::from_celsius(27.0)),
            Power::from_kilowatts(8.0)
        );
        assert_eq!(
            ac.effective_capacity(Temperature::from_celsius(33.0)),
            Power::from_kilowatts(8.0)
        );
    }

    #[test]
    fn derates_above_onset() {
        let ac = CoolingSystem::paper_default();
        let at_35 = ac.effective_capacity(Temperature::from_celsius(35.0));
        // 2 K over onset at 5 %/K → 90 % of nameplate.
        assert!((at_35.as_kilowatts() - 7.2).abs() < 1e-9);
    }

    #[test]
    fn derating_floors_at_minimum() {
        let ac = CoolingSystem::paper_default();
        let very_hot = ac.effective_capacity(Temperature::from_celsius(80.0));
        assert!((very_hot.as_kilowatts() - 5.2).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut ac = CoolingSystem::paper_default();
        assert!(ac.validate().is_ok());
        ac.derate_onset = Temperature::from_celsius(20.0);
        assert!(ac.validate().is_err());
        let mut ac2 = CoolingSystem::paper_default();
        ac2.capacity = Power::ZERO;
        assert!(ac2.validate().is_err());
        let mut ac3 = CoolingSystem::paper_default();
        ac3.derate_per_kelvin = 1.5;
        assert!(ac3.validate().is_err());
    }

    #[test]
    fn prototype_is_smaller() {
        let p = CoolingSystem::prototype();
        assert!(p.capacity < CoolingSystem::paper_default().capacity);
        assert!(p.validate().is_ok());
    }
}
