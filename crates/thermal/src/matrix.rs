//! Heat-distribution matrix: extraction from the CFD model and the linear
//! superposition model built on it.
//!
//! Following the paper (Section V-A, "Thermal environment"): *"to extract the
//! heat distribution matrix, we test the data center with a heat spike from
//! each server and measure the resulting temperature impact for 10 minutes.
//! We repeat the process for all servers to completely build the matrix."*
//!
//! [`extract_heat_matrix`] does exactly that against [`CfdModel`];
//! [`HeatMatrixModel`] then predicts per-server inlet temperatures by
//! convolving per-server power deviations with the extracted impulse
//! responses. Like the paper's, this is a linearization around the chosen
//! operating point: it captures heat recirculation and advection (which
//! servers warm which inlets, and with what delay) and is validated against
//! the CFD model in that regime (Fig. 7a). Cooling-capacity *saturation* is
//! inherently nonlinear, so the overload dynamics of attacks are handled by
//! [`crate::ZoneModel`] — mirroring the paper, which likewise switches from
//! CFD-extracted responses to an aggregate emergency model once the plant is
//! overloaded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Power, Temperature};

use crate::{CfdConfig, CfdModel};

/// Impulse responses of every server inlet to a heat spike at every server.
///
/// `response(source, receiver, lag)` is the inlet-temperature impact (kelvin
/// per watt of spike power) at `receiver`, `lag` steps after a one-step
/// spike at `source`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatMatrix {
    servers: usize,
    lags: usize,
    lag_step: Duration,
    /// Flattened `[source][receiver][lag]`, K/W.
    data: Vec<f64>,
}

impl HeatMatrix {
    /// Number of servers (sources = receivers).
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Number of lag steps in the response window.
    pub fn lag_count(&self) -> usize {
        self.lags
    }

    /// Duration of one lag step.
    pub fn lag_step(&self) -> Duration {
        self.lag_step
    }

    /// Impulse response entry, K/W.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn response(&self, source: usize, receiver: usize, lag: usize) -> f64 {
        assert!(source < self.servers, "source out of range");
        assert!(receiver < self.servers, "receiver out of range");
        assert!(lag < self.lags, "lag out of range");
        self.data[(source * self.servers + receiver) * self.lags + lag]
    }

    /// Total (summed over lags) impact of `source` on `receiver`, K/W.
    pub fn total_response(&self, source: usize, receiver: usize) -> f64 {
        (0..self.lags)
            .map(|l| self.response(source, receiver, l))
            .sum()
    }

    /// Builds a matrix from raw impulse-response data (flattened
    /// `[source][receiver][lag]`, K/W) — for synthetic matrices in tests and
    /// reference kernels outside this crate; extraction-produced matrices
    /// should come from [`extract_heat_matrix`].
    ///
    /// # Panics
    ///
    /// Panics if `servers` or `lags` is zero, `lag_step` is non-positive, or
    /// `data.len() != servers * servers * lags`.
    pub fn from_raw(servers: usize, lags: usize, lag_step: Duration, data: Vec<f64>) -> Self {
        assert!(servers > 0, "at least one server required");
        assert!(lags > 0, "at least one lag step required");
        assert!(lag_step > Duration::ZERO, "lag step must be positive");
        assert_eq!(
            data.len(),
            servers * servers * lags,
            "data must hold servers x servers x lags responses"
        );
        HeatMatrix {
            servers,
            lags,
            lag_step,
            data,
        }
    }
}

/// Extracts the heat-distribution matrix from the CFD model.
///
/// The model is driven to steady state at `baseline` powers; then, for each
/// server, a spike of `spike` extra watts is applied for one `lag_step` and
/// the per-server inlet deviation is recorded at every `lag_step` boundary
/// over `window`.
///
/// # Panics
///
/// Panics if `baseline` length mismatches the layout, `spike` is
/// non-positive, or `window` is shorter than `lag_step`.
///
/// # Examples
///
/// ```no_run
/// use hbm_thermal::{extract_heat_matrix, CfdConfig};
/// use hbm_units::{Duration, Power};
///
/// let config = CfdConfig::paper_default();
/// let baseline = vec![Power::from_watts(150.0); config.server_count()];
/// let matrix = extract_heat_matrix(
///     &config,
///     &baseline,
///     Power::from_watts(300.0),
///     Duration::from_minutes(10.0),
///     Duration::from_minutes(1.0),
/// );
/// assert_eq!(matrix.server_count(), 40);
/// ```
pub fn extract_heat_matrix(
    config: &CfdConfig,
    baseline: &[Power],
    spike: Power,
    window: Duration,
    lag_step: Duration,
) -> HeatMatrix {
    cached_extraction(config, baseline, spike, window, lag_step)
        .matrix
        .clone()
}

/// The full result of one extraction: the matrix plus the steady-state
/// inlets of the operating point it was linearized around.
struct Extraction {
    matrix: HeatMatrix,
    /// Steady-state inlet temperatures at `baseline`, °C, rack-major.
    base_inlets: Vec<f64>,
}

/// Cache key: every scalar that influences the extraction, by exact bit
/// pattern (two configs that differ in any ulp extract different matrices).
#[derive(PartialEq, Eq, Hash)]
struct ExtractionKey {
    bits: Vec<u64>,
}

impl ExtractionKey {
    fn new(
        config: &CfdConfig,
        baseline: &[Power],
        spike: Power,
        window: Duration,
        lag_step: Duration,
    ) -> Self {
        let mut bits = vec![config.racks as u64, config.servers_per_rack as u64];
        for f in [
            config.cooling.capacity.as_watts(),
            config.cooling.supply.as_celsius(),
            config.cooling.derate_onset.as_celsius(),
            config.cooling.derate_per_kelvin,
            config.cooling.min_capacity_fraction,
            config.per_server_flow_kg_s,
            config.leakage_fraction,
            config.cell_mass_kg,
            config.plenum_mass_kg,
            spike.as_watts(),
            window.as_seconds(),
            lag_step.as_seconds(),
        ] {
            bits.push(f.to_bits());
        }
        bits.extend(baseline.iter().map(|p| p.as_watts().to_bits()));
        ExtractionKey { bits }
    }
}

type ExtractionCache = Mutex<HashMap<ExtractionKey, Arc<OnceLock<Arc<Extraction>>>>>;

static CACHE: OnceLock<ExtractionCache> = OnceLock::new();
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters of the process-wide extraction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeatMatrixCacheStats {
    /// Extractions answered from the cache.
    pub hits: u64,
    /// Extractions actually computed.
    pub misses: u64,
}

/// Snapshot of the extraction cache's hit/miss counters.
pub fn heat_matrix_cache_stats() -> HeatMatrixCacheStats {
    HeatMatrixCacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
    }
}

/// Empties the extraction cache and resets its counters (mainly for tests
/// and long-running processes sweeping many configurations).
pub fn clear_heat_matrix_cache() {
    if let Some(cache) = CACHE.get() {
        cache.lock().expect("cache poisoned").clear();
    }
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// Memoized extraction: one computation per distinct (config, baseline,
/// spike, window, lag step) for the life of the process.
///
/// The map lock is held only to look up the per-key cell; concurrent
/// requests for the *same* key block on that cell's `OnceLock` instead of
/// recomputing, while requests for different keys proceed independently.
fn cached_extraction(
    config: &CfdConfig,
    baseline: &[Power],
    spike: Power,
    window: Duration,
    lag_step: Duration,
) -> Arc<Extraction> {
    let key = ExtractionKey::new(config, baseline, spike, window, lag_step);
    let cell = {
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("cache poisoned");
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
    };
    let mut computed = false;
    let extraction = cell.get_or_init(|| {
        computed = true;
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        Arc::new(run_extraction(config, baseline, spike, window, lag_step))
    });
    if !computed {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    Arc::clone(extraction)
}

/// The actual spike-probing procedure (uncached).
fn run_extraction(
    config: &CfdConfig,
    baseline: &[Power],
    spike: Power,
    window: Duration,
    lag_step: Duration,
) -> Extraction {
    assert_eq!(
        baseline.len(),
        config.server_count(),
        "one baseline power per server required"
    );
    assert!(spike > Power::ZERO, "spike power must be positive");
    assert!(
        window >= lag_step,
        "window must cover at least one lag step"
    );
    let started = hbm_telemetry::timing::start();
    let servers = config.server_count();
    let lags = (window / lag_step).round() as usize;

    // Steady state at the operating point.
    let mut base_model = CfdModel::new(*config);
    base_model.run_to_steady_state(baseline, 0.002, Duration::from_minutes(60.0));
    let base_inlets: Vec<f64> = base_model.inlet_celsius().to_vec();

    // Each source's probe is an independent transient from the shared
    // steady state, so the sources parallelize with no effect on the
    // results (each writes a disjoint block, reassembled in order).
    let spike_watts = spike.as_watts();
    let blocks = hbm_par::par_map((0..servers).collect(), |source| {
        let mut model = base_model.clone();
        let mut spiked = baseline.to_vec();
        spiked[source] += spike;
        let mut block = vec![0.0; servers * lags];
        for lag in 0..lags {
            let powers: &[Power] = if lag == 0 { &spiked } else { baseline };
            model.step(powers, lag_step);
            for (receiver, t) in model.inlet_celsius().iter().enumerate() {
                let dt = t - base_inlets[receiver];
                block[receiver * lags + lag] = dt / spike_watts;
            }
        }
        block
    });
    let mut data = Vec::with_capacity(servers * servers * lags);
    for block in blocks {
        data.extend_from_slice(&block);
    }

    hbm_telemetry::timing::record_span_units("heat_matrix.extract", started, servers as u64);
    Extraction {
        matrix: HeatMatrix {
            servers,
            lags,
            lag_step,
            data,
        },
        base_inlets,
    }
}

/// Linear-superposition thermal model driven by a [`HeatMatrix`].
///
/// Predicts per-server inlet temperatures as the baseline inlets plus the
/// convolution of per-server power *deviations* with the impulse responses.
/// Temperatures are floored at the supply setpoint (the AC never cools below
/// it, so neither does the linearization).
///
/// The convolution is evaluated *scatter-on-arrival*: when a slot's power
/// vector arrives, each nonzero deviation's whole response column is
/// scattered once into a ring of pre-accumulated future inlet contributions,
/// and every step then reads its answer from the ring's current slot in
/// O(servers). The former gather kernel re-summed `servers × lags × sources`
/// every step; the scatter form does that work only once per *arrival*, which
/// in steady state (few sources deviating per slot) is a ~`lags`-fold
/// reduction. The reference gather kernel lives on in `hbm-bench` as
/// `GatherHeatMatrixModel`, with equivalence enforced at 1e-9 (the summation
/// order changes — contributions accumulate in arrival order instead of
/// newest-age-first — so the two kernels agree to rounding, not bit-for-bit;
/// see `docs/PERFORMANCE.md`).
#[derive(Debug, Clone)]
pub struct HeatMatrixModel {
    matrix: HeatMatrix,
    /// The matrix's responses transposed to `[source][lag][receiver]`, so a
    /// scatter of one source's response at one lag reads *and* writes
    /// contiguous memory.
    resp_scatter: Vec<f64>,
    baseline_powers: Vec<Power>,
    baseline_inlets: Vec<f64>,
    supply_celsius: f64,
    /// Ring of pre-accumulated future inlet contributions, `lags × servers`
    /// kelvin: slot `(head + lag) % lags` holds the summed impact, on every
    /// receiver, of all past arrivals whose response reaches `lag` steps
    /// ahead of the current slot.
    pending: Vec<f64>,
    /// Ring slot the *next* step will read (and then retire).
    head: usize,
}

impl PartialEq for HeatMatrixModel {
    /// Compares logical state: two models are equal when they would
    /// predict identically, regardless of where the ring buffer's head
    /// happens to sit.
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix
            && self.baseline_powers == other.baseline_powers
            && self.baseline_inlets == other.baseline_inlets
            && self.supply_celsius == other.supply_celsius
            && (0..self.matrix.lag_count())
                .all(|lag| self.pending_slice(lag) == other.pending_slice(lag))
    }
}

impl HeatMatrixModel {
    /// Creates a model around the operating point the matrix was extracted
    /// at.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths mismatch the matrix.
    pub fn new(
        matrix: HeatMatrix,
        baseline_powers: Vec<Power>,
        baseline_inlets: Vec<Temperature>,
        supply: Temperature,
    ) -> Self {
        assert_eq!(baseline_powers.len(), matrix.server_count());
        assert_eq!(baseline_inlets.len(), matrix.server_count());
        Self::from_parts(
            matrix,
            baseline_powers,
            baseline_inlets.iter().map(|t| t.as_celsius()).collect(),
            supply.as_celsius(),
        )
    }

    fn from_parts(
        matrix: HeatMatrix,
        baseline_powers: Vec<Power>,
        baseline_inlets: Vec<f64>,
        supply_celsius: f64,
    ) -> Self {
        let n = matrix.server_count();
        let lags = matrix.lag_count();
        // Transpose [source][receiver][lag] → [source][lag][receiver]; pure
        // data movement, every response value is unchanged.
        let mut resp_scatter = vec![0.0; n * n * lags];
        for source in 0..n {
            for receiver in 0..n {
                for lag in 0..lags {
                    resp_scatter[(source * lags + lag) * n + receiver] =
                        matrix.data[(source * n + receiver) * lags + lag];
                }
            }
        }
        HeatMatrixModel {
            matrix,
            resp_scatter,
            baseline_powers,
            baseline_inlets,
            supply_celsius,
            pending: vec![0.0; lags * n],
            head: 0,
        }
    }

    /// The accumulated contributions `lag` steps ahead of the current slot.
    fn pending_slice(&self, lag: usize) -> &[f64] {
        let n = self.matrix.server_count();
        let slot = (self.head + lag) % self.matrix.lag_count();
        &self.pending[slot * n..(slot + 1) * n]
    }

    /// Convenience constructor: extracts the matrix and records the baseline
    /// in one go.
    ///
    /// The extraction goes through the process-wide cache, and the cached
    /// steady-state inlets double as the model's baseline — building many
    /// models around the same operating point costs one CFD run total.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`extract_heat_matrix`].
    pub fn from_cfd(
        config: &CfdConfig,
        baseline: &[Power],
        spike: Power,
        window: Duration,
        lag_step: Duration,
    ) -> Self {
        let extraction = cached_extraction(config, baseline, spike, window, lag_step);
        Self::from_parts(
            extraction.matrix.clone(),
            baseline.to_vec(),
            extraction.base_inlets.clone(),
            config.cooling.supply.as_celsius(),
        )
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &HeatMatrix {
        &self.matrix
    }

    /// The per-server baseline powers of the operating point.
    pub fn baseline_powers(&self) -> &[Power] {
        &self.baseline_powers
    }

    /// The steady-state inlet temperatures at the operating point, °C.
    pub fn baseline_inlets_celsius(&self) -> &[f64] {
        &self.baseline_inlets
    }

    /// The cooling supply setpoint the predictions are floored at, °C.
    pub fn supply_celsius(&self) -> f64 {
        self.supply_celsius
    }

    /// Scatters this slot's nonzero power deviations into the pending ring.
    ///
    /// Each deviating source contributes its whole response column at once:
    /// `lag_count` contiguous multiply-adds, one ring slot per lag, starting
    /// at the current slot (the lag-0 response lands in the slot the same
    /// step reads, matching the gather kernel's age-0 term).
    fn scatter_arrivals(&mut self, powers: &[Power]) {
        let started = hbm_telemetry::timing::start();
        scatter_lane(
            &self.resp_scatter,
            &self.baseline_powers,
            &mut self.pending,
            self.head,
            self.matrix.server_count(),
            self.matrix.lag_count(),
            powers,
        );
        hbm_telemetry::timing::record_span("matrix.scatter", started);
    }

    /// Zeroes the slot just read and advances the ring one step.
    fn retire_current(&mut self) {
        let n = self.matrix.server_count();
        let cur = self.head * n;
        self.pending[cur..cur + n].fill(0.0);
        self.head = (self.head + 1) % self.matrix.lag_count();
    }

    /// Advances one lag step with the given per-server powers, writing the
    /// predicted inlet temperatures (°C) into `out`. Allocation-free: the
    /// steady loop can call this every slot without touching the heap.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` or `out.len()` mismatches the server count.
    pub fn step_into(&mut self, powers: &[Power], out: &mut [f64]) {
        let n = self.matrix.server_count();
        assert_eq!(powers.len(), n, "one power per server required");
        assert_eq!(out.len(), n, "one output cell per server required");
        let started = hbm_telemetry::timing::start();
        self.scatter_arrivals(powers);
        let current = self.pending_slice(0);
        for ((o, &dt), &base) in out.iter_mut().zip(current).zip(&self.baseline_inlets) {
            *o = (base + dt).max(self.supply_celsius);
        }
        self.retire_current();
        hbm_telemetry::timing::record_span("heat_matrix.convolve", started);
    }

    /// Advances one lag step with the given per-server powers and returns
    /// the predicted inlet temperatures.
    ///
    /// Thin compatibility wrapper over [`Self::step_into`]; hot loops should
    /// call `step_into` with a reused buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` mismatches the server count.
    pub fn step(&mut self, powers: &[Power]) -> Vec<Temperature> {
        let n = self.matrix.server_count();
        let mut out = vec![0.0; n];
        self.step_into(powers, &mut out);
        out.into_iter().map(Temperature::from_celsius).collect()
    }

    /// Mean of the latest prediction for a power vector (steps the model).
    ///
    /// Averages straight off the pending ring — no inlet vector is
    /// materialized, so this is as allocation-free as [`Self::step_into`].
    pub fn step_mean(&mut self, powers: &[Power]) -> Temperature {
        let n = self.matrix.server_count();
        assert_eq!(powers.len(), n, "one power per server required");
        let started = hbm_telemetry::timing::start();
        self.scatter_arrivals(powers);
        let mut sum = 0.0;
        for (&dt, &base) in self.pending_slice(0).iter().zip(&self.baseline_inlets) {
            sum += (base + dt).max(self.supply_celsius);
        }
        self.retire_current();
        hbm_telemetry::timing::record_span("heat_matrix.convolve", started);
        Temperature::from_celsius(sum / n as f64)
    }

    /// Clears the convolution history (back to the operating point).
    pub fn reset(&mut self) {
        // Every pending contribution came from past arrivals; zeroing the
        // ring forgets them all, which is exactly the operating point.
        self.pending.fill(0.0);
    }
}

/// The scatter kernel shared by [`HeatMatrixModel`] and [`HeatMatrixLanes`]:
/// accumulates one lane's nonzero power deviations into its pending ring.
#[inline(always)]
fn scatter_lane(
    resp_scatter: &[f64],
    baseline_powers: &[Power],
    pending: &mut [f64],
    head: usize,
    n: usize,
    lags: usize,
    powers: &[Power],
) {
    for (source, (&p, &b)) in powers.iter().zip(baseline_powers).enumerate() {
        let dw = (p - b).as_watts();
        if dw == 0.0 {
            continue;
        }
        let resp = &resp_scatter[source * lags * n..(source + 1) * lags * n];
        for (lag, row) in resp.chunks_exact(n).enumerate() {
            let slot = (head + lag) % lags;
            let pending = &mut pending[slot * n..(slot + 1) * n];
            for (acc, &r) in pending.iter_mut().zip(row) {
                *acc += r * dw;
            }
        }
    }
}

/// A batch of [`HeatMatrixModel`] instances advanced in lockstep around a
/// shared operating point.
///
/// All lanes share one transposed response table and baseline (read-only,
/// so the table stays hot in cache across the whole batch), while each lane
/// owns its slice of one contiguous pending ring. Stepping the batch runs
/// the scatter kernel lane after lane as a tight loop over contiguous
/// memory — the batch-engine form of the `matrix.scatter` hot path, emitted
/// under the `batch.scatter` telemetry span.
///
/// Each lane's predictions are bit-identical to a standalone
/// [`HeatMatrixModel`] fed the same power sequence: both run
/// the same scatter kernel, and lanes never interact.
#[derive(Debug, Clone)]
pub struct HeatMatrixLanes {
    template: HeatMatrixModel,
    lanes: usize,
    /// Concatenated per-lane pending rings, `lanes × lags × servers`.
    pending: Vec<f64>,
    /// Shared ring position (lanes advance in lockstep).
    head: usize,
}

impl HeatMatrixLanes {
    /// Creates `lanes` copies of `model`'s operating point, each starting
    /// from the model's *current* convolution state.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(model: &HeatMatrixModel, lanes: usize) -> Self {
        assert!(lanes > 0, "at least one lane required");
        let ring = model.pending.len();
        let mut pending = Vec::with_capacity(lanes * ring);
        for _ in 0..lanes {
            pending.extend_from_slice(&model.pending);
        }
        HeatMatrixLanes {
            template: model.clone(),
            lanes,
            pending,
            head: model.head,
        }
    }

    /// Number of lanes in the batch.
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Number of servers per lane.
    pub fn server_count(&self) -> usize {
        self.template.matrix.server_count()
    }

    /// Advances every lane one lag step. `powers` holds one power per server
    /// per lane (lane-major, `lanes × servers`); predicted inlet
    /// temperatures (°C) are written to `out` in the same layout.
    /// Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `powers` or `out` length differs from
    /// `lane_count() × server_count()`.
    pub fn step_all(&mut self, powers: &[Power], out: &mut [f64]) {
        let n = self.server_count();
        let lags = self.template.matrix.lag_count();
        let total = self.lanes * n;
        assert_eq!(powers.len(), total, "one power per server per lane");
        assert_eq!(out.len(), total, "one output cell per server per lane");

        let started = hbm_telemetry::timing::start();
        let ring = lags * n;
        for lane in 0..self.lanes {
            scatter_lane(
                &self.template.resp_scatter,
                &self.template.baseline_powers,
                &mut self.pending[lane * ring..(lane + 1) * ring],
                self.head,
                n,
                lags,
                &powers[lane * n..(lane + 1) * n],
            );
        }
        hbm_telemetry::timing::record_span_units("batch.scatter", started, self.lanes as u64);

        let cur = self.head * n;
        for lane in 0..self.lanes {
            let pending = &mut self.pending[lane * ring..(lane + 1) * ring];
            let current = &pending[cur..cur + n];
            let out = &mut out[lane * n..(lane + 1) * n];
            for ((o, &dt), &base) in out
                .iter_mut()
                .zip(current)
                .zip(&self.template.baseline_inlets)
            {
                *o = (base + dt).max(self.template.supply_celsius);
            }
            pending[cur..cur + n].fill(0.0);
        }
        self.head = (self.head + 1) % lags;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::TemperatureDelta;

    /// Small layout so extraction stays fast in unit tests. The baseline
    /// keeps the plant below capacity (the linear regime matrices are
    /// extracted in).
    fn small_config() -> CfdConfig {
        CfdConfig {
            racks: 1,
            servers_per_rack: 4,
            cooling: crate::CoolingSystem {
                capacity: Power::from_kilowatts(0.8),
                supply: Temperature::from_celsius(27.0),
                derate_onset: Temperature::from_celsius(33.0),
                derate_per_kelvin: 0.05,
                min_capacity_fraction: 0.65,
            },
            per_server_flow_kg_s: 0.018,
            leakage_fraction: 0.06,
            cell_mass_kg: 0.5,
            plenum_mass_kg: 1.0,
        }
    }

    fn small_baseline() -> Vec<Power> {
        vec![Power::from_watts(150.0); 4]
    }

    fn small_matrix() -> HeatMatrix {
        extract_heat_matrix(
            &small_config(),
            &small_baseline(),
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Duration::from_minutes(1.0),
        )
    }

    #[test]
    fn matrix_dimensions() {
        let m = small_matrix();
        assert_eq!(m.server_count(), 4);
        assert_eq!(m.lag_count(), 5);
        assert_eq!(m.lag_step(), Duration::from_minutes(1.0));
    }

    #[test]
    fn self_response_is_positive() {
        let m = small_matrix();
        for s in 0..4 {
            assert!(
                m.total_response(s, s) > 0.0,
                "server {s} must warm its own inlet through leakage"
            );
        }
    }

    #[test]
    fn cross_response_exists_under_shared_cooling() {
        let m = small_matrix();
        // A spike at the bottom server must affect the top server.
        assert!(m.total_response(0, 3) > 0.0);
    }

    #[test]
    fn impulse_response_decays_within_window() {
        let m = small_matrix();
        for s in 0..4 {
            let early: f64 = (0..2).map(|l| m.response(s, s, l)).sum();
            let late: f64 = (3..5).map(|l| m.response(s, s, l)).sum();
            assert!(
                late <= early + 1e-9,
                "response should not keep growing: early {early} late {late}"
            );
        }
    }

    #[test]
    fn model_matches_cfd_on_load_transient() {
        // Fig. 7(a): the matrix model tracks the CFD dynamics in the regime
        // it was extracted in.
        let config = small_config();
        let baseline = small_baseline();
        let mut matrix_model = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Duration::from_minutes(1.0),
        );
        let mut cfd = CfdModel::new(config);
        cfd.run_to_steady_state(&baseline, 0.002, Duration::from_minutes(60.0));

        // 3-minute load excursion on server 1, then recovery.
        let mut excursion = baseline.clone();
        excursion[1] = Power::from_watts(290.0);
        let mut errors = Vec::new();
        for k in 0..8 {
            let powers = if k < 3 { &excursion } else { &baseline };
            let predicted = matrix_model.step_mean(powers);
            cfd.step(powers, Duration::from_minutes(1.0));
            errors.push((predicted - cfd.mean_inlet()).abs().as_celsius());
        }
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt();
        assert!(rmse < 0.3, "matrix-model RMSE vs CFD too high: {rmse} K");
    }

    #[test]
    fn superposition_is_linear() {
        let config = small_config();
        let baseline = small_baseline();
        let build = || {
            HeatMatrixModel::from_cfd(
                &config,
                &baseline,
                Power::from_watts(120.0),
                Duration::from_minutes(5.0),
                Duration::from_minutes(1.0),
            )
        };
        let mut single = build();
        let mut double = build();
        let mut p1 = baseline.clone();
        p1[0] += Power::from_watts(100.0);
        let mut p2 = baseline.clone();
        p2[0] += Power::from_watts(200.0);
        let t1 = single.step_mean(&p1);
        let t2 = double.step_mean(&p2);
        let base = single.baseline_inlets.iter().sum::<f64>() / 4.0;
        let d1 = t1.as_celsius() - base;
        let d2 = t2.as_celsius() - base;
        assert!(
            (d2 - 2.0 * d1).abs() < 1e-9,
            "doubled deviation must double the predicted rise: {d1} vs {d2}"
        );
    }

    #[test]
    fn second_extraction_with_identical_config_hits_the_cache() {
        let config = small_config();
        let baseline = small_baseline();
        // Distinct spike so this test owns its cache entry regardless of
        // what other tests in the process have extracted.
        let spike = Power::from_watts(97.0);
        let window = Duration::from_minutes(5.0);
        let lag = Duration::from_minutes(1.0);

        let first = extract_heat_matrix(&config, &baseline, spike, window, lag);
        let before = heat_matrix_cache_stats();
        let started = std::time::Instant::now();
        let second = extract_heat_matrix(&config, &baseline, spike, window, lag);
        let elapsed = started.elapsed();
        let after = heat_matrix_cache_stats();

        assert_eq!(first, second, "cached result must be identical");
        assert_eq!(
            after.misses, before.misses,
            "second call must not recompute"
        );
        assert_eq!(after.hits, before.hits + 1);
        assert!(
            elapsed < std::time::Duration::from_millis(1),
            "cache hit took {elapsed:?}, expected < 1 ms"
        );
    }

    #[test]
    fn different_baselines_get_different_cache_entries() {
        let config = small_config();
        let spike = Power::from_watts(103.0);
        let window = Duration::from_minutes(5.0);
        let lag = Duration::from_minutes(1.0);
        let a = extract_heat_matrix(&config, &[Power::from_watts(140.0); 4], spike, window, lag);
        let before = heat_matrix_cache_stats();
        let b = extract_heat_matrix(&config, &[Power::from_watts(160.0); 4], spike, window, lag);
        let after = heat_matrix_cache_stats();
        assert_eq!(after.misses, before.misses + 1, "new baseline must compute");
        assert_ne!(a, b, "different operating points give different matrices");
    }

    #[test]
    fn from_cfd_reuses_the_extraction_cache() {
        let config = small_config();
        let baseline = small_baseline();
        let spike = Power::from_watts(111.0);
        let window = Duration::from_minutes(5.0);
        let lag = Duration::from_minutes(1.0);
        let first = HeatMatrixModel::from_cfd(&config, &baseline, spike, window, lag);
        let before = heat_matrix_cache_stats();
        let second = HeatMatrixModel::from_cfd(&config, &baseline, spike, window, lag);
        let after = heat_matrix_cache_stats();
        assert_eq!(after.misses, before.misses);
        assert_eq!(first, second);
    }

    #[test]
    fn cache_clear_forces_recomputation() {
        let config = small_config();
        let baseline = small_baseline();
        let spike = Power::from_watts(119.0);
        let window = Duration::from_minutes(5.0);
        let lag = Duration::from_minutes(1.0);
        let a = extract_heat_matrix(&config, &baseline, spike, window, lag);
        clear_heat_matrix_cache();
        let before = heat_matrix_cache_stats();
        let b = extract_heat_matrix(&config, &baseline, spike, window, lag);
        let after = heat_matrix_cache_stats();
        assert_eq!(after.misses, before.misses + 1, "cleared entry recomputes");
        assert_eq!(a, b, "recomputation is deterministic");
    }

    #[test]
    fn step_into_matches_step() {
        let config = small_config();
        let baseline = small_baseline();
        let build = || {
            HeatMatrixModel::from_cfd(
                &config,
                &baseline,
                Power::from_watts(120.0),
                Duration::from_minutes(5.0),
                Duration::from_minutes(1.0),
            )
        };
        let mut a = build();
        let mut b = build();
        let mut out = vec![0.0; 4];
        for k in 0..12u32 {
            let mut powers = baseline.clone();
            powers[(k % 4) as usize] += Power::from_watts(f64::from(k) * 17.0);
            let temps = a.step(&powers);
            b.step_into(&powers, &mut out);
            for (t, &o) in temps.iter().zip(&out) {
                assert_eq!(t.as_celsius(), o, "wrapper and step_into share the kernel");
            }
        }
    }

    #[test]
    fn step_mean_matches_mean_of_step() {
        let config = small_config();
        let baseline = small_baseline();
        let build = || {
            HeatMatrixModel::from_cfd(
                &config,
                &baseline,
                Power::from_watts(120.0),
                Duration::from_minutes(5.0),
                Duration::from_minutes(1.0),
            )
        };
        let mut a = build();
        let mut b = build();
        let mut powers = baseline.clone();
        powers[2] += Power::from_watts(250.0);
        for _ in 0..7 {
            let inlets = a.step(&powers);
            let mean: f64 =
                inlets.iter().map(|t| t.as_celsius()).sum::<f64>() / inlets.len() as f64;
            let direct = b.step_mean(&powers).as_celsius();
            assert!(
                (mean - direct).abs() < 1e-12,
                "step_mean must average the same prediction: {mean} vs {direct}"
            );
        }
    }

    #[test]
    fn excursion_retires_exactly_after_lag_window() {
        // Once an arrival's whole response column has been read out, the
        // ring slot it occupied has been zeroed and the prediction returns
        // to the baseline *exactly* — no residue wraps around.
        let config = small_config();
        let baseline = small_baseline();
        let mut model = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Duration::from_minutes(1.0),
        );
        let lags = model.matrix().lag_count();
        let mut hot = baseline.clone();
        hot[0] += Power::from_watts(300.0);
        model.step(&hot);
        let mut out = vec![0.0; 4];
        for _ in 0..lags - 1 {
            model.step_into(&baseline, &mut out);
        }
        // The excursion's last lag has now been consumed.
        model.step_into(&baseline, &mut out);
        for (o, &base) in out.iter().zip(model.baseline_inlets_celsius()) {
            assert_eq!(
                *o,
                base.max(model.supply_celsius()),
                "expired excursion must leave no residue"
            );
        }
    }

    #[test]
    fn lanes_match_scalar_models_bitwise() {
        let config = small_config();
        let baseline = small_baseline();
        let model = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Duration::from_minutes(1.0),
        );
        let lanes_n = 3;
        let mut lanes = HeatMatrixLanes::new(&model, lanes_n);
        let mut scalars = vec![model.clone(); lanes_n];
        assert_eq!(lanes.lane_count(), lanes_n);
        assert_eq!(lanes.server_count(), 4);

        let n = 4;
        let mut powers = vec![Power::ZERO; lanes_n * n];
        let mut out = vec![0.0; lanes_n * n];
        let mut scalar_out = vec![0.0; n];
        for k in 0..12u32 {
            for lane in 0..lanes_n {
                for s in 0..n {
                    let bump = f64::from(k * (lane as u32 + 1) % 7) * 23.0;
                    powers[lane * n + s] = baseline[s] + Power::from_watts(bump);
                }
            }
            lanes.step_all(&powers, &mut out);
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                scalar.step_into(&powers[lane * n..(lane + 1) * n], &mut scalar_out);
                for s in 0..n {
                    assert_eq!(
                        out[lane * n + s].to_bits(),
                        scalar_out[s].to_bits(),
                        "lane {lane} server {s} diverged at slot {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_returns_to_baseline() {
        let config = small_config();
        let baseline = small_baseline();
        let mut model = HeatMatrixModel::from_cfd(
            &config,
            &baseline,
            Power::from_watts(120.0),
            Duration::from_minutes(5.0),
            Duration::from_minutes(1.0),
        );
        let mut hot = baseline.clone();
        hot[2] += Power::from_watts(400.0);
        model.step(&hot);
        model.reset();
        let t = model.step_mean(&baseline);
        let base = model.baseline_inlets.iter().sum::<f64>() / 4.0;
        assert!(
            (t.as_celsius() - base).abs() < 1e-9,
            "after reset baseline powers must predict baseline inlets"
        );
        let _ = TemperatureDelta::ZERO;
    }
}
