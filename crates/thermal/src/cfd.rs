//! Coarse finite-volume ("CFD-lite") model of the containerized colocation.
//!
//! This plays the role of the paper's transient CFD analysis: a physically
//! structured air-loop model of the Vertiv SmartMod-class container with two
//! racks of twenty servers, hot/cold-aisle containment, and a capacity-
//! limited AC. It resolves per-server inlet temperatures, advection delays
//! up the aisles, and containment leakage — the features the paper's
//! heat-distribution matrix is extracted from — while remaining fast enough
//! to run minutes-long transients in milliseconds.
//!
//! # Air loop
//!
//! ```text
//!            ┌──────────── return plenum ◄──────────┐
//!            ▼                                       │ (1-λ)·m per server
//!           AC  (removes ≤ effective capacity)   hot aisle cells (rise)
//!            │                                       ▲
//!            ▼                                       │
//!        supply duct ──► cold aisle cells ──► server cells (heat +P_s)
//!                          ▲    (rise)               │
//!                          └──── λ·m leakage ◄───────┘
//! ```
//!
//! Each server draws `m` kg/s from the cold-aisle cell at its height, heats
//! it by `P_s/(m·c_p)`, and exhausts it: a fraction `λ` leaks back into the
//! cold aisle at the same height (imperfect containment), the rest joins the
//! hot aisle. Mass is conserved exactly; energy is integrated explicitly
//! with a sub-step safely below the smallest cell residence time.

use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Power, Temperature, TemperatureDelta};

use crate::CoolingSystem;

/// Specific heat of air, J/(kg·K).
const CP_AIR: f64 = 1005.0;

/// Geometry and airflow configuration of the CFD-lite model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfdConfig {
    /// Number of racks (columns of servers).
    pub racks: usize,
    /// Servers per rack, stacked bottom (0) to top.
    pub servers_per_rack: usize,
    /// Cooling plant.
    pub cooling: CoolingSystem,
    /// Airflow through each server, kg/s.
    pub per_server_flow_kg_s: f64,
    /// Fraction of each server's exhaust that leaks back into the cold aisle
    /// at its own height (containment imperfection).
    pub leakage_fraction: f64,
    /// Air mass of each aisle cell, kg.
    pub cell_mass_kg: f64,
    /// Air mass of the supply duct and return plenum, kg.
    pub plenum_mass_kg: f64,
}

impl CfdConfig {
    /// The paper's two-rack, forty-server, 8 kW container.
    ///
    /// Per-server flow is sized for the canonical 10+ K outlet rise at the
    /// 200 W server rating.
    pub fn paper_default() -> Self {
        CfdConfig {
            racks: 2,
            servers_per_rack: 20,
            cooling: CoolingSystem::paper_default(),
            per_server_flow_kg_s: 0.018,
            leakage_fraction: 0.06,
            cell_mass_kg: 0.5,
            plenum_mass_kg: 4.0,
        }
    }

    /// The 14-server single-rack prototype of Appendix A (3 kW cooling).
    pub fn prototype() -> Self {
        CfdConfig {
            racks: 1,
            servers_per_rack: 14,
            cooling: CoolingSystem::prototype(),
            per_server_flow_kg_s: 0.018,
            leakage_fraction: 0.08,
            cell_mass_kg: 0.5,
            plenum_mass_kg: 2.0,
        }
    }

    /// Total number of servers.
    pub fn server_count(&self) -> usize {
        self.racks * self.servers_per_rack
    }

    /// Total airflow reaching the AC, kg/s.
    pub fn ac_flow_kg_s(&self) -> f64 {
        self.server_count() as f64 * self.per_server_flow_kg_s * (1.0 - self.leakage_fraction)
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks == 0 || self.servers_per_rack == 0 {
            return Err("layout must contain at least one server".into());
        }
        self.cooling.validate()?;
        if self.per_server_flow_kg_s <= 0.0 || !self.per_server_flow_kg_s.is_finite() {
            return Err("per-server flow must be positive".into());
        }
        if !(0.0..0.5).contains(&self.leakage_fraction) {
            return Err("leakage fraction must be in [0, 0.5)".into());
        }
        if self.cell_mass_kg <= 0.0 || self.plenum_mass_kg <= 0.0 {
            return Err("cell masses must be positive".into());
        }
        Ok(())
    }
}

/// Transient state of the CFD-lite model.
///
/// # Examples
///
/// ```
/// use hbm_thermal::{CfdConfig, CfdModel};
/// use hbm_units::{Duration, Power};
///
/// let config = CfdConfig::paper_default();
/// let mut cfd = CfdModel::new(config);
/// let powers = vec![Power::from_watts(150.0); config.server_count()];
/// cfd.step(&powers, Duration::from_minutes(5.0));
/// // Below capacity: inlets stay essentially at the 27 °C supply setpoint.
/// assert!(cfd.mean_inlet().as_celsius() < 28.5);
/// ```
#[derive(Debug, Clone)]
pub struct CfdModel {
    config: CfdConfig,
    /// Cold-aisle cell temperatures, rack-major
    /// (`rack * servers_per_rack + height`), °C.
    cold: Vec<f64>,
    /// Hot-aisle cell temperatures, rack-major, °C.
    hot: Vec<f64>,
    /// Back buffers swapped with the live state every sub-step, so
    /// integration never allocates.
    cold_back: Vec<f64>,
    hot_back: Vec<f64>,
    /// Supply duct temperature, °C.
    duct: f64,
    /// Return plenum temperature, °C.
    ret: f64,
    /// Integration sub-step, seconds.
    dt: f64,
}

impl PartialEq for CfdModel {
    /// Compares the physical state only; the back buffers are scratch.
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.cold == other.cold
            && self.hot == other.hot
            && self.duct == other.duct
            && self.ret == other.ret
            && self.dt == other.dt
    }
}

impl CfdModel {
    /// Creates a model at thermal equilibrium (everything at the supply
    /// setpoint).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`CfdConfig::validate`].
    pub fn new(config: CfdConfig) -> Self {
        config.validate().expect("invalid CFD configuration");
        let sup = config.cooling.supply.as_celsius();
        // Stability: sub-step below the smallest residence time. The largest
        // per-cell throughflow is the bottom cold cell of a rack.
        let max_flow = config.servers_per_rack as f64
            * config.per_server_flow_kg_s
            * (1.0 - config.leakage_fraction)
            + config.per_server_flow_kg_s;
        let dt = (0.4 * config.cell_mass_kg / max_flow).min(0.5);
        let cells = config.server_count();
        CfdModel {
            cold: vec![sup; cells],
            hot: vec![sup; cells],
            cold_back: vec![sup; cells],
            hot_back: vec![sup; cells],
            duct: sup,
            ret: sup,
            dt,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CfdConfig {
        &self.config
    }

    /// Inlet temperature of server `s` (rack-major indexing:
    /// `s = rack * servers_per_rack + height`).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn inlet(&self, s: usize) -> Temperature {
        let (r, h) = self.locate(s);
        Temperature::from_celsius(self.cold[r * self.config.servers_per_rack + h])
    }

    /// Outlet temperature of server `s` under the given power.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn outlet(&self, s: usize, power: Power) -> Temperature {
        let inlet = self.inlet(s);
        inlet
            + TemperatureDelta::from_celsius(
                power.as_watts() / (self.config.per_server_flow_kg_s * CP_AIR),
            )
    }

    /// Mean server inlet temperature (the paper's headline thermal metric).
    pub fn mean_inlet(&self) -> Temperature {
        let n = self.config.server_count() as f64;
        let sum: f64 = self.cold.iter().sum();
        Temperature::from_celsius(sum / n)
    }

    /// Hottest server inlet.
    pub fn max_inlet(&self) -> Temperature {
        let m = self.cold.iter().cloned().fold(f64::MIN, f64::max);
        Temperature::from_celsius(m)
    }

    /// Return-air temperature at the AC intake.
    pub fn return_air(&self) -> Temperature {
        Temperature::from_celsius(self.ret)
    }

    /// All inlet temperatures, rack-major.
    pub fn inlets(&self) -> Vec<Temperature> {
        self.cold
            .iter()
            .map(|&c| Temperature::from_celsius(c))
            .collect()
    }

    /// All inlet temperatures in °C, rack-major, without allocating
    /// (the cold-aisle cells *are* the inlets).
    pub(crate) fn inlet_celsius(&self) -> &[f64] {
        &self.cold
    }

    /// Advances the model by `span` with constant per-server powers.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the server count, any power is
    /// negative, or `span` is non-positive.
    pub fn step(&mut self, powers: &[Power], span: Duration) {
        assert_eq!(
            powers.len(),
            self.config.server_count(),
            "one power per server required"
        );
        assert!(
            powers.iter().all(|&p| p >= Power::ZERO),
            "server powers must be non-negative"
        );
        assert!(span > Duration::ZERO, "span must be positive");
        let started = hbm_telemetry::timing::start();
        let mut substeps: u64 = 0;
        let mut remaining = span.as_seconds();
        while remaining > 0.0 {
            let h = remaining.min(self.dt);
            self.substep(powers, h);
            substeps += 1;
            remaining -= h;
        }
        hbm_telemetry::timing::record_span_units("cfd.substep", started, substeps);
    }

    /// Runs with constant powers until the mean inlet changes by less than
    /// `tol_kelvin` over a minute (or `max` elapses); returns elapsed time.
    pub fn run_to_steady_state(
        &mut self,
        powers: &[Power],
        tol_kelvin: f64,
        max: Duration,
    ) -> Duration {
        let mut elapsed = Duration::ZERO;
        let minute = Duration::from_minutes(1.0);
        let mut prev = self.mean_inlet();
        while elapsed < max {
            self.step(powers, minute);
            elapsed += minute;
            let now = self.mean_inlet();
            if (now - prev).abs().as_celsius() < tol_kelvin {
                break;
            }
            prev = now;
        }
        elapsed
    }

    fn locate(&self, s: usize) -> (usize, usize) {
        assert!(s < self.config.server_count(), "server index out of range");
        (
            s / self.config.servers_per_rack,
            s % self.config.servers_per_rack,
        )
    }

    fn substep(&mut self, powers: &[Power], h: f64) {
        let cfg = &self.config;
        let m = cfg.per_server_flow_kg_s;
        let lam = cfg.leakage_fraction;
        let keep = 1.0 - lam;
        let n_h = cfg.servers_per_rack;
        let rack_supply = n_h as f64 * m * keep; // duct inflow per rack
        let cell_mass = cfg.cell_mass_kg;
        // Loop invariants hoisted out of the cell loop; each matches the
        // per-cell expression of the original nested-Vec implementation
        // bit for bit (same operands, same association).
        let m_cp = m * CP_AIR;
        let lam_m = lam * m;
        let keep_m = keep * m;
        let h_over_mass = |d: f64| h * d / cell_mass;

        // AC: cool the return air toward the setpoint, limited by effective
        // capacity (derated by the current mean inlet).
        let ac_flow = cfg.ac_flow_kg_s();
        let capacity = cfg.cooling.effective_capacity(self.mean_inlet());
        let sup = cfg.cooling.supply.as_celsius();
        let q_needed = ac_flow * CP_AIR * (self.ret - sup).max(0.0);
        let q = q_needed.min(capacity.as_watts());
        let ac_out = self.ret - q / (ac_flow * CP_AIR);

        // Supply duct.
        let duct_next = self.duct + h * ac_flow / cfg.plenum_mass_kg * (ac_out - self.duct);

        let duct = self.duct;
        let cold = &self.cold;
        let hot = &self.hot;
        let cold_next = &mut self.cold_back;
        let hot_next = &mut self.hot_back;
        let mut return_inflow_temp = 0.0;

        for r in 0..cfg.racks {
            // Upward flow in the cold aisle above height i:
            //   f_c(i) = (n_h - 1 - i) * m * keep
            // and in the hot aisle: f_h(i) = (i + 1) * m * keep.
            let base = r * n_h;
            for i in 0..n_h {
                let s = base + i;
                let p = powers[s].as_watts();
                let t_in = cold[s];
                let t_out = t_in + p / m_cp;

                // Cold cell i: inflow from below (duct for i = 0) plus local
                // leakage of this server's exhaust; outflow to the server
                // and upward.
                let below_t = if i == 0 { duct } else { cold[s - 1] };
                let inflow_below = if i == 0 {
                    rack_supply
                } else {
                    (n_h - i) as f64 * m * keep
                };
                let d_cold = inflow_below * (below_t - t_in) + lam_m * (t_out - t_in);
                cold_next[s] = t_in + h_over_mass(d_cold);

                // Hot cell i: server exhaust plus flow from below.
                let t_hot = hot[s];
                let hot_below_t = if i == 0 { t_hot } else { hot[s - 1] };
                let hot_inflow_below = if i == 0 { 0.0 } else { i as f64 * m * keep };
                let d_hot = keep_m * (t_out - t_hot) + hot_inflow_below * (hot_below_t - t_hot);
                hot_next[s] = t_hot + h_over_mass(d_hot);
            }
            return_inflow_temp += hot[base + n_h - 1];
        }

        // Return plenum mixes the top-of-hot-aisle flows of all racks.
        let mean_top = return_inflow_temp / cfg.racks as f64;
        let ret_next = self.ret + h * ac_flow / cfg.plenum_mass_kg * (mean_top - self.ret);

        std::mem::swap(&mut self.cold, &mut self.cold_back);
        std::mem::swap(&mut self.hot, &mut self.hot_back);
        self.duct = duct_next;
        self.ret = ret_next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(config: &CfdConfig, watts: f64) -> Vec<Power> {
        vec![Power::from_watts(watts); config.server_count()]
    }

    #[test]
    fn equilibrium_below_capacity() {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        // 150 W × 40 = 6 kW < 8 kW capacity.
        let powers = uniform(&config, 150.0);
        cfd.run_to_steady_state(&powers, 0.005, Duration::from_minutes(60.0));
        let mean = cfd.mean_inlet();
        assert!(
            mean.as_celsius() < 28.5,
            "inlets should sit near the setpoint, got {mean}"
        );
    }

    #[test]
    fn outlet_rise_is_ten_plus_kelvin_at_rating() {
        // Eqn. (1) of the paper: outlet is typically 10+ K above inlet.
        let config = CfdConfig::paper_default();
        let cfd = CfdModel::new(config);
        let rise = cfd.outlet(0, Power::from_watts(200.0)) - cfd.inlet(0);
        assert!(
            (10.0..14.0).contains(&rise.as_celsius()),
            "outlet rise {rise} out of expected band"
        );
    }

    #[test]
    fn overload_heats_the_inlets() {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        // 240 W × 40 = 9.6 kW > 8 kW capacity.
        let powers = uniform(&config, 240.0);
        cfd.step(&powers, Duration::from_minutes(6.0));
        assert!(
            cfd.mean_inlet() > Temperature::from_celsius(30.0),
            "mean inlet {} should have risen well above setpoint",
            cfd.mean_inlet()
        );
    }

    #[test]
    fn top_servers_run_warmer_than_bottom() {
        // Leakage at each height accumulates up the cold aisle.
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        let powers = uniform(&config, 190.0);
        cfd.run_to_steady_state(&powers, 0.005, Duration::from_minutes(30.0));
        let bottom = cfd.inlet(0);
        let top = cfd.inlet(config.servers_per_rack - 1);
        assert!(
            top > bottom,
            "top inlet {top} should exceed bottom inlet {bottom}"
        );
    }

    #[test]
    fn hot_spike_at_one_server_raises_other_inlets() {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        let base = uniform(&config, 195.0); // ~7.8 kW, near capacity
        cfd.run_to_steady_state(&base, 0.005, Duration::from_minutes(30.0));
        let before = cfd.inlet(30);
        let mut spiked = base.clone();
        spiked[5] = Power::from_watts(600.0); // push past capacity
        cfd.step(&spiked, Duration::from_minutes(5.0));
        let after = cfd.inlet(30);
        assert!(
            after > before + TemperatureDelta::from_celsius(0.2),
            "shared cooling must couple servers: {before} → {after}"
        );
    }

    #[test]
    fn recovers_after_overload_clears() {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        cfd.step(&uniform(&config, 240.0), Duration::from_minutes(3.0));
        assert!(cfd.mean_inlet() > Temperature::from_celsius(29.0));
        cfd.step(&uniform(&config, 120.0), Duration::from_minutes(15.0));
        assert!(
            cfd.mean_inlet() < Temperature::from_celsius(28.0),
            "should pull back toward setpoint, at {}",
            cfd.mean_inlet()
        );
    }

    #[test]
    fn temperatures_stay_finite_and_above_supply() {
        // With positive powers and a bounded AC, no temperature should ever
        // go NaN/infinite or below the supply setpoint minus epsilon, even
        // under a sustained severe overload (the PDU would power off at
        // 45 °C long before this in the full simulator).
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        let powers = uniform(&config, 250.0);
        cfd.step(&powers, Duration::from_minutes(8.0));
        for t in cfd.inlets() {
            assert!(t.is_finite());
            assert!(t.as_celsius() >= config.cooling.supply.as_celsius() - 0.01);
            assert!(t.as_celsius() < 150.0);
        }
    }

    #[test]
    fn prototype_layout_works() {
        let config = CfdConfig::prototype();
        let mut cfd = CfdModel::new(config);
        assert_eq!(config.server_count(), 14);
        cfd.step(&uniform(&config, 150.0), Duration::from_minutes(5.0));
        assert!(cfd.mean_inlet().is_finite());
    }

    #[test]
    #[should_panic(expected = "one power per server")]
    fn wrong_power_vector_length_rejected() {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        cfd.step(&[Power::ZERO; 3], Duration::from_minutes(1.0));
    }
}
