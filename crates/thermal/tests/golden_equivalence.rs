//! Equivalence of the flat-buffer thermal kernels with the original
//! nested-`Vec` implementations.
//!
//! The files in `tests/golden/` were generated (via `examples/gen_golden.rs`)
//! from the pre-rewrite implementations that stored CFD state as
//! `Vec<Vec<f64>>` and matrix history as `VecDeque<Vec<f64>>`. The rewritten
//! CFD kernel and the matrix extraction must reproduce every recorded value
//! to 1e-12 over a 100-step trace, so any change to expression order or
//! indexing that perturbs the numerics is caught here.
//!
//! The heat-matrix *model* trace is held to 1e-9 instead: the scatter-on-
//! arrival convolution accumulates contributions in arrival order, while the
//! golden was recorded from the gather kernel summing newest-age-first, so
//! the two agree to rounding rather than bit-for-bit (the tolerance policy
//! is documented in `docs/PERFORMANCE.md`).

use hbm_thermal::{extract_heat_matrix, CfdConfig, CfdModel, CoolingSystem, HeatMatrixModel};
use hbm_units::{Duration, Power, Temperature};

const TOL: f64 = 1e-12;
/// Tolerance for the scatter-kernel model trace (summation order differs
/// from the recorded gather kernel; see module docs).
const MODEL_TOL: f64 = 1e-9;

/// Same dyadic-rational drive pattern as `examples/gen_golden.rs`.
fn pattern_power(server: usize, step: usize) -> Power {
    let phase = (server * 7 + step * 13) % 16;
    Power::from_watts(150.0 + 50.0 * phase as f64 / 16.0)
}

fn small_config() -> CfdConfig {
    CfdConfig {
        racks: 1,
        servers_per_rack: 4,
        cooling: CoolingSystem {
            capacity: Power::from_kilowatts(0.8),
            supply: Temperature::from_celsius(27.0),
            derate_onset: Temperature::from_celsius(33.0),
            derate_per_kelvin: 0.05,
            min_capacity_fraction: 0.65,
        },
        per_server_flow_kg_s: 0.018,
        leakage_fraction: 0.06,
        cell_mass_kg: 0.5,
        plenum_mass_kg: 1.0,
    }
}

/// Parses a golden file: `#` lines are comments, every other line one f64.
fn parse_golden(text: &str) -> Vec<f64> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse::<f64>().expect("malformed golden value"))
        .collect()
}

fn check_cfd_trace(config: CfdConfig, golden: &str, label: &str) {
    let golden = parse_golden(golden);
    let n = config.server_count();
    assert_eq!(golden.len(), n * 100, "{label}: golden trace length");
    let mut cfd = CfdModel::new(config);
    let mut idx = 0;
    for k in 0..100 {
        let powers: Vec<Power> = (0..n).map(|s| pattern_power(s, k)).collect();
        cfd.step(&powers, Duration::from_minutes(0.5));
        for (s, t) in cfd.inlets().iter().enumerate() {
            let want = golden[idx];
            let got = t.as_celsius();
            assert!(
                (got - want).abs() <= TOL,
                "{label}: step {k} server {s}: got {got:.17e}, golden {want:.17e}, \
                 diff {:.3e}",
                (got - want).abs()
            );
            idx += 1;
        }
    }
}

#[test]
fn cfd_matches_nested_vec_golden_paper_default() {
    check_cfd_trace(
        CfdConfig::paper_default(),
        include_str!("golden/cfd_paper_default.txt"),
        "paper_default",
    );
}

#[test]
fn cfd_matches_nested_vec_golden_prototype() {
    check_cfd_trace(
        CfdConfig::prototype(),
        include_str!("golden/cfd_prototype.txt"),
        "prototype",
    );
}

#[test]
fn matrix_extraction_and_model_match_nested_vec_golden() {
    let golden = parse_golden(include_str!("golden/matrix_small.txt"));
    let config = small_config();
    let baseline = vec![Power::from_watts(150.0); 4];
    let spike = Power::from_watts(120.0);
    let window = Duration::from_minutes(5.0);
    let lag_step = Duration::from_minutes(1.0);

    let matrix = extract_heat_matrix(&config, &baseline, spike, window, lag_step);
    assert_eq!(matrix.lag_count(), 5);
    let n_matrix = 4 * 4 * 5;
    assert_eq!(golden.len(), n_matrix + 4 * 100, "golden trace length");

    let mut idx = 0;
    for s in 0..4 {
        for r in 0..4 {
            for l in 0..5 {
                let want = golden[idx];
                let got = matrix.response(s, r, l);
                assert!(
                    (got - want).abs() <= TOL,
                    "matrix[{s}][{r}][{l}]: got {got:.17e}, golden {want:.17e}"
                );
                idx += 1;
            }
        }
    }

    let mut model = HeatMatrixModel::from_cfd(&config, &baseline, spike, window, lag_step);
    for k in 0..100 {
        let powers: Vec<Power> = (0..4).map(|s| pattern_power(s, k)).collect();
        for (s, t) in model.step(&powers).iter().enumerate() {
            let want = golden[idx];
            let got = t.as_celsius();
            assert!(
                (got - want).abs() <= MODEL_TOL,
                "model step {k} server {s}: got {got:.17e}, golden {want:.17e}"
            );
            idx += 1;
        }
    }
}
