//! Property-based tests of the thermal models.

use hbm_thermal::{CfdConfig, CfdModel, CoolingSystem, ZoneModel};
use hbm_units::{Duration, Power, Temperature};
use proptest::prelude::*;

fn load_sequence() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..12.0f64, 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zone_inlet_never_below_supply_and_always_finite(loads in load_sequence()) {
        let mut zone = ZoneModel::paper_default();
        let supply = zone.cooling().supply;
        for kw in loads {
            let t = zone.step(Power::from_kilowatts(kw), Duration::from_minutes(1.0));
            prop_assert!(t.is_finite());
            prop_assert!(t >= supply);
        }
    }

    #[test]
    fn zone_temperature_monotone_in_load(
        base in 0.0..10.0f64,
        extra in 0.1..3.0f64,
        minutes in 1u32..30,
    ) {
        let mut cool = ZoneModel::paper_default();
        let mut hot = ZoneModel::paper_default();
        for _ in 0..minutes {
            cool.step(Power::from_kilowatts(base), Duration::from_minutes(1.0));
            hot.step(Power::from_kilowatts(base + extra), Duration::from_minutes(1.0));
        }
        prop_assert!(hot.inlet() >= cool.inlet());
    }

    #[test]
    fn zone_below_capacity_stays_at_setpoint(kw in 0.0..7.9f64, minutes in 1u32..60) {
        let mut zone = ZoneModel::paper_default();
        for _ in 0..minutes {
            zone.step(Power::from_kilowatts(kw), Duration::from_minutes(1.0));
        }
        prop_assert_eq!(zone.inlet(), Temperature::from_celsius(27.0));
    }

    #[test]
    fn time_to_reach_monotone_decreasing_in_overload(
        o1 in 0.1..2.0f64,
        extra in 0.05..2.0f64,
    ) {
        let zone = ZoneModel::paper_default();
        let t32 = Temperature::from_celsius(32.0);
        let slow = zone.time_to_reach(t32, Power::from_kilowatts(o1));
        let fast = zone.time_to_reach(t32, Power::from_kilowatts(o1 + extra));
        prop_assert!(fast < slow);
    }

    #[test]
    fn cooling_effective_capacity_bounded_and_monotone(
        t1 in 27.0..60.0f64,
        dt in 0.0..20.0f64,
    ) {
        let ac = CoolingSystem::paper_default();
        let c1 = ac.effective_capacity(Temperature::from_celsius(t1));
        let c2 = ac.effective_capacity(Temperature::from_celsius(t1 + dt));
        prop_assert!(c2 <= c1, "capacity must not grow with room temperature");
        prop_assert!(c1 <= ac.capacity);
        prop_assert!(c2 >= ac.capacity * ac.min_capacity_fraction - Power::from_watts(1e-9));
    }

    #[test]
    fn cfd_inlets_bounded_under_random_loads(
        watts in prop::collection::vec(0.0..400.0f64, 40),
        minutes in 1u32..8,
    ) {
        let config = CfdConfig::paper_default();
        let mut cfd = CfdModel::new(config);
        let powers: Vec<Power> = watts.iter().map(|&w| Power::from_watts(w)).collect();
        cfd.step(&powers, Duration::from_minutes(minutes as f64));
        for t in cfd.inlets() {
            prop_assert!(t.is_finite());
            prop_assert!(t.as_celsius() >= 26.99);
            prop_assert!(t.as_celsius() < 200.0);
        }
    }

    #[test]
    fn cfd_mean_inlet_monotone_in_uniform_load(
        w in 50.0..220.0f64,
        extra in 20.0..120.0f64,
    ) {
        let config = CfdConfig::paper_default();
        let mut low = CfdModel::new(config);
        let mut high = CfdModel::new(config);
        let p_low = vec![Power::from_watts(w); 40];
        let p_high = vec![Power::from_watts(w + extra); 40];
        low.step(&p_low, Duration::from_minutes(6.0));
        high.step(&p_high, Duration::from_minutes(6.0));
        prop_assert!(high.mean_inlet() >= low.mean_inlet());
    }
}
