//! `experiments` — regenerates every table and figure of *Heat Behind the
//! Meter* (HPCA 2021) from the workspace simulator.
//!
//! ```text
//! experiments <id>... [--days N] [--warmup-days N] [--seed N] [--out DIR] [--jobs N]
//!                     [--trace DIR] [--timings] [--timings-json FILE]
//! experiments all [--days N] ...
//! experiments simulate --policy NAME [--days N] [--warmup-days N] [--seed N]
//!                      [--util F] [--attack-load-kw F] [--battery-kwh F]
//!                      [--threshold-c F] [--cap-w F]
//! experiments client [--addr HOST:PORT] <create|list|step|perturb|state|metrics|delete> ...
//! experiments whatif --policy NAME [--fork-at SLOT] [--slots N] [--variant key=value[,...]]...
//! experiments surrogate <fit|validate|sweep> --model FILE [...]
//! ```
//!
//! Each experiment prints a summary table and writes the full data series
//! to `<out>/<id>.csv`. `--days` shortens the measured horizon (the paper
//! uses a year; smoke runs are fine with 30–60 days).
//!
//! `simulate` runs a single declarative scenario through the shared
//! [`hbm_core::scenario`] code path and prints one flat-JSON metrics line —
//! byte-identical to the body `hbm-serve` returns for the same
//! configuration (see `docs/SERVICE.md`).
//!
//! `client` drives a running `hbm-serve` daemon's sessionful experiment
//! API over TCP — create, step, perturb, inspect, and delete long-lived
//! experiments without writing HTTP by hand (see [`client`]).
//!
//! `whatif` forks one scenario at a chosen slot into a control branch
//! plus per-`--variant` branches ([`hbm_core::StateTree`]) and prints a
//! lockstep comparison — where the futures diverge and how their
//! outcomes differ — without re-simulating the shared prefix (see
//! [`whatif`]).
//!
//! `surrogate` fits, validates, and error-sweeps the polynomial
//! surrogate tier for heat-matrix extraction (see [`surrogate_cmd`] and
//! `docs/SURROGATE.md`); the fitted artifact plugs into `hbm-serve
//! --surrogate`.
//!
//! `--jobs N` runs independent experiments on up to `N` threads (0 = one
//! per core); sweeps inside an experiment parallelize too, all drawing
//! from the same thread budget. Every simulation is seeded per run, and
//! each experiment's console output is buffered and flushed in submission
//! order, so tables stay uninterleaved and CSVs are byte-identical
//! whatever `--jobs` is.
//!
//! `--trace DIR` additionally writes one JSONL telemetry trace per traced
//! run (currently fig8, fig9, and the defense residual detector) plus a
//! `manifest.json` run manifest; `--timings` aggregates wall-clock spans
//! around the hot kernels and prints a report (`--timings-json FILE` also
//! writes them as criterion-shaped JSON). See `docs/TELEMETRY.md`.

mod client;
mod common;
mod figs_attack;
mod figs_defense;
mod figs_extra;
mod figs_infra;
mod figs_perf;
mod figs_sense;
mod surrogate_cmd;
mod whatif;

use common::{Options, Sink};

type Runner = fn(&Options, &mut Sink);

const EXPERIMENTS: &[(&str, Runner)] = &[
    ("table1", figs_infra::table1),
    ("fig5b", figs_infra::fig5b),
    ("fig6b", figs_infra::fig6b),
    ("fig7a", figs_infra::fig7a),
    ("fig7b", figs_infra::fig7b),
    ("fig8", figs_attack::fig8),
    ("fig9", figs_attack::fig9),
    ("fig10", figs_attack::fig10),
    ("fig11a", figs_sense::fig11a),
    ("fig11bc", figs_attack::fig11bc),
    ("fig11d", figs_attack::fig11d),
    ("fig12a", figs_sense::fig12a),
    ("fig12b", figs_sense::fig12b),
    ("fig12c", figs_sense::fig12c),
    ("fig12d", figs_sense::fig12d),
    ("fig12e", figs_sense::fig12e),
    ("fig13a", figs_infra::fig13a),
    ("fig13b", figs_attack::fig13b),
    ("fig14a", figs_infra::fig14a),
    ("fig14b", figs_perf::fig14b),
    ("fig15", figs_perf::fig15),
    ("cost", figs_attack::cost),
    ("defense", figs_defense::defense),
    ("ablation", figs_extra::ablation),
    ("defense_roc", figs_extra::defense_roc),
    ("latency_validation", figs_extra::latency_validation),
    ("placement", figs_extra::placement),
    ("outlet_only", figs_extra::outlet_only),
    ("setpoint", figs_extra::setpoint),
];

fn usage() {
    eprintln!("usage: experiments <id>... | all   [--days N] [--warmup-days N] [--seed N] [--out DIR] [--jobs N] [--trace DIR] [--timings] [--timings-json FILE]");
    eprintln!("       experiments simulate --policy NAME [--days N] [--warmup-days N] [--seed N] [--util F] [--attack-load-kw F] [--battery-kwh F] [--threshold-c F] [--cap-w F]");
    eprintln!("       experiments client [--addr HOST:PORT] <create|list|step|perturb|state|metrics|delete> ...");
    eprintln!("       experiments whatif --policy NAME [--fork-at SLOT] [--slots N] [--variant key=value[,...]]...");
    eprintln!("       experiments surrogate <fit|validate|sweep> --model FILE [...]");
    eprintln!("available experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
}

/// `experiments simulate ...`: one declarative scenario, one flat-JSON
/// metrics line on stdout. The scenario is built, keyed, run, and
/// serialized by [`hbm_core::scenario`] — exactly the code path behind
/// `hbm-serve`'s `POST /v1/simulate`, so the printed line is
/// byte-identical to the served response body for the same configuration.
fn run_simulate(opts: &Options, args: &[String]) -> Result<(), String> {
    let mut scenario = hbm_core::Scenario::new("");
    scenario.days = opts.days;
    scenario.warmup_days = opts.warmup_days;
    scenario.seed = opts.seed;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let mut take_f64 = |name: &str| -> Result<f64, String> {
            take(name)?.parse().map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--policy" => scenario.policy = take("--policy")?,
            "--util" => scenario.utilization = Some(take_f64("--util")?),
            "--attack-load-kw" => scenario.attack_load_kw = Some(take_f64("--attack-load-kw")?),
            "--battery-kwh" => scenario.battery_kwh = Some(take_f64("--battery-kwh")?),
            "--threshold-c" => scenario.threshold_c = Some(take_f64("--threshold-c")?),
            "--cap-w" => scenario.cap_w = Some(take_f64("--cap-w")?),
            other => return Err(format!("unknown simulate argument {other:?}")),
        }
    }
    if scenario.policy.is_empty() {
        return Err("simulate requires --policy NAME".into());
    }
    let report = scenario.run()?;
    println!(
        "{}",
        hbm_core::scenario::metrics_json(&scenario.config_canonical(), &report.metrics)
    );
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (opts, ids) = match Options::parse(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            std::process::exit(2);
        }
    };
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    if ids[0] == "simulate" {
        // Same contract as whatif: simulate prints one JSON report to
        // stdout — it writes no CSVs, runs a single lane, and records no
        // spans, so silently accepting the harness-wide flags would look
        // like they worked. Fail loudly instead.
        const UNSUPPORTED: &[&str] = &["--out", "--jobs", "--trace", "--timings", "--timings-json"];
        if let Some(flag) = raw.iter().find(|a| UNSUPPORTED.contains(&a.as_str())) {
            eprintln!("error: simulate does not support {flag}");
            usage();
            std::process::exit(2);
        }
        if let Err(e) = run_simulate(&opts, &ids[1..]) {
            eprintln!("error: {e}");
            usage();
            std::process::exit(2);
        }
        return;
    }
    if ids[0] == "whatif" {
        // The shared option parser consumes the harness-wide output and
        // parallelism flags, but whatif writes no CSVs, runs serially,
        // and records no spans — silently accepting these would look
        // like they worked. Fail loudly instead (the convention since
        // output I/O errors became fatal).
        const UNSUPPORTED: &[&str] = &["--out", "--jobs", "--trace", "--timings", "--timings-json"];
        if let Some(flag) = raw.iter().find(|a| UNSUPPORTED.contains(&a.as_str())) {
            eprintln!("error: whatif does not support {flag}");
            eprintln!("{}", whatif::USAGE);
            std::process::exit(2);
        }
        if let Err(e) = whatif::run_whatif(&opts, &ids[1..]) {
            eprintln!("error: {e}");
            eprintln!("{}", whatif::USAGE);
            std::process::exit(2);
        }
        return;
    }
    if ids[0] == "surrogate" {
        // Same contract as whatif for flags the subcommand ignores;
        // --timings/--timings-json are honored (fits record spans).
        const UNSUPPORTED: &[&str] = &["--out", "--jobs", "--trace"];
        if let Some(flag) = raw.iter().find(|a| UNSUPPORTED.contains(&a.as_str())) {
            eprintln!("error: surrogate does not support {flag}");
            eprintln!("{}", surrogate_cmd::USAGE);
            std::process::exit(2);
        }
        if opts.timings {
            hbm_telemetry::timing::set_timings_enabled(true);
            for span in ["surrogate.fit", "surrogate.predict", "heat_matrix.extract"] {
                hbm_telemetry::timing::declare_span(span);
            }
        }
        if let Err(e) = surrogate_cmd::run_surrogate(&opts, &ids[1..]) {
            eprintln!("error: {e}");
            eprintln!("{}", surrogate_cmd::USAGE);
            std::process::exit(2);
        }
        if opts.timings {
            println!("\n=== kernel timing report ===");
            println!("{}", hbm_telemetry::timing::render_timing_report());
            if let Some(path) = &opts.timings_json {
                let json = hbm_telemetry::timing::timing_report_bench_json();
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!("  [json] {}", path.display());
            }
        }
        return;
    }
    if ids[0] == "client" {
        if let Err(e) = client::run_client(&opts, &ids[1..]) {
            eprintln!("error: {e}");
            eprintln!("{}", client::USAGE);
            std::process::exit(2);
        }
        return;
    }

    // Expand and validate up front so an unknown id fails before any work.
    let mut runs: Vec<(&str, Runner)> = Vec::new();
    for id in &ids {
        if id == "all" {
            runs.extend(EXPERIMENTS.iter().copied());
            continue;
        }
        match EXPERIMENTS.iter().find(|(name, _)| name == id) {
            Some(&entry) => runs.push(entry),
            None => {
                eprintln!("error: unknown experiment {id:?} (try `experiments` with no args for the list)");
                std::process::exit(2);
            }
        }
    }

    hbm_par::configure_threads(opts.jobs.max(1));
    if opts.timings {
        hbm_telemetry::timing::set_timings_enabled(true);
        // Pre-register the well-known kernel spans so the report always
        // names them, even for experiments that never enter a kernel
        // (e.g. fig9 uses the zone model, not the CFD model).
        for span in [
            "cfd.substep",
            "heat_matrix.convolve",
            "heat_matrix.extract",
            "matrix.scatter",
            "zone.step",
            "sim.step",
            "rl.batch_update",
            "rl.q_update",
            "surrogate.fit",
            "surrogate.predict",
        ] {
            hbm_telemetry::timing::declare_span(span);
        }
    }
    let start = std::time::Instant::now();
    let count = runs.len();
    if opts.jobs <= 1 {
        // Serial path streams each experiment's output as it runs.
        let mut sink = Sink::new();
        for (_, f) in runs {
            f(&opts, &mut sink);
            sink.flush_to_stdout();
        }
    } else {
        // Parallel path: run buffered, then flush whole experiments in
        // submission order so tables never interleave.
        let sinks = hbm_par::par_map(runs, |(_, f)| {
            let mut sink = Sink::new();
            f(&opts, &mut sink);
            sink
        });
        for mut sink in sinks {
            sink.flush_to_stdout();
        }
    }
    if opts.timings {
        println!("\n=== kernel timing report ===");
        println!("{}", hbm_telemetry::timing::render_timing_report());
        if let Some(path) = &opts.timings_json {
            let json = hbm_telemetry::timing::timing_report_bench_json();
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(path, json + "\n") {
                Ok(()) => println!("  [json] {}", path.display()),
                Err(e) => {
                    common::IO_ERRORS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    eprintln!("error: cannot write {}: {e}", path.display());
                }
            }
        }
    }
    write_manifest(&opts, &ids, start.elapsed().as_millis() as u64);
    eprintln!(
        "\n[{count} experiment(s) in {:.1?}, --jobs {}]",
        start.elapsed(),
        opts.jobs
    );
    let io_errors = common::IO_ERRORS.load(std::sync::atomic::Ordering::Relaxed);
    if io_errors > 0 {
        eprintln!("error: {io_errors} output file(s) could not be written");
        std::process::exit(1);
    }
}

/// Emits `manifest.json` alongside the CSVs (and into the trace directory,
/// when tracing) so every run records what produced it.
fn write_manifest(opts: &Options, ids: &[String], wall_clock_ms: u64) {
    let mut manifest = hbm_telemetry::RunManifest::new("experiments", opts.seed);
    manifest.hash_config(&opts.config_canonical(ids));
    manifest
        .param("ids", ids.join("+"))
        .param("days", opts.days.to_string())
        .param("warmup_days", opts.warmup_days.to_string())
        .param("timings", opts.timings.to_string())
        .param("trace", opts.trace.is_some().to_string());
    for (name, version) in [
        ("hbm-experiments", env!("CARGO_PKG_VERSION")),
        ("hbm-core", hbm_core::VERSION),
        ("hbm-telemetry", hbm_telemetry::VERSION),
    ] {
        manifest.crate_version(name, version);
    }
    manifest.jobs = opts.jobs as u64;
    manifest.wall_clock_ms = wall_clock_ms;
    for dir in std::iter::once(&opts.out_dir).chain(opts.trace.as_ref()) {
        if let Err(e) = manifest.write_to_dir(dir) {
            common::IO_ERRORS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            eprintln!("error: cannot write manifest to {}: {e}", dir.display());
        }
    }
}
