//! Attack-evaluation figures: 8, 9, 10, 11b–d, 13b, and the §VI-C cost
//! estimate.

use hbm_battery::BatterySpec;
use hbm_core::{
    AttackAction, AttackPolicy, ColoConfig, CostModel, ForesightedPolicy, MyopicPolicy,
    OneShotPolicy, RandomPolicy, Simulation, SlotRecord,
};
use hbm_units::Power;
use hbm_workload::TraceShape;

use crate::common::{
    heading, run_sims_batch, summary_line, trace_recorder, warmup_sims_batch, write_csv, Options,
    Sink,
};
use crate::outln;

/// Fig. 8: one-shot attack demonstration (30-minute window).
pub fn fig8(opts: &Options, out: &mut Sink) {
    heading(out, "Fig. 8 — one-shot attack demonstration");
    let mut config = ColoConfig::paper_default();
    config.battery = BatterySpec::one_shot();
    config.attack_load = Power::from_kilowatts(3.0);
    let policy = OneShotPolicy::new(Power::from_kilowatts(7.6));
    let mut sim = Simulation::new(config, Box::new(policy), opts.seed);
    if let Some(rec) = trace_recorder(opts, "fig8") {
        sim.set_recorder(rec);
    }
    let (report, records) = sim.run_recorded(3 * 1440);
    drop(sim.take_recorder());
    let trigger = records
        .iter()
        .position(|r| r.attack_load > Power::ZERO)
        .unwrap_or(0);
    let start = trigger.saturating_sub(18);
    let window = &records[start..(start + 30).min(records.len())];
    let mut rows = Vec::new();
    for (i, r) in window.iter().enumerate() {
        rows.push(record_row(i, r));
        if i % 2 == 0 {
            outln!(
                out,
                "  t={i:2} min  metered {:5.2} kW  actual {:5.2} kW  inlet {:6.2} °C{}{}",
                r.metered_total.as_kilowatts(),
                r.actual_total.as_kilowatts(),
                r.inlet.as_celsius(),
                if r.capping { "  [capping]" } else { "" },
                if r.outage { "  [OUTAGE]" } else { "" },
            );
        }
    }
    outln!(
        out,
        "  outages: {} (paper: inlet passes 45 °C despite capping)",
        report.metrics.outage_events
    );
    write_csv(opts, out, "fig8", RECORD_HEADER, &rows);
}

/// Fig. 9: 4-hour snapshot of repeated attacks under the three policies.
pub fn fig9(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 9 — 4 h snapshot of repeated attacks (3 policies)",
    );
    let config = ColoConfig::paper_default();
    let policies: Vec<(&str, Box<dyn AttackPolicy>, bool)> = vec![
        (
            "random",
            Box::new(RandomPolicy::new(
                0.08,
                config.attack_load,
                config.slot,
                opts.seed,
            )),
            false,
        ),
        (
            "myopic",
            Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4))),
            false,
        ),
        (
            "foresighted",
            Box::new(ForesightedPolicy::paper_default(14.0, opts.seed)),
            true,
        ),
    ];
    // The three policy runs are independent lanes of one sharded batch:
    // warm up the learning lane, attach the trace recorders (after warm-up,
    // so the JSONL lines up with the recorded days), then record every lane
    // in lockstep.
    let names: Vec<&str> = policies.iter().map(|(name, _, _)| *name).collect();
    let lanes: Vec<(Simulation, bool)> = policies
        .into_iter()
        .map(|(_, policy, warmup)| (Simulation::new(config.clone(), policy, opts.seed), warmup))
        .collect();
    let mut sims = warmup_sims_batch(lanes, opts.warmup_slots());
    for (sim, name) in sims.iter_mut().zip(&names) {
        if let Some(rec) = trace_recorder(opts, &format!("fig9_{name}")) {
            sim.set_recorder(rec);
        }
    }
    // Record a few days, then pick the most "interesting" 4-hour window
    // (most capping slots, then most attack slots) — the paper likewise
    // shows a snapshot "when the total power/cooling load is relatively
    // higher".
    let mut run = hbm_core::run_sharded_recorded(sims, 4 * 1440);
    for sim in run.sims.iter_mut() {
        drop(sim.take_recorder());
    }
    let results = names.into_iter().zip(run.records).map(|(name, all)| {
        let window_len = 4 * 60;
        let score = |w: &[SlotRecord]| {
            let capping = w.iter().filter(|r| r.capping).count();
            let attacks = w.iter().filter(|r| r.attack_load > Power::ZERO).count();
            capping * 1000 + attacks
        };
        let start = (0..all.len() - window_len)
            .step_by(30)
            .max_by_key(|&s| score(&all[s..s + window_len]))
            .unwrap_or(0);
        let records = &all[start..start + window_len];
        let rows: Vec<String> = records
            .iter()
            .enumerate()
            .map(|(i, r)| record_row(i, r))
            .collect();
        let attacks = records
            .iter()
            .filter(|r| r.attack_load > Power::ZERO)
            .count();
        let emergencies = records
            .windows(2)
            .filter(|w| w[1].capping && !w[0].capping)
            .count();
        (name, attacks, emergencies, rows)
    });
    for (name, attacks, emergencies, rows) in results {
        outln!(
            out,
            "  {name:12} attack slots {attacks:3}/240, emergencies in window: {emergencies}"
        );
        write_csv(opts, out, &format!("fig9_{name}"), RECORD_HEADER, &rows);
    }
    outln!(
        out,
        "  (metered vs actual traces in the CSVs show the behind-the-meter gap)"
    );
}

const RECORD_HEADER: &str =
    "minute,benign_kw,metered_kw,actual_kw,attack_kw,soc,est_kw,inlet_c,capping,outage";

fn record_row(i: usize, r: &SlotRecord) -> String {
    format!(
        "{i},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.2},{},{}",
        r.benign_demand.as_kilowatts(),
        r.metered_total.as_kilowatts(),
        r.actual_total.as_kilowatts(),
        r.attack_load.as_kilowatts(),
        r.battery_soc,
        r.estimated_total.as_kilowatts(),
        r.inlet.as_celsius(),
        u8::from(r.capping),
        u8::from(r.outage),
    )
}

/// Fig. 10: the attack policy learnt by Foresighted for two weights.
pub fn fig10(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 10 — learnt Foresighted policy structure (w = 9 and w = 14)",
    );
    let config = ColoConfig::paper_default();
    // The two weights learn independently; train them as lanes of one
    // sharded batch (one packed Q-table matrix), then read each learnt
    // policy back out of the returned simulations.
    let weights = [9.0, 14.0];
    let sims: Vec<Simulation> = weights
        .iter()
        .map(|&w| {
            let policy = ForesightedPolicy::paper_default(w, opts.seed);
            Simulation::new(config.clone(), Box::new(policy), opts.seed)
        })
        .collect();
    let sims = hbm_core::run_sharded(sims, opts.warmup_slots()).sims;
    let results = weights.iter().zip(&sims).map(|(&w, sim)| {
        let p = sim
            .policy()
            .as_any()
            .downcast_ref::<ForesightedPolicy>()
            .expect("foresighted policy");
        let matrix = p.policy_matrix();
        let loads = p.load_bin_centers_kw();
        let mut lines = Vec::new();
        lines.push(format!(
            "  w = {w}: (columns = estimated load bins, rows = battery level high→low)"
        ));
        let mut header = String::from("        ");
        for l in loads.iter().step_by(2) {
            header.push_str(&format!("{l:5.1} "));
        }
        lines.push(header);
        let mut rows = Vec::new();
        for (b, row) in matrix.iter().enumerate().rev() {
            let soc = p.battery_bin_centers()[b];
            let line: String = row
                .iter()
                .map(|a| match a {
                    AttackAction::Attack => 'A',
                    AttackAction::Charge => 'C',
                    AttackAction::Standby => '.',
                })
                .collect();
            lines.push(format!("  b={soc:4.2}  {line}"));
            for (u, a) in row.iter().enumerate() {
                rows.push(format!("{w},{soc:.2},{:.2},{a}", loads[u]));
            }
        }
        (w, lines, rows)
    });
    for (w, lines, rows) in results {
        for line in lines {
            out.line(line);
        }
        write_csv(
            opts,
            out,
            &format!("fig10_w{}", w as u32),
            "w,battery_soc,load_kw,action",
            &rows,
        );
    }
    outln!(
        out,
        "  structural property: attack (A) concentrates where both battery and load are high"
    );
}

/// Figs. 11b and 11c: average ΔT and attack-induced emergency time versus
/// daily attack time, for all three policies.
pub fn fig11bc(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Figs. 11b/11c — ΔT and emergency time vs daily attack time",
    );
    let config = ColoConfig::paper_default();
    let mut rows = Vec::new();

    outln!(
        out,
        "  policy        knob        attack h/day   avg dT (K)   emergency %"
    );

    // All 18 policy/knob combinations are independent year-long runs — the
    // heaviest sweep in the harness, and the flattest to batch: every
    // combination becomes one lane of a sharded `BatchSim`, with the seven
    // foresighted lanes sharing a packed Q-table matrix.
    let mut jobs: Vec<(&str, String, Box<dyn AttackPolicy>, bool)> = Vec::new();
    for p in [0.0, 0.03, 0.08, 0.15] {
        let policy = RandomPolicy::new(p, config.attack_load, config.slot, opts.seed);
        jobs.push(("random", format!("p={p}"), Box::new(policy), false));
    }
    for threshold in [8.0, 7.8, 7.6, 7.4, 7.2, 7.0, 6.5] {
        let policy = MyopicPolicy::new(Power::from_kilowatts(threshold));
        jobs.push((
            "myopic",
            format!("thr={threshold}"),
            Box::new(policy),
            false,
        ));
    }
    for w in [0.0, 2.0, 5.0, 9.0, 14.0, 22.0, 30.0] {
        let policy = ForesightedPolicy::paper_default(w, opts.seed);
        jobs.push(("foresighted", format!("w={w}"), Box::new(policy), true));
    }
    let mut labels: Vec<(&str, String)> = Vec::new();
    let mut lanes: Vec<(Simulation, bool)> = Vec::new();
    for (policy_name, knob, policy, warmup) in jobs {
        labels.push((policy_name, knob));
        lanes.push((Simulation::new(config.clone(), policy, opts.seed), warmup));
    }
    let reports = run_sims_batch(lanes, opts.warmup_slots(), opts.slots());
    for ((policy, knob), report) in labels.into_iter().zip(reports) {
        let m = &report.metrics;
        outln!(
            out,
            "  {policy:12} {knob:>10}   {:10.2}   {:9.3}   {:9.3}",
            m.attack_hours_per_day(),
            m.avg_delta_t().as_celsius(),
            100.0 * m.emergency_fraction()
        );
        rows.push(format!(
            "{policy},{knob},{:.3},{:.4},{:.4}",
            m.attack_hours_per_day(),
            m.avg_delta_t().as_celsius(),
            100.0 * m.emergency_fraction()
        ));
    }
    write_csv(
        opts,
        out,
        "fig11bc",
        "policy,knob,attack_h_per_day,avg_dt_k,emergency_pct",
        &rows,
    );
}

/// Fig. 11d: normalized 95th-percentile response time during emergencies.
pub fn fig11d(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 11d — tenants' normalized 95p response time during emergencies",
    );
    let config = ColoConfig::paper_default();
    run_degradation(opts, out, &config, "fig11d");
}

/// Fig. 13b: same metric under the alternate (google) trace.
pub fn fig13b(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 13b — tenant performance during emergencies (alternate trace)",
    );
    let mut config = ColoConfig::paper_default();
    config.trace.shape = TraceShape::Google;
    run_degradation(opts, out, &config, "fig13b");
}

fn run_degradation(opts: &Options, out: &mut Sink, config: &ColoConfig, name: &str) {
    let mut rows = Vec::new();
    let mut names = Vec::new();
    let mut lanes: Vec<(Simulation, bool)> = Vec::new();
    for (pname, policy, warmup) in crate::common::default_policies(config, opts) {
        names.push(pname);
        lanes.push((Simulation::new(config.clone(), policy, opts.seed), warmup));
    }
    let reports = run_sims_batch(lanes, opts.warmup_slots(), opts.slots());
    for (pname, report) in names.into_iter().zip(reports) {
        outln!(out, "  {}", summary_line(&pname, &report.metrics));
        rows.push(format!(
            "{pname},{:.4},{:.4}",
            report.metrics.mean_emergency_degradation(),
            100.0 * report.metrics.emergency_fraction()
        ));
    }
    write_csv(
        opts,
        out,
        name,
        "policy,mean_degradation,emergency_pct",
        &rows,
    );
}

/// §VI-C: yearly cost estimate for attacker and benign tenants.
pub fn cost(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Section VI-C — cost estimate (defaults, Foresighted w=14)",
    );
    let config = ColoConfig::paper_default();
    let policy = ForesightedPolicy::paper_default(14.0, opts.seed);
    let sim = Simulation::new(config.clone(), Box::new(policy), opts.seed);
    let report = run_sims_batch(vec![(sim, true)], opts.warmup_slots(), opts.slots())
        .into_iter()
        .next()
        .expect("one lane in, one report out");
    let model = CostModel::paper_default();
    let costs = model.yearly_report(
        &report.metrics,
        config.attacker_capacity,
        config.attacker_servers,
        report.metrics.attacker_metered_energy,
    );
    outln!(
        out,
        "  attacker  subscription  ${:>10.0}/yr",
        costs.attacker_subscription
    );
    outln!(
        out,
        "  attacker  electricity   ${:>10.0}/yr",
        costs.attacker_energy
    );
    outln!(
        out,
        "  attacker  servers       ${:>10.0}/yr (amortized)",
        costs.attacker_servers
    );
    outln!(
        out,
        "  attacker  TOTAL         ${:>10.0}/yr",
        costs.attacker_total()
    );
    outln!(
        out,
        "  victims   performance   ${:>10.0}/yr (paper ballpark: $60K+)",
        costs.victim_performance
    );
    write_csv(
        opts,
        out,
        "cost",
        "item,usd_per_year",
        &[
            format!("attacker_subscription,{:.0}", costs.attacker_subscription),
            format!("attacker_energy,{:.0}", costs.attacker_energy),
            format!("attacker_servers,{:.0}", costs.attacker_servers),
            format!("victim_performance,{:.0}", costs.victim_performance),
        ],
    );
}
