//! Application-performance figures: 14b and 15.

use hbm_workload::latency::LatencyModel;

use crate::common::{heading, write_csv, Options, Sink};
use crate::outln;

/// Fig. 14b: latency jump under the 60 % emergency power cap (prototype
/// CloudSuite Web Service demonstration).
pub fn fig14b(opts: &Options, out: &mut Sink) {
    heading(out, "Fig. 14b — 95p response time under a 60 % power cap");
    let model = LatencyModel::web_service();
    let load = model.rated_load();
    let mut rows = Vec::new();
    // 20-minute episode: normal → 5-minute emergency capping → normal.
    for m in 0..20 {
        let capped = (8..13).contains(&m);
        let power = if capped { 0.6 } else { 1.0 };
        let t95 = model.t95_millis(power, load);
        rows.push(format!("{m},{power},{t95:.1}"));
        if m % 2 == 0 {
            outln!(
                out,
                "  t={m:2} min  power {:3.0} %  t95 {:5.0} ms{}",
                power * 100.0,
                t95,
                if capped { "  [capping]" } else { "" }
            );
        }
    }
    let jump = model.t95_millis(0.6, load) / model.t95_millis(1.0, load);
    outln!(
        out,
        "  capping multiplies t95 by ≈{jump:.1} (paper: ≈4×, 100 → 400 ms)"
    );
    write_csv(opts, out, "fig14b", "minute,power_frac,t95_ms", &rows);
}

/// Fig. 15: 95p response time (normalized to the 100 ms SLA) vs normalized
/// server power for Web Service and Web Search at two load levels each.
pub fn fig15(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 15 — performance degradation vs power cap (CloudSuite models)",
    );
    let mut rows = Vec::new();
    let cases = [
        ("web_service", LatencyModel::web_service(), 0.30, 0.40),
        ("web_search", LatencyModel::web_search(), 0.35, 0.45),
    ];
    for (name, model, low_load, high_load) in cases {
        outln!(
            out,
            "  {name}:  power%   t95/SLA (low load)   t95/SLA (high load)"
        );
        for step in 0..=8 {
            let power = 0.5 + 0.0625 * step as f64;
            let lo = model.t95_normalized_to_sla(power, low_load);
            let hi = model.t95_normalized_to_sla(power, high_load);
            outln!(
                out,
                "            {:5.1}   {lo:18.2}   {hi:19.2}",
                power * 100.0
            );
            rows.push(format!("{name},{power:.4},{lo:.4},{hi:.4}"));
        }
    }
    outln!(
        out,
        "  (lower power ⇒ higher tail latency at any load — Appendix A)"
    );
    write_csv(
        opts,
        out,
        "fig15",
        "application,power_frac,t95_sla_low_load,t95_sla_high_load",
        &rows,
    );
}
