//! `experiments whatif` — offline what-if branching over a state tree.
//!
//! Runs one scenario to a fork slot, forks it into a control branch plus
//! one branch per `--variant`, advances all branches in lockstep through
//! the batch engine ([`hbm_core::StateTree`]), and prints a comparison
//! table: per-branch attack/emergency/outage totals, attack energy, the
//! final thermal and battery state, and the first slot at which any
//! variant diverged from the control. This is the CLI face of the same
//! copy-on-write fork machinery `hbm-serve` exposes as
//! `POST /v1/experiments/{id}/fork` (see `docs/SERVICE.md`) — forking a
//! 5-day run costs a state copy, not a 5-day re-simulation.

use crate::common::Options;
use hbm_core::{Perturbation, Scenario, StateTree};

/// Usage text printed on argument errors.
pub const USAGE: &str = "usage: experiments whatif --policy NAME [--days N] [--warmup-days N] [--seed N]
                          [--util F] [--attack-load-kw F] [--battery-kwh F] [--threshold-c F] [--cap-w F]
                          [--fork-at SLOT] [--slots N]
                          [--variant [label=NAME,]key=value[,...]]...
  --fork-at SLOT   slot to fork at (default: half the measured horizon)
  --slots N        slots to advance every branch after the fork (default 1440)
  --variant SPEC   one branch; SPEC is comma-separated key=value pairs with
                   keys label, util, attack-load-kw, battery-kwh, threshold-c,
                   cap-w (a control branch is always included)";

/// Parses one `--variant` spec into a label and a perturbation.
fn parse_variant(spec: &str, index: usize) -> Result<(String, Perturbation), String> {
    let mut label = format!("variant-{index}");
    let mut p = Perturbation::default();
    for pair in spec.split(',') {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("variant pair {pair:?} is not key=value"))?;
        let num = || -> Result<f64, String> {
            value
                .parse()
                .map_err(|e| format!("variant {key}={value}: {e}"))
        };
        match key {
            "label" => label = value.to_string(),
            "util" => p.utilization = Some(num()?),
            "attack-load-kw" => p.attack_load_kw = Some(num()?),
            "battery-kwh" => p.battery_kwh = Some(num()?),
            "threshold-c" => p.threshold_c = Some(num()?),
            "cap-w" => p.cap_w = Some(num()?),
            other => return Err(format!("unknown variant key {other:?}")),
        }
    }
    Ok((label, p))
}

/// `experiments whatif ...`: fork one scenario, compare its futures.
pub fn run_whatif(opts: &Options, args: &[String]) -> Result<(), String> {
    let mut scenario = Scenario::new("");
    scenario.days = opts.days;
    scenario.warmup_days = opts.warmup_days;
    scenario.seed = opts.seed;
    let mut fork_at: Option<u64> = None;
    let mut slots: u64 = 1440;
    let mut variants: Vec<(String, Perturbation)> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--policy" => scenario.policy = take("--policy")?,
            "--util" => scenario.utilization = Some(parse_f64(&take("--util")?, "--util")?),
            "--attack-load-kw" => {
                scenario.attack_load_kw =
                    Some(parse_f64(&take("--attack-load-kw")?, "--attack-load-kw")?)
            }
            "--battery-kwh" => {
                scenario.battery_kwh = Some(parse_f64(&take("--battery-kwh")?, "--battery-kwh")?)
            }
            "--threshold-c" => {
                scenario.threshold_c = Some(parse_f64(&take("--threshold-c")?, "--threshold-c")?)
            }
            "--cap-w" => scenario.cap_w = Some(parse_f64(&take("--cap-w")?, "--cap-w")?),
            "--fork-at" => {
                fork_at = Some(
                    take("--fork-at")?
                        .parse()
                        .map_err(|e| format!("--fork-at: {e}"))?,
                )
            }
            "--slots" => {
                slots = take("--slots")?
                    .parse()
                    .map_err(|e| format!("--slots: {e}"))?
            }
            "--variant" => {
                let spec = take("--variant")?;
                variants.push(parse_variant(&spec, variants.len() + 1)?);
            }
            other => return Err(format!("unknown whatif argument {other:?}")),
        }
    }
    if scenario.policy.is_empty() {
        return Err("whatif requires --policy NAME".into());
    }
    if slots == 0 {
        return Err("--slots must be positive".into());
    }
    let fork_at = fork_at.unwrap_or(scenario.slots() / 2);

    // Trunk: build, warm up a learning policy, advance to the fork slot.
    let (mut sim, needs_warmup) = scenario.build_sim()?;
    if needs_warmup {
        sim.warmup(scenario.warmup_slots());
    }
    sim.run(fork_at);

    // Fork is a state copy, not a re-run: the tree owns a clone of the
    // trunk at `fork_at` and each branch restores from that one snapshot.
    let mut tree = StateTree::new(sim.fork(), scenario.clone());
    tree.branch("control", &Perturbation::default())?;
    for (label, perturbation) in &variants {
        tree.branch(label.clone(), perturbation)?;
    }
    tree.run(slots);

    println!(
        "whatif: policy {}, seed {}, forked at slot {fork_at}, {} branch(es) x {slots} slot(s)",
        scenario.policy,
        scenario.seed,
        tree.len()
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>11} {:>9} {:>8} {:>6}",
        "branch", "attack", "emerg", "outages", "attack_kWh", "avg_dT_C", "inlet_C", "soc"
    );
    for outcome in tree.outcomes() {
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>11.3} {:>9.4} {:>8.3} {:>6.3}",
            outcome.label,
            outcome.metrics.attack_slots,
            outcome.metrics.emergency_slots,
            outcome.metrics.outage_events,
            outcome.metrics.attack_energy.as_kilowatt_hours(),
            outcome.metrics.avg_delta_t().as_celsius(),
            outcome.inlet_c,
            outcome.battery_soc,
        );
    }
    match tree.first_divergence() {
        Some(slot) => println!("first divergence: slot {slot}"),
        None => println!("first divergence: none (all branches agree so far)"),
    }
    Ok(())
}

fn parse_f64(value: &str, name: &str) -> Result<f64, String> {
    value.parse().map_err(|e| format!("{name}: {e}"))
}
