//! Infrastructure-validation figures: 5b, 6b, 7a, 7b, 13a, 14a, and Table I.

use hbm_battery::{ups_experiment, UpsExperiment};
use hbm_core::ColoConfig;
use hbm_sidechannel::{stats::Histogram, SideChannelConfig, VoltageSideChannel};
use hbm_thermal::{CfdConfig, CfdModel, HeatMatrixModel, ZoneModel};
use hbm_units::{Duration, Power, Temperature};
use hbm_workload::{generate, TraceConfig, TraceShape};

use crate::common::{heading, write_csv, Options, Sink};
use crate::outln;

/// Table I: the default parameters.
pub fn table1(opts: &Options, out: &mut Sink) {
    heading(out, "Table I — default parameters");
    let config = ColoConfig::paper_default();
    let rows: Vec<String> = config
        .table_one()
        .into_iter()
        .map(|(k, v)| {
            outln!(out, "  {k:<45} {v}");
            format!("{k},{v}")
        })
        .collect();
    write_csv(opts, out, "table1", "parameter,value", &rows);
}

/// Fig. 5b: distribution of side-channel load-estimation error.
pub fn fig5b(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 5b — voltage side channel estimation error distribution",
    );
    let trace = generate(&TraceConfig {
        len: 24 * 60,
        ..TraceConfig::paper_default_year(opts.seed)
    });
    let mut channel = VoltageSideChannel::new(SideChannelConfig::paper_default(), opts.seed);
    let pairs = channel.estimate_series(trace.samples());
    let mut hist = Histogram::new(-0.5, 0.5, 40);
    hist.extend(pairs.iter().map(|(_, e)| e.as_kilowatts()));
    let pdf = hist.pdf();
    let rows: Vec<String> = pdf
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{:.4},{:.5}", hist.bin_center(i), p))
        .collect();
    let within_5pct = hist.fraction_within(-0.3, 0.3);
    outln!(out, "  24 h of 1-minute estimates on the default trace");
    outln!(
        out,
        "  fraction within ±0.3 kW (≈±5 % of the 6 kW mean): {:.1} %",
        100.0 * within_5pct
    );
    write_csv(opts, out, "fig5b", "error_kw,probability", &rows);
}

/// Fig. 6b: 24-hour snapshot of the default power trace.
pub fn fig6b(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 6b — 24 h snapshot of the default (facebook-baidu) trace",
    );
    snapshot_trace(opts, out, TraceShape::FacebookBaidu, "fig6b");
}

/// Fig. 13a: 24-hour snapshot of the alternate (google) power trace.
pub fn fig13a(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 13a — 24 h snapshot of the alternate (google) trace",
    );
    snapshot_trace(opts, out, TraceShape::Google, "fig13a");
}

fn snapshot_trace(opts: &Options, out: &mut Sink, shape: TraceShape, name: &str) {
    let mut config = TraceConfig::paper_default_year(opts.seed);
    config.shape = shape;
    config.len = 8 * 24 * 60;
    let trace = generate(&config);
    // Show day 3 (skip the seed-dependent start-up of the AR process).
    let day_start = 3 * 24 * 60;
    let rows: Vec<String> = (0..24 * 60)
        .map(|m| {
            let p = trace.get(day_start + m);
            format!("{m},{:.4}", p.as_kilowatts())
        })
        .collect();
    for h in (0..24).step_by(3) {
        let mean: f64 = (0..60)
            .map(|m| trace.get(day_start + h * 60 + m).as_kilowatts())
            .sum::<f64>()
            / 60.0;
        outln!(out, "  {h:02}:00  {:5.2} kW  {}", mean, bar(mean, 8.0));
    }
    outln!(
        out,
        "  mean {:.2} kW ({:.0} % of 8 kW), peak {:.2} kW",
        trace.mean().as_kilowatts(),
        100.0 * trace.mean_utilization(Power::from_kilowatts(8.0)),
        trace.peak().as_kilowatts()
    );
    write_csv(opts, out, name, "minute,benign_kw", &rows);
}

fn bar(value: f64, max: f64) -> String {
    let n = ((value / max) * 40.0).round().max(0.0) as usize;
    "#".repeat(n.min(60))
}

/// Fig. 7a: zone + heat-matrix model vs the CFD-lite reference on a load
/// transient (the paper validates simulation against its prototype here;
/// our prototype stand-in is the CFD model).
pub fn fig7a(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 7a — thermal model validation (CFD-lite vs zone vs matrix)",
    );
    let config = CfdConfig::paper_default();
    let mut cfd = CfdModel::new(config);
    let mut zone = ZoneModel::paper_default();
    let n = config.server_count();
    let minute = Duration::from_minutes(1.0);

    // Warm both models at 75 % load, then a 4-minute 1 kW overload
    // (9 kW total vs 8 kW cooling), then recovery — like the paper's
    // prototype validation, an overload pulse followed by a cool-down,
    // kept below the runaway regime where the colocation would already
    // have shut down.
    let base = vec![Power::from_watts(150.0); n];
    let hot = vec![Power::from_watts(225.0); n];
    cfd.run_to_steady_state(&base, 0.002, Duration::from_minutes(30.0));
    for _ in 0..5 {
        zone.step(Power::from_kilowatts(6.0), minute);
    }

    let mut rows = Vec::new();
    let mut sq_err = 0.0;
    let total_minutes = 20;
    for m in 0..total_minutes {
        let overload = (5..9).contains(&m);
        let (powers, total) = if overload {
            (&hot, Power::from_kilowatts(9.0))
        } else {
            (&base, Power::from_kilowatts(6.0))
        };
        cfd.step(powers, minute);
        let z = zone.step(total, minute);
        let c = cfd.mean_inlet();
        sq_err += (z - c).as_celsius().powi(2);
        rows.push(format!("{m},{:.3},{:.3}", c.as_celsius(), z.as_celsius()));
        if m % 2 == 0 {
            outln!(
                out,
                "  t={m:2} min  cfd {:6.2} °C   zone {:6.2} °C {}",
                c.as_celsius(),
                z.as_celsius(),
                if overload { " (overloaded)" } else { "" }
            );
        }
    }
    let rmse = (sq_err / total_minutes as f64).sqrt();
    outln!(out, "  zone-vs-CFD RMSE over the transient: {rmse:.2} K");
    write_csv(opts, out, "fig7a", "minute,cfd_inlet_c,zone_inlet_c", &rows);

    // Matrix-model cross-check in its (sub-capacity) extraction regime.
    let baseline = vec![Power::from_watts(150.0); n];
    let mut matrix = HeatMatrixModel::from_cfd(
        &config,
        &baseline,
        Power::from_watts(300.0),
        Duration::from_minutes(10.0),
        Duration::from_minutes(1.0),
    );
    let mut cfd2 = CfdModel::new(config);
    cfd2.run_to_steady_state(&baseline, 0.002, Duration::from_minutes(30.0));
    let mut excursion = baseline.clone();
    excursion[5] = Power::from_watts(500.0);
    excursion[25] = Power::from_watts(500.0);
    let mut sq = 0.0;
    for m in 0..12 {
        let powers = if m < 6 { &excursion } else { &baseline };
        let predicted = matrix.step_mean(powers);
        cfd2.step(powers, minute);
        sq += (predicted - cfd2.mean_inlet()).as_celsius().powi(2);
    }
    outln!(
        out,
        "  heat-matrix-vs-CFD RMSE on a sub-capacity excursion: {:.3} K",
        (sq / 12.0).sqrt()
    );
}

/// Fig. 7b: battery charge/discharge validation (UPS prototype experiment).
pub fn fig7b(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 7b — battery energy dynamics (UPS prototype experiment)",
    );
    let exp = UpsExperiment::default();
    let trace = ups_experiment(&exp);
    let rows: Vec<String> = trace
        .iter()
        .map(|s| {
            format!(
                "{:.2},{:.3},{:.1}",
                s.elapsed.as_minutes(),
                s.stored.as_watt_hours(),
                s.wall_power.as_watts()
            )
        })
        .collect();
    for s in trace.iter().step_by(8) {
        outln!(
            out,
            "  t={:5.1} min  battery {:5.1} Wh  wall {:5.0} W",
            s.elapsed.as_minutes(),
            s.stored.as_watt_hours(),
            s.wall_power.as_watts()
        );
    }
    outln!(
        out,
        "  (10-minute discharge at ~175 W, then recharge; charge slope is shallower — losses)"
    );
    write_csv(opts, out, "fig7b", "minute,stored_wh,wall_w", &rows);
}

/// Fig. 14a: prototype demonstration — inlet temperature under a 1.5 kW
/// cooling overload on the 3 kW prototype rack.
pub fn fig14a(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 14a — prototype: inlet rise under 1.5 kW cooling overload",
    );
    let mut zone = ZoneModel::prototype();
    let load = zone.cooling().capacity + Power::from_kilowatts(1.5);
    let mut rows = Vec::new();
    let mut reached_40 = None;
    for m in 0..12 {
        let t = zone.step(load, Duration::from_minutes(1.0));
        rows.push(format!("{m},{:.3}", t.as_celsius()));
        if reached_40.is_none() && t >= Temperature::from_celsius(40.0) {
            reached_40 = Some(m + 1);
        }
        outln!(out, "  t={m:2} min  inlet {:6.2} °C", t.as_celsius());
        if t > Temperature::from_celsius(42.0) {
            outln!(
                out,
                "  (stopping at the ASHRAE safety limit, as the paper's prototype run did)"
            );
            break;
        }
    }
    match reached_40 {
        Some(m) => outln!(
            out,
            "  inlet reached 40 °C within {m} minutes (paper: \"within minutes\")"
        ),
        None => outln!(out, "  inlet did not reach 40 °C within 12 minutes"),
    }
    write_csv(opts, out, "fig14a", "minute,inlet_c", &rows);
}
