//! Extensions beyond the paper's figures: the learning-rule ablation and
//! the defense operating-characteristic sweep.

use hbm_core::{ColoConfig, ForesightedPolicy, MyopicPolicy, Simulation};
use hbm_defense::ThermalResidualDetector;
use hbm_thermal::ZoneModel;
use hbm_thermal::{CfdConfig, CfdModel};
use hbm_units::{Duration, Temperature};
use hbm_units::{Power, TemperatureDelta};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use hbm_workload::latency::LatencyModel;
use hbm_workload::queue::simulate as queue_simulate;

use crate::common::{heading, write_csv, Options, Sink};
use crate::outln;

/// Ablation: the paper's batch Q-learning vs classic Q-learning, same
/// state space, same schedules, same execution machinery. The paper's
/// motivation for the batch variant is faster convergence (Section IV-B);
/// measure emergency production per fortnight of online learning.
pub fn ablation(opts: &Options, out: &mut Sink) {
    heading(out, "Ablation — batch vs standard Q-learning convergence");
    let config = ColoConfig::paper_default();
    let fortnight = 14 * 1440u64;
    let fortnights = 10usize;
    let mut rows = Vec::new();
    // The two learning rules train independently; run both arms at once.
    let curves = hbm_par::par_map(
        vec![("batch", false), ("standard", true)],
        |(name, standard)| {
            let mut policy = ForesightedPolicy::paper_default(14.0, opts.seed);
            if standard {
                policy = policy.with_standard_q();
            }
            let mut sim = Simulation::new(config.clone(), Box::new(policy), opts.seed);
            let mut curve = Vec::new();
            let mut prev_slots = 0u64;
            for _ in 0..fortnights {
                sim.run(fortnight);
                let m = sim.metrics();
                let window_emerg = m.emergency_slots - prev_slots;
                prev_slots = m.emergency_slots;
                curve.push(100.0 * window_emerg as f64 / fortnight as f64);
            }
            (name, curve)
        },
    );
    outln!(out, "  fortnight   batch emerg%   standard emerg%");
    for i in 0..fortnights {
        let b = curves[0].1[i];
        let s = curves[1].1[i];
        outln!(out, "  {:>9}   {b:12.3}   {s:15.3}", i + 1);
        rows.push(format!("{},{b:.4},{s:.4}", i + 1));
    }
    outln!(
        out,
        "  (both include the 60-day teacher phase; divergence appears after it)"
    );
    write_csv(
        opts,
        out,
        "ablation",
        "fortnight,batch_emergency_pct,standard_emergency_pct",
        &rows,
    );
}

/// Defense operating characteristic: sweep the residual-detector threshold
/// and report detection of *sustained* attack runs (≥3 minutes — the only
/// ones that can outlast the emergency dwell) against the false-alarm rate
/// on a clean horizon. The operator's temperature sensors carry ±0.2 K of
/// noise, which is what makes the threshold choice a real trade-off.
pub fn defense_roc(opts: &Options, out: &mut Sink) {
    heading(out, "Defense ROC — residual-detector threshold sweep");
    let config = ColoConfig::paper_default();
    let horizon = opts.slots().min(90 * 1440);
    let sensor_noise_k = 0.2;

    // Attack-campaign and clean (no-attack, same trace) records: two
    // independent simulations, shared by every threshold below.
    let mut recorded = hbm_par::par_map(vec![7.4, 99.0], |trigger_kw| {
        let mut sim = Simulation::new(
            config.clone(),
            Box::new(MyopicPolicy::new(Power::from_kilowatts(trigger_kw))),
            opts.seed,
        );
        sim.run_recorded(horizon).1
    });
    let (clean_records, attack_records) = match (recorded.pop(), recorded.pop()) {
        (Some(clean), Some(attack)) => (clean, attack),
        _ => {
            out.line("error: defense_roc: recorded simulations went missing");
            return;
        }
    };

    outln!(
        out,
        "  threshold_K   detection %   false alarms/week   mean latency (min)"
    );
    // Each threshold replays the shared records with its own detector and
    // its own deterministically seeded sensor noise, so the sweep is
    // embarrassingly parallel.
    let thresholds = vec![0.2, 0.4, 0.6, 0.8, 1.2, 1.6, 2.4];
    let results = hbm_par::par_map(thresholds, |threshold_k| {
        let build = || {
            ThermalResidualDetector::new(
                ZoneModel::new(
                    config.cooling,
                    config.zone_heat_capacity_j_per_k,
                    config.zone_pulldown_w_per_k,
                ),
                TemperatureDelta::from_celsius(threshold_k),
                3,
            )
        };

        // Detection of sustained (≥3-minute) attack runs; short probes are
        // both harmless and physically indistinguishable from noise.
        let mut detector = build();
        let mut rng = StdRng::seed_from_u64(opts.seed * 7 + 1);
        let mut runs = 0u64;
        let mut caught = 0u64;
        let mut latencies = Vec::new();
        let mut i = 0usize;
        while i < attack_records.len() {
            let r = &attack_records[i];
            let attacking = r.attack_load > Power::ZERO;
            if !attacking {
                let noisy =
                    r.inlet + TemperatureDelta::from_celsius(sensor_noise_k * normal(&mut rng));
                detector.observe(r.metered_total, noisy, config.slot);
                i += 1;
                continue;
            }
            // Measure the run length, then replay it through the detector.
            let len = attack_records[i..]
                .iter()
                .take_while(|r| r.attack_load > Power::ZERO)
                .count();
            let mut run_caught = None;
            for (j, r) in attack_records[i..i + len].iter().enumerate() {
                let noisy =
                    r.inlet + TemperatureDelta::from_celsius(sensor_noise_k * normal(&mut rng));
                if detector.observe(r.metered_total, noisy, config.slot) && run_caught.is_none() {
                    run_caught = Some(j + 1);
                }
            }
            if len >= 3 {
                runs += 1;
                if let Some(latency) = run_caught {
                    caught += 1;
                    latencies.push(latency as f64);
                }
            }
            i += len;
        }

        // False alarms on the clean horizon with the same sensor noise.
        let mut detector = build();
        let mut rng = StdRng::seed_from_u64(opts.seed * 13 + 5);
        let mut false_alarms = 0u64;
        for r in &clean_records {
            let noisy = r.inlet + TemperatureDelta::from_celsius(sensor_noise_k * normal(&mut rng));
            if detector.observe(r.metered_total, noisy, config.slot) {
                false_alarms += 1;
            }
        }

        let detection = if runs == 0 {
            0.0
        } else {
            100.0 * caught as f64 / runs as f64
        };
        let fa_per_week = false_alarms as f64 / (horizon as f64 / (7.0 * 1440.0));
        let latency = if latencies.is_empty() {
            f64::NAN
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        (threshold_k, detection, fa_per_week, latency)
    });
    let mut rows = Vec::new();
    for (threshold_k, detection, fa_per_week, latency) in results {
        outln!(
            out,
            "  {threshold_k:11.1}   {detection:11.1}   {fa_per_week:17.2}   {latency:18.1}"
        );
        rows.push(format!(
            "{threshold_k},{detection:.2},{fa_per_week:.3},{latency:.2}"
        ));
    }
    outln!(
        out,
        "  (detection counts sustained ≥3-minute runs; ±0.2 K sensor noise assumed)"
    );
    write_csv(
        opts,
        out,
        "defense_roc",
        "threshold_k,detection_pct,false_alarms_per_week,mean_latency_min",
        &rows,
    );
}

/// One standard-normal draw (Box–Muller).
fn normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Validation of the analytic latency model against the request-level
/// queueing simulation, across the Fig. 15 grid.
pub fn latency_validation(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Latency-model validation — analytic vs request-level queue sim",
    );
    outln!(
        out,
        "  application   power%   load   analytic t95   simulated t95   error %"
    );
    // Flatten the application × power × load grid into one job list; each
    // cell is an independent 100k-request queueing simulation.
    let mut grid = Vec::new();
    for (name, model) in [
        ("web_service", LatencyModel::web_service()),
        ("web_search", LatencyModel::web_search()),
    ] {
        for power in [1.0, 0.8, 0.7, 0.6] {
            for load in [model.rated_load() * 0.75, model.rated_load()] {
                grid.push((name, model, power, load));
            }
        }
    }
    let results = hbm_par::par_map(grid, |(name, model, power, load)| {
        let analytic = model.t95_millis(power, load);
        let sim = queue_simulate(&model, power, load, 100_000, opts.seed);
        (name, power, load, analytic, sim.t95_ms)
    });
    let mut rows = Vec::new();
    for (name, power, load, analytic, sim_t95) in results {
        let err = 100.0 * (sim_t95 - analytic) / analytic;
        outln!(
            out,
            "  {name:12} {:6.0}   {load:4.2}   {analytic:12.1}   {sim_t95:13.1}   {err:7.2}",
            power * 100.0,
        );
        rows.push(format!(
            "{name},{power},{load:.3},{analytic:.2},{sim_t95:.2},{err:.3}"
        ));
    }
    outln!(
        out,
        "  (the analytic model used in year-long runs is the M/M/1 capacity-cut queue)"
    );
    write_csv(
        opts,
        out,
        "latency_validation",
        "application,power_frac,load_frac,analytic_t95_ms,simulated_t95_ms,error_pct",
        &rows,
    );
}

/// Validation of the paper's placement claim (Section V-A): "while we place
/// the attacker's servers at the bottom of the rack, their location within
/// the rack does not play any significant role in the attack since the
/// cooling load is determined by server power." Run the CFD model with the
/// 4 attack servers at the bottom, middle, and top of rack 0 and compare
/// the mean-inlet impact of the same 1 kW injection.
pub fn placement(opts: &Options, out: &mut Sink) {
    heading(out, "Placement check — attacker position within the rack");
    let config = CfdConfig::paper_default();
    let n = config.server_count();
    let base_w = 150.0;
    outln!(out, "  position   mean inlet after 5 min of +1 kW (°C)");
    // The three placements run the same CFD protocol independently.
    let positions = vec![
        ("bottom", [0usize, 1, 2, 3]),
        ("middle", [8, 9, 10, 11]),
        ("top", [16, 17, 18, 19]),
    ];
    let results = hbm_par::par_map(positions, |(name, slots)| {
        let mut cfd = CfdModel::new(config);
        let baseline = vec![hbm_units::Power::from_watts(base_w); n];
        cfd.run_to_steady_state(&baseline, 0.002, Duration::from_minutes(30.0));
        let mut attacked = baseline.clone();
        for &s in &slots {
            attacked[s] = hbm_units::Power::from_watts(base_w + 250.0); // +1 kW total
        }
        // Push the total past capacity so the injection matters: raise the
        // benign floor too (uniform 187.5 W ≈ 7.5 kW + 1 kW attack).
        for (i, p) in attacked.iter_mut().enumerate() {
            if !slots.contains(&i) {
                *p = hbm_units::Power::from_watts(187.5);
            } else {
                *p = hbm_units::Power::from_watts(187.5 + 250.0);
            }
        }
        cfd.run_to_steady_state(
            &attacked
                .iter()
                .map(|&p| p * (180.0 / 187.5))
                .collect::<Vec<_>>(),
            0.002,
            Duration::from_minutes(10.0),
        );
        cfd.step(&attacked, Duration::from_minutes(5.0));
        (name, cfd.mean_inlet().as_celsius())
    });
    let mut rows = Vec::new();
    let mut impacts = Vec::new();
    for (name, inlet) in results {
        outln!(out, "  {name:8}   {inlet:8.3}");
        impacts.push(inlet);
        rows.push(format!("{name},{inlet:.4}"));
    }
    let spread = impacts.iter().cloned().fold(f64::MIN, f64::max)
        - impacts.iter().cloned().fold(f64::MAX, f64::min);
    outln!(
        out,
        "  spread across positions: {spread:.3} K (paper: position plays no significant role)"
    );
    write_csv(opts, out, "placement", "position,mean_inlet_c", &rows);
}

/// Negative control for Section III-D: without airflow meters, inlet/outlet
/// temperature monitoring alone cannot tell the attacker from a busy benign
/// server — outlet temperature depends on the (unknown) fan speed.
pub fn outlet_only(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Outlet-temperature-only monitoring — why it fails (Section III-D)",
    );
    // Two servers, same 38 °C outlet reading:
    //  * benign at 200 W with a lazy fan (0.018 kg/s → ΔT 11 K)
    //  * attacker at 450 W with its fans at full tilt (0.0407 kg/s → ΔT 11 K)
    let cp = 1005.0;
    let inlet = 27.0;
    let benign_flow = 0.018;
    let benign_w = 200.0;
    let benign_outlet = inlet + benign_w / (benign_flow * cp);
    let attacker_w = 450.0;
    let attacker_flow = attacker_w / ((benign_outlet - inlet) * cp);
    let attacker_outlet = inlet + attacker_w / (attacker_flow * cp);
    outln!(
        out,
        "  benign:   200 W, flow {benign_flow:.4} kg/s → outlet {benign_outlet:.1} °C"
    );
    outln!(
        out,
        "  attacker: 450 W, flow {attacker_flow:.4} kg/s → outlet {attacker_outlet:.1} °C"
    );
    outln!(
        out,
        "  identical outlet readings; only the airflow (or the fan noise driving it)"
    );
    outln!(
        out,
        "  separates them — which is exactly the monitoring the paper recommends."
    );
    let rows = vec![
        format!("benign,{benign_w},{benign_flow:.5},{benign_outlet:.2}"),
        format!("attacker,{attacker_w},{attacker_flow:.5},{attacker_outlet:.2}"),
    ];
    write_csv(
        opts,
        out,
        "outlet_only",
        "server,power_w,airflow_kg_s,outlet_c",
        &rows,
    );
}

/// Prevention defense of Section VII-A: lowering the supply setpoint buys
/// thermal margin against attacks — at an energy cost the paper warns
/// about. Sweep the setpoint and measure the default Myopic campaign.
pub fn setpoint(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Prevention — lower supply setpoint vs attack effectiveness",
    );
    outln!(
        out,
        "  setpoint °C   emergencies %   (margin to the 32 °C threshold)"
    );
    // One independent 90-day campaign per setpoint.
    let results = hbm_par::par_map(vec![27.0, 25.0, 23.0, 21.0], |supply_c| {
        let mut config = ColoConfig::paper_default();
        config.cooling = config
            .cooling
            .with_supply(Temperature::from_celsius(supply_c));
        let policy = MyopicPolicy::new(hbm_units::Power::from_kilowatts(7.4));
        let mut sim = Simulation::new(config, Box::new(policy), opts.seed);
        let report = sim.run(opts.slots().min(90 * 1440));
        (supply_c, 100.0 * report.metrics.emergency_fraction())
    });
    let mut rows = Vec::new();
    for (supply_c, pct) in results {
        outln!(
            out,
            "  {supply_c:11.0}   {pct:13.3}   ({:.0} K margin)",
            32.0 - supply_c
        );
        rows.push(format!("{supply_c},{pct:.4}"));
    }
    outln!(
        out,
        "  (each kelvin of margin costs cooling energy — the trade-off of Section VII-A)"
    );
    write_csv(opts, out, "setpoint", "supply_c,emergency_pct", &rows);
}
