//! `experiments surrogate ...` — fit, validate, and error-sweep the
//! polynomial surrogate tier (see `docs/SURROGATE.md`).
//!
//! `fit` samples CFD-lite extractions over a knob grid, fits the
//! ridge-regression surrogate with a held-out error bound, and writes the
//! `hbm-surrogate-v1` artifact `hbm-serve --surrogate` loads. `validate`
//! re-measures the artifact's error against fresh extractions at off-grid
//! points. `sweep` writes a per-query error CSV over (and slightly
//! beyond) the trust region.

use hbm_surrogate::{
    ExtractionSettings, FitOptions, SurrogateDomain, SurrogateModel, SurrogateQuery,
};
use hbm_thermal::CfdConfig;
use hbm_units::{Duration, Power};

use crate::common::Options;

pub const USAGE: &str =
    "usage: experiments surrogate fit --model FILE [--grid N] [--holdout N] [--lambda F]
           [--racks N] [--servers-per-rack N] [--baseline-lo W] [--baseline-hi W]
           [--supply-lo C] [--supply-hi C] [--leakage-lo F] [--leakage-hi F]
       experiments surrogate validate --model FILE [--points N]
       experiments surrogate sweep --model FILE --csv FILE [--points N]
  fit       sample extractions on a grid³, fit the surrogate, write the artifact
  validate  re-measure prediction error vs fresh extraction at off-grid points
  sweep     write a per-query error CSV over the domain and 20% beyond each edge
  --model FILE           the hbm-surrogate-v1 artifact to write (fit) or read
  --grid N               grid points per knob axis (default 5)
  --holdout N            hold out every N-th grid point for validation (default 3)
  --lambda F             ridge penalty (default 1e-8)
  --racks N              container racks (default 1)
  --servers-per-rack N   servers per rack (default 4)
  --baseline-lo/hi W     per-server baseline power range (default 100..200)
  --supply-lo/hi C       cooling supply setpoint range (default 24..30)
  --leakage-lo/hi F      containment leakage range (default 0.02..0.12)
  --points N             probe points per axis for validate/sweep (default 4/6)
  --csv FILE             sweep output file";

/// Flags shared by `fit`'s geometry/domain and reused as probe settings.
struct FitArgs {
    model: Option<String>,
    grid: usize,
    holdout: usize,
    lambda: f64,
    racks: usize,
    servers_per_rack: usize,
    lo: [f64; 3],
    hi: [f64; 3],
    points: usize,
    csv: Option<String>,
}

impl FitArgs {
    fn parse(args: &[String], default_points: usize) -> Result<FitArgs, String> {
        let mut out = FitArgs {
            model: None,
            grid: 5,
            holdout: 3,
            lambda: 1e-8,
            racks: 1,
            servers_per_rack: 4,
            lo: [100.0, 24.0, 0.02],
            hi: [200.0, 30.0, 0.12],
            points: default_points,
            csv: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            fn num<T: std::str::FromStr>(name: &str, value: String) -> Result<T, String>
            where
                T::Err: std::fmt::Display,
            {
                value.parse().map_err(|e| format!("{name}: {e}"))
            }
            match arg.as_str() {
                "--model" => out.model = Some(take("--model")?),
                "--grid" => out.grid = num("--grid", take("--grid")?)?,
                "--holdout" => out.holdout = num("--holdout", take("--holdout")?)?,
                "--lambda" => out.lambda = num("--lambda", take("--lambda")?)?,
                "--racks" => out.racks = num("--racks", take("--racks")?)?,
                "--servers-per-rack" => {
                    out.servers_per_rack = num("--servers-per-rack", take("--servers-per-rack")?)?
                }
                "--baseline-lo" => out.lo[0] = num("--baseline-lo", take("--baseline-lo")?)?,
                "--baseline-hi" => out.hi[0] = num("--baseline-hi", take("--baseline-hi")?)?,
                "--supply-lo" => out.lo[1] = num("--supply-lo", take("--supply-lo")?)?,
                "--supply-hi" => out.hi[1] = num("--supply-hi", take("--supply-hi")?)?,
                "--leakage-lo" => out.lo[2] = num("--leakage-lo", take("--leakage-lo")?)?,
                "--leakage-hi" => out.hi[2] = num("--leakage-hi", take("--leakage-hi")?)?,
                "--points" => out.points = num("--points", take("--points")?)?,
                "--csv" => out.csv = Some(take("--csv")?),
                other => return Err(format!("unknown surrogate argument {other:?}")),
            }
        }
        Ok(out)
    }

    fn model(&self) -> Result<&str, String> {
        self.model
            .as_deref()
            .ok_or_else(|| "surrogate requires --model FILE".into())
    }
}

/// The extraction probe every artifact in this CLI uses: the same 120 W
/// spike over a 5-minute window at 1-minute lags as the extraction
/// goldens and the pinned `matrix/heat_matrix_extraction` bench.
fn settings(racks: usize, servers_per_rack: usize) -> ExtractionSettings {
    ExtractionSettings {
        config: CfdConfig {
            racks,
            servers_per_rack,
            ..CfdConfig::paper_default()
        },
        spike: Power::from_watts(120.0),
        window: Duration::from_minutes(5.0),
        lag_step: Duration::from_minutes(1.0),
    }
}

/// Max absolute prediction error vs a fresh extraction at `q`, as
/// `(inlet °C, response K/W)`.
fn query_errors(model: &SurrogateModel, q: &SurrogateQuery) -> Result<(f64, f64), String> {
    let predicted = model.predict(q);
    let truth = model.settings().extract(q)?;
    let mut inlet = 0.0f64;
    for (p, t) in predicted
        .baseline_inlets_celsius()
        .iter()
        .zip(truth.baseline_inlets_celsius())
    {
        inlet = inlet.max((p - t).abs());
    }
    let mut resp = 0.0f64;
    let n = model.server_count();
    for s in 0..n {
        for r in 0..n {
            for l in 0..model.lag_count() {
                let d = predicted.matrix().response(s, r, l) - truth.matrix().response(s, r, l);
                resp = resp.max(d.abs());
            }
        }
    }
    Ok((inlet, resp))
}

fn read_model(path: &str) -> Result<SurrogateModel, String> {
    let line = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    SurrogateModel::from_flat_json(line.trim()).map_err(|e| format!("{path}: {e}"))
}

fn run_fit(args: &FitArgs) -> Result<(), String> {
    let path = args.model()?;
    let domain = SurrogateDomain {
        lo: args.lo,
        hi: args.hi,
    };
    let model = SurrogateModel::fit(
        settings(args.racks, args.servers_per_rack),
        domain,
        FitOptions {
            grid_points: args.grid,
            holdout_every: args.holdout,
            lambda: args.lambda,
        },
    )?;
    if let Some(parent) = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {path}: {e}"))?;
    }
    std::fs::write(path, model.to_flat_json() + "\n")
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    let (train, holdout) = model.sample_counts();
    println!("surrogate fit: {path}");
    println!(
        "  servers {}  lags {}  grid {}^3 ({train} train + {holdout} holdout extractions)",
        model.server_count(),
        model.lag_count(),
        args.grid,
    );
    println!(
        "  inlet error bound    max {:.3e} °C   mean {:.3e} °C",
        model.max_abs_err_inlet_c(),
        model.mean_abs_err_inlet_c(),
    );
    println!(
        "  response error bound max {:.3e} K/W  mean {:.3e} K/W",
        model.max_abs_err_response(),
        model.mean_abs_err_response(),
    );
    Ok(())
}

fn run_validate(args: &FitArgs) -> Result<(), String> {
    let model = read_model(args.model()?)?;
    let points = args.points.max(1);
    let domain = *model.domain();
    // Probe cell centers: offset half a step from the training grid, so
    // every probe is an off-grid point the fit never saw.
    let axis = |i: usize, step: usize| -> f64 {
        domain.lo[i] + (domain.hi[i] - domain.lo[i]) * (step as f64 + 0.5) / points as f64
    };
    let (mut max_inlet, mut max_resp) = (0.0f64, 0.0f64);
    for i in 0..points {
        for j in 0..points {
            for k in 0..points {
                let q = SurrogateQuery {
                    baseline_w: axis(0, i),
                    supply_c: axis(1, j),
                    leakage: axis(2, k),
                };
                let (inlet, resp) = query_errors(&model, &q)?;
                max_inlet = max_inlet.max(inlet);
                max_resp = max_resp.max(resp);
            }
        }
    }
    println!(
        "surrogate validate: {} off-grid probes ({points}^3)",
        points * points * points
    );
    println!(
        "  inlet error    max {max_inlet:.3e} °C   (stored holdout bound {:.3e} °C)",
        model.max_abs_err_inlet_c()
    );
    println!(
        "  response error max {max_resp:.3e} K/W  (stored holdout bound {:.3e} K/W)",
        model.max_abs_err_response()
    );
    Ok(())
}

fn run_sweep(args: &FitArgs) -> Result<(), String> {
    let model = read_model(args.model()?)?;
    let path = args
        .csv
        .as_deref()
        .ok_or_else(|| String::from("sweep requires --csv FILE"))?;
    let points = args.points.max(2);
    let domain = *model.domain();
    // Sweep 20% beyond each edge so the CSV shows where the trust region
    // ends and what extrapolation would cost there.
    let axis = |i: usize, step: usize| -> f64 {
        let width = domain.hi[i] - domain.lo[i];
        domain.lo[i] - 0.2 * width + 1.4 * width * step as f64 / (points - 1) as f64
    };
    let mut csv = String::from(
        "baseline_w,supply_c,leakage,in_domain,max_abs_err_inlet_c,max_abs_err_response\n",
    );
    let mut rows = 0usize;
    let mut skipped = 0usize;
    for i in 0..points {
        for j in 0..points {
            for k in 0..points {
                let q = SurrogateQuery {
                    baseline_w: axis(0, i),
                    supply_c: axis(1, j),
                    leakage: axis(2, k).clamp(0.0, 0.49),
                };
                // Points past the physical envelope (e.g. supply above the
                // derate onset) cannot be extracted; skip and report.
                let (inlet, resp) = match query_errors(&model, &q) {
                    Ok(errors) => errors,
                    Err(_) => {
                        skipped += 1;
                        continue;
                    }
                };
                csv.push_str(&format!(
                    "{},{},{},{},{inlet},{resp}\n",
                    q.baseline_w,
                    q.supply_c,
                    q.leakage,
                    u8::from(domain.contains(&q)),
                ));
                rows += 1;
            }
        }
    }
    if let Some(parent) = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {path}: {e}"))?;
    }
    std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("surrogate sweep: {rows} rows -> {path}");
    if skipped > 0 {
        println!("  ({skipped} probe(s) past the physical envelope skipped)");
    }
    Ok(())
}

/// Entry point for `experiments surrogate <fit|validate|sweep> ...`.
pub fn run_surrogate(_opts: &Options, args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("surrogate requires a subcommand: fit, validate, or sweep".into());
    };
    match sub.as_str() {
        "fit" => run_fit(&FitArgs::parse(&args[1..], 4)?),
        "validate" => run_validate(&FitArgs::parse(&args[1..], 4)?),
        "sweep" => run_sweep(&FitArgs::parse(&args[1..], 6)?),
        other => Err(format!(
            "unknown surrogate subcommand {other:?} (expected fit, validate, or sweep)"
        )),
    }
}
