//! Section VII defense evaluation.

use hbm_core::{ColoConfig, ForesightedPolicy, Simulation};
use hbm_defense::{
    prevention::jamming_noise_for_accuracy, MoveInInspection, ServerCalorimeter, SlaMonitor,
    ThermalResidualDetector,
};
use hbm_thermal::ZoneModel;
use hbm_units::{Power, TemperatureDelta};

use crate::common::{heading, trace_recorder, write_csv, Options, Sink};
use crate::outln;

/// Evaluates the Section VII defenses against a Foresighted campaign.
pub fn defense(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Section VII — defense evaluation against a Foresighted campaign",
    );
    let config = ColoConfig::paper_default();
    let policy = ForesightedPolicy::paper_default(14.0, opts.seed);
    let sim = Simulation::new(config.clone(), Box::new(policy), opts.seed);
    // One-lane batch: same sharded engine as the attack sweeps, and the
    // determinism contract keeps the records bit-identical to a scalar run.
    let sims = hbm_core::run_sharded(vec![sim], opts.warmup_slots()).sims;
    let mut run = hbm_core::run_sharded_recorded(sims, opts.slots().min(60 * 1440));
    let report = run.reports.remove(0);
    let records = run.records.remove(0);
    outln!(
        out,
        "  campaign under test: {:.3} % emergency time, {} emergencies",
        100.0 * report.metrics.emergency_fraction(),
        report.metrics.emergency_events
    );

    // --- Thermal-residual detector (power/temperature cross-check). ---
    let mut detector = ThermalResidualDetector::new(
        ZoneModel::new(
            config.cooling,
            config.zone_heat_capacity_j_per_k,
            config.zone_pulldown_w_per_k,
        ),
        TemperatureDelta::from_celsius(0.8),
        3,
    );
    let mut residual_trace = trace_recorder(opts, "defense_residual");
    let mut attack_runs = 0u64;
    let mut detected_runs = 0u64;
    let mut latencies = Vec::new();
    let mut in_run = false;
    let mut run_detected = false;
    let mut run_start = 0usize;
    for (i, r) in records.iter().enumerate() {
        let alarm = match residual_trace.as_deref_mut() {
            Some(rec) => {
                detector.observe_recorded(r.slot, r.metered_total, r.inlet, config.slot, rec)
            }
            None => detector.observe(r.metered_total, r.inlet, config.slot),
        };
        let attacking = r.attack_load > Power::ZERO;
        if attacking && !in_run {
            in_run = true;
            run_detected = false;
            run_start = i;
            attack_runs += 1;
        }
        if in_run && alarm && !run_detected {
            run_detected = true;
            detected_runs += 1;
            latencies.push((i - run_start + 1) as f64);
        }
        if !attacking && in_run {
            in_run = false;
        }
    }
    let mean_latency = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    outln!(out,
        "  residual detector: {detected_runs}/{attack_runs} sustained attack runs flagged, mean latency {mean_latency:.1} min, total alarms {}",
        detector.alarm_count()
    );

    // --- Per-server calorimetry (pinpointing the attacker). ---
    let calorimeter = ServerCalorimeter::new(Power::from_watts(40.0));
    let attack_record = records
        .iter()
        .find(|r| r.attack_load > Power::from_watts(900.0));
    if let Some(r) = attack_record {
        // During an attack each of the 4 attack servers runs at 450 W on a
        // 200 W metered budget; a benign server at its trace share.
        let benign_share = r.benign_actual / config.benign_server_count() as f64;
        let airflow = 0.018; // kg/s per server, matching the CFD model
        let mut readings = Vec::new();
        for _ in 0..config.benign_server_count() {
            readings.push(hbm_defense::reading_for(
                benign_share,
                benign_share,
                r.inlet,
                airflow,
            ));
        }
        for _ in 0..config.attacker_servers {
            let actual =
                (config.attacker_capacity + r.attack_load) / config.attacker_servers as f64;
            let metered = config.attacker_capacity / config.attacker_servers as f64;
            readings.push(hbm_defense::reading_for(actual, metered, r.inlet, airflow));
        }
        let flagged = calorimeter.flag_servers(&readings);
        outln!(
            out,
            "  calorimetry: flagged servers {:?} (expected: the 4 attacker servers, indices 36–39)",
            flagged
        );
    }

    // --- SLA-statistics (CUSUM) monitor. ---
    let mut monitor = SlaMonitor::new(0.0005, 0.001, 12.0);
    let mut first_alarm = None;
    for (i, r) in records.iter().enumerate() {
        if monitor.observe(r.capping) && first_alarm.is_none() {
            first_alarm = Some(i);
        }
    }
    match first_alarm {
        Some(i) => outln!(
            out,
            "  SLA monitor: first alarm after {:.1} days (observed rate {:.3} %)",
            i as f64 / 1440.0,
            100.0 * monitor.observed_rate()
        ),
        None => outln!(
            out,
            "  SLA monitor: no alarm (campaign hides under the SLA)"
        ),
    }

    // --- Prevention. ---
    let inspection = MoveInInspection::new(0.8, 0.95);
    outln!(out,
        "  move-in inspection (80 % coverage, 95 % recognition): P(catch ≥1 of 4 batteries) = {:.1} %",
        100.0 * inspection.detection_probability(config.attacker_servers)
    );
    let jam = jamming_noise_for_accuracy(
        Power::from_kilowatts(0.6),
        config.side_channel.samples_per_estimate,
    );
    outln!(out,
        "  jamming: {:.1} kW-equivalent per-sample noise degrades the channel to ±0.6 kW (see Fig. 12b for the impact)",
        jam.as_kilowatts()
    );

    write_csv(
        opts,
        out,
        "defense",
        "metric,value",
        &[
            format!("attack_runs,{attack_runs}"),
            format!("runs_detected,{detected_runs}"),
            format!("mean_detection_latency_min,{mean_latency:.2}"),
            format!(
                "sla_first_alarm_days,{}",
                first_alarm
                    .map(|i| format!("{:.2}", i as f64 / 1440.0))
                    .unwrap_or_else(|| "none".into())
            ),
            format!(
                "inspection_catch_probability,{:.4}",
                inspection.detection_probability(config.attacker_servers)
            ),
        ],
    );
}
