//! `experiments client` — a thin command-line client for the `hbm-serve`
//! experiment API (see `docs/SERVICE.md`).
//!
//! ```text
//! experiments client [--addr HOST:PORT] create --policy NAME [--days N] ...
//! experiments client [--addr HOST:PORT] list
//! experiments client [--addr HOST:PORT] step <id> --slots N
//! experiments client [--addr HOST:PORT] perturb <id> [--util F] [--attack-load-kw F] ...
//! experiments client [--addr HOST:PORT] state <id>
//! experiments client [--addr HOST:PORT] metrics <id>
//! experiments client [--addr HOST:PORT] delete <id>
//! ```
//!
//! Each action maps to exactly one HTTP request; the response body (one
//! flat-JSON line) is printed to stdout verbatim, so output pipes into
//! the same tooling that consumes `experiments simulate` lines. Non-2xx
//! responses print the server's error to stderr and exit non-zero.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::common::Options;
use hbm_core::{Perturbation, Scenario};

const DEFAULT_ADDR: &str = "127.0.0.1:7070";

pub const USAGE: &str = "usage: experiments client [--addr HOST:PORT] <action>
  create --policy NAME [--days N] [--warmup-days N] [--seed N]
         [--util F] [--attack-load-kw F] [--battery-kwh F] [--threshold-c F] [--cap-w F]
  list
  step <id> --slots N
  perturb <id> [--util F] [--attack-load-kw F] [--battery-kwh F] [--threshold-c F] [--cap-w F]
  state <id>
  metrics <id>
  delete <id>";

/// Sends one request and returns `(status, body)`, reading to EOF (the
/// server always answers `Connection: close`).
fn roundtrip(addr: &str, request: &[u8]) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(request)
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response {response:?}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn request_bytes(method: &str, path: &str, body: Option<&str>) -> Vec<u8> {
    match body {
        Some(body) => format!(
            "{method} {path} HTTP/1.1\r\nHost: client\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\nHost: client\r\n\r\n"),
    }
    .into_bytes()
}

/// Sends one request and prints the response body; 2xx → `Ok`.
fn call(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<(), String> {
    let (status, body) = roundtrip(addr, &request_bytes(method, path, body))?;
    if (200..300).contains(&status) {
        print!("{body}");
        if !body.ends_with('\n') {
            println!();
        }
        Ok(())
    } else {
        Err(format!("{method} {path} -> {status}: {}", body.trim()))
    }
}

/// Parses the shared scenario-override flags (`--util`, `--attack-load-kw`,
/// `--battery-kwh`, `--threshold-c`, `--cap-w`) into a [`Perturbation`];
/// unrecognized flags are returned for the caller to handle.
fn parse_overrides(args: &[String]) -> Result<(Perturbation, Vec<String>), String> {
    let mut p = Perturbation::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take_f64 = |name: &str| -> Result<f64, String> {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--util" => p.utilization = Some(take_f64("--util")?),
            "--attack-load-kw" => p.attack_load_kw = Some(take_f64("--attack-load-kw")?),
            "--battery-kwh" => p.battery_kwh = Some(take_f64("--battery-kwh")?),
            "--threshold-c" => p.threshold_c = Some(take_f64("--threshold-c")?),
            "--cap-w" => p.cap_w = Some(take_f64("--cap-w")?),
            other => rest.push(other.to_string()),
        }
    }
    Ok((p, rest))
}

fn expect_id(rest: &[String], action: &str) -> Result<String, String> {
    match rest {
        [id] if !id.starts_with("--") => Ok(id.clone()),
        [] => Err(format!("{action} requires an experiment id")),
        other => Err(format!("unexpected {action} arguments {other:?}")),
    }
}

/// Runs `experiments client ...`. `opts` supplies the `--days`,
/// `--warmup-days`, and `--seed` values (already parsed by
/// [`Options::parse`]) that `create` folds into the scenario body.
pub fn run_client(opts: &Options, args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--addr" {
            addr = it
                .next()
                .cloned()
                .ok_or_else(|| "--addr requires a value".to_string())?;
        } else {
            rest.push(arg.clone());
        }
    }
    let Some((action, action_args)) = rest.split_first() else {
        return Err("client requires an action".into());
    };
    match action.as_str() {
        "create" => {
            let mut scenario = Scenario::new("");
            scenario.days = opts.days;
            scenario.warmup_days = opts.warmup_days;
            scenario.seed = opts.seed;
            let (p, extra) = parse_overrides(action_args)?;
            let mut it = extra.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--policy" => {
                        scenario.policy = it
                            .next()
                            .cloned()
                            .ok_or_else(|| "--policy requires a value".to_string())?
                    }
                    other => return Err(format!("unknown create argument {other:?}")),
                }
            }
            if scenario.policy.is_empty() {
                return Err("create requires --policy NAME".into());
            }
            let scenario = p.apply(&scenario);
            call(
                &addr,
                "POST",
                "/v1/experiments",
                Some(&scenario.to_flat_json()),
            )
        }
        "list" => call(&addr, "GET", "/v1/experiments", None),
        "step" => {
            let mut slots: Option<u64> = None;
            let mut plain = Vec::new();
            let mut it = action_args.iter();
            while let Some(arg) = it.next() {
                if arg == "--slots" {
                    slots = Some(
                        it.next()
                            .ok_or_else(|| "--slots requires a value".to_string())?
                            .parse()
                            .map_err(|e| format!("--slots: {e}"))?,
                    );
                } else {
                    plain.push(arg.clone());
                }
            }
            let id = expect_id(&plain, "step")?;
            let slots = slots.ok_or_else(|| "step requires --slots N".to_string())?;
            let body = format!("{{\"slots\":{slots}}}");
            call(
                &addr,
                "POST",
                &format!("/v1/experiments/{id}/step"),
                Some(&body),
            )
        }
        "perturb" => {
            let (p, plain) = parse_overrides(action_args)?;
            let id = expect_id(&plain, "perturb")?;
            if p.is_empty() {
                return Err("perturb requires at least one override flag".into());
            }
            call(
                &addr,
                "POST",
                &format!("/v1/experiments/{id}/perturb"),
                Some(&p.to_flat_json()),
            )
        }
        "state" => {
            let id = expect_id(action_args, "state")?;
            call(&addr, "GET", &format!("/v1/experiments/{id}/state"), None)
        }
        "metrics" => {
            let id = expect_id(action_args, "metrics")?;
            call(&addr, "GET", &format!("/v1/experiments/{id}/metrics"), None)
        }
        "delete" => {
            let id = expect_id(action_args, "delete")?;
            call(&addr, "DELETE", &format!("/v1/experiments/{id}"), None)
        }
        other => Err(format!("unknown client action {other:?}")),
    }
}
