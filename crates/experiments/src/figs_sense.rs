//! Sensitivity figures: 11a and 12a–e.

use hbm_core::{ColoConfig, ForesightedPolicy, MyopicPolicy};
use hbm_thermal::{CoolingSystem, ZoneModel};
use hbm_units::{Energy, Power, Temperature};

use crate::common::{heading, run_policy, write_csv, Options, Sink};
use crate::outln;

/// Fig. 11a: time for the inlet to exceed 32 °C vs cooling overload, for
/// several supply temperatures.
pub fn fig11a(opts: &Options, out: &mut Sink) {
    heading(out, "Fig. 11a — overload time to exceed 32 °C");
    let threshold = Temperature::from_celsius(32.0);
    let mut rows = Vec::new();
    outln!(
        out,
        "  overload   T_s=27 °C   T_s=28 °C   T_s=29 °C   (minutes)"
    );
    for overload_kw in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
        let overload = Power::from_kilowatts(overload_kw);
        let mut cells = Vec::new();
        for supply_c in [27.0, 28.0, 29.0] {
            let cooling =
                CoolingSystem::paper_default().with_supply(Temperature::from_celsius(supply_c));
            let zone = ZoneModel::new(cooling, 40_000.0, 700.0);
            let t = zone
                .time_to_reach_from(Temperature::from_celsius(supply_c), threshold, overload)
                .as_minutes();
            cells.push(t);
        }
        outln!(
            out,
            "  {overload_kw:5.2} kW   {:8.2}    {:8.2}    {:8.2}",
            cells[0],
            cells[1],
            cells[2]
        );
        rows.push(format!(
            "{overload_kw},{:.3},{:.3},{:.3}",
            cells[0], cells[1], cells[2]
        ));
    }
    outln!(
        out,
        "  (1 kW of overload crosses the threshold in under 4 minutes)"
    );
    write_csv(
        opts,
        out,
        "fig11a",
        "overload_kw,min_at_27c,min_at_28c,min_at_29c",
        &rows,
    );
}

/// Shared shape of the Fig. 12 sensitivity panels: sweep one knob, report
/// annual emergency time for Myopic and Foresighted.
fn sweep<K: std::fmt::Display + Copy + Send>(
    opts: &Options,
    out: &mut Sink,
    name: &str,
    knob_name: &str,
    values: &[K],
    configure: impl Fn(K) -> ColoConfig + Sync,
) {
    outln!(
        out,
        "  {knob_name:>14}   myopic emerg%   foresighted emerg%"
    );
    // Each knob value is an independent pair of year-long simulations, and
    // within a value the two policies are independent too — fan both levels
    // out and emit the table in knob order afterwards.
    let results = hbm_par::par_map(values.to_vec(), |v| {
        let config = configure(v);
        let reports = hbm_par::par_map(vec![false, true], |foresighted| {
            if foresighted {
                run_policy(
                    &config,
                    Box::new(ForesightedPolicy::new(
                        14.0,
                        config.capacity,
                        config.battery.capacity,
                        config.battery.max_charge_rate,
                        config.attack_load,
                        config.slot,
                        opts.seed,
                    )),
                    opts,
                    true,
                )
            } else {
                run_policy(
                    &config,
                    Box::new(MyopicPolicy::with_attack(
                        Power::from_kilowatts(7.4),
                        config.attack_load,
                        config.slot,
                    )),
                    opts,
                    false,
                )
            }
        });
        let m = 100.0 * reports[0].metrics.emergency_fraction();
        let f = 100.0 * reports[1].metrics.emergency_fraction();
        (v, m, f)
    });
    let mut rows = Vec::new();
    for (v, m, f) in results {
        outln!(out, "  {v:>14}   {m:13.3}   {f:18.3}");
        rows.push(format!("{v},{m:.4},{f:.4}"));
    }
    write_csv(
        opts,
        out,
        name,
        &format!("{knob_name},myopic_emergency_pct,foresighted_emergency_pct"),
        &rows,
    );
}

/// Fig. 12a: battery capacity sensitivity.
pub fn fig12a(opts: &Options, out: &mut Sink) {
    heading(out, "Fig. 12a — sensitivity to battery capacity");
    sweep(
        opts,
        out,
        "fig12a",
        "battery_kwh",
        &[0.1, 0.2, 0.3, 0.4],
        |kwh| ColoConfig::paper_default().with_battery_capacity(Energy::from_kilowatt_hours(kwh)),
    );
}

/// Fig. 12b: side-channel noise sensitivity.
pub fn fig12b(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 12b — sensitivity to side-channel estimation noise",
    );
    sweep(
        opts,
        out,
        "fig12b",
        "noise_kw",
        &[0.0, 0.2, 0.4, 0.6, 0.8],
        |kw| ColoConfig::paper_default().with_side_channel_noise(Power::from_kilowatts(kw)),
    );
}

/// Fig. 12c: attack load sensitivity.
pub fn fig12c(opts: &Options, out: &mut Sink) {
    heading(out, "Fig. 12c — sensitivity to attack load");
    sweep(
        opts,
        out,
        "fig12c",
        "attack_kw",
        &[0.5, 1.0, 1.5, 2.0],
        |kw| ColoConfig::paper_default().with_attack_load(Power::from_kilowatts(kw)),
    );
}

/// Fig. 12d: capacity-utilization sensitivity.
pub fn fig12d(opts: &Options, out: &mut Sink) {
    heading(
        out,
        "Fig. 12d — sensitivity to average capacity utilization",
    );
    sweep(
        opts,
        out,
        "fig12d",
        "utilization",
        &[0.60, 0.68, 0.75, 0.82, 0.90],
        |u| ColoConfig::paper_default().with_mean_utilization(u),
    );
}

/// Fig. 12e: battery capacity the attacker needs to keep its impact as the
/// operator adds cooling headroom.
pub fn fig12e(opts: &Options, out: &mut Sink) {
    heading(out, "Fig. 12e — battery needed vs extra cooling capacity");
    // Baseline impact at defaults.
    let baseline_config = ColoConfig::paper_default();
    let baseline = run_policy(
        &baseline_config,
        Box::new(ForesightedPolicy::paper_default(14.0, opts.seed)),
        opts,
        true,
    );
    let target = baseline.metrics.emergency_fraction() * 0.8;
    outln!(
        out,
        "  target impact: ≥{:.3} % emergency time (80 % of the no-headroom baseline)",
        100.0 * target
    );
    // The five headroom settings search independently; the inner battery
    // search stays serial because it early-exits at the first size that
    // restores the target impact.
    let results = hbm_par::par_map(vec![0.0, 0.025, 0.05, 0.075, 0.10], |extra| {
        let mut needed = None;
        for battery_kwh in [0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.4] {
            // More cooling headroom also calls for a bigger attack load:
            // scale it so the peak overload stays comparable.
            let config = ColoConfig::paper_default()
                .with_extra_cooling(extra)
                .with_attack_load(Power::from_kilowatts(1.0 + 8.0 * extra))
                .with_battery_capacity(Energy::from_kilowatt_hours(battery_kwh));
            // The attacker calibrates against the *cooling* capacity here —
            // with headroom installed, that is what must be overloaded.
            let report = run_policy(
                &config,
                Box::new(ForesightedPolicy::new(
                    14.0,
                    config.cooling.capacity,
                    config.battery.capacity,
                    config.battery.max_charge_rate,
                    config.attack_load,
                    config.slot,
                    opts.seed,
                )),
                opts,
                true,
            );
            if report.metrics.emergency_fraction() >= target {
                needed = Some(battery_kwh);
                break;
            }
        }
        (extra, needed)
    });
    let mut rows = Vec::new();
    for (extra, needed) in results {
        match needed {
            Some(kwh) => {
                outln!(
                    out,
                    "  extra cooling {:4.1} %  →  battery needed {kwh:.1} kWh",
                    100.0 * extra
                );
                rows.push(format!("{extra},{kwh}"));
            }
            None => {
                outln!(
                    out,
                    "  extra cooling {:4.1} %  →  not reachable with ≤1.4 kWh",
                    100.0 * extra
                );
                rows.push(format!("{extra},inf"));
            }
        }
    }
    write_csv(
        opts,
        out,
        "fig12e",
        "extra_cooling_frac,battery_kwh_needed",
        &rows,
    );
}
