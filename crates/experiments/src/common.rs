//! Shared plumbing for the experiment harness: run-length options, CSV
//! output, table printing, and simulation helpers.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use hbm_core::{scenario, AttackPolicy, ColoConfig, Metrics, SimReport, Simulation};

/// Count of I/O failures (CSV, manifest, timings JSON) across the whole
/// run; the driver exits nonzero when any write failed, so automation
/// never mistakes a partially written results directory for a clean run.
pub static IO_ERRORS: AtomicUsize = AtomicUsize::new(0);

/// Records one I/O failure: counted for the exit code and echoed through
/// the sink so the message lands next to the experiment that hit it.
pub fn io_error(out: &mut Sink, message: String) {
    IO_ERRORS.fetch_add(1, Ordering::Relaxed);
    out.line(format!("error: {message}"));
}

/// Global experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Measured horizon, days (the paper uses a year).
    pub days: u64,
    /// Learning warm-up horizon for Foresighted, days.
    pub warmup_days: u64,
    /// Base seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Worker threads for the experiment harness (1 = serial,
    /// 0 = one per available core).
    pub jobs: usize,
    /// Directory for per-step JSONL telemetry traces (`--trace DIR`;
    /// `None` disables recording entirely).
    pub trace: Option<PathBuf>,
    /// Whether to collect and print kernel timing spans (`--timings`).
    pub timings: bool,
    /// Optional file for the span timings as criterion-shaped JSON
    /// (`--timings-json FILE`; implies `--timings`).
    pub timings_json: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            days: 365,
            warmup_days: 180,
            seed: 1,
            out_dir: PathBuf::from("results"),
            jobs: 1,
            trace: None,
            timings: false,
            timings_json: None,
        }
    }
}

impl Options {
    /// Parses `--days N`, `--warmup-days N`, `--seed N`, `--out DIR`,
    /// `--jobs N`, `--trace DIR`, `--timings`, and `--timings-json FILE`
    /// from the raw argument list, returning the remaining positional
    /// arguments.
    pub fn parse(args: &[String]) -> Result<(Options, Vec<String>), String> {
        let mut opts = Options::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--days" => {
                    opts.days = take("--days")?
                        .parse()
                        .map_err(|e| format!("--days: {e}"))?
                }
                "--warmup-days" => {
                    opts.warmup_days = take("--warmup-days")?
                        .parse()
                        .map_err(|e| format!("--warmup-days: {e}"))?
                }
                "--seed" => {
                    opts.seed = take("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--out" => opts.out_dir = PathBuf::from(take("--out")?),
                "--trace" => opts.trace = Some(PathBuf::from(take("--trace")?)),
                "--timings" => opts.timings = true,
                "--timings-json" => {
                    opts.timings_json = Some(PathBuf::from(take("--timings-json")?));
                    opts.timings = true;
                }
                "--jobs" => {
                    opts.jobs = take("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?;
                    if opts.jobs == 0 {
                        opts.jobs = std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1);
                    }
                }
                other => rest.push(other.to_string()),
            }
        }
        Ok((opts, rest))
    }

    /// Measured slots.
    pub fn slots(&self) -> u64 {
        self.days * 24 * 60
    }

    /// Warm-up slots.
    pub fn warmup_slots(&self) -> u64 {
        self.warmup_days * 24 * 60
    }

    /// Canonical one-line description of the run configuration, hashed into
    /// the manifest's `config_hash`. Delegates to the shared
    /// [`hbm_core::scenario`] form so CLI and `hbm-serve` keys never drift.
    pub fn config_canonical(&self, ids: &[String]) -> String {
        scenario::config_canonical_base(&ids.join("+"), self.days, self.warmup_days, self.seed)
    }
}

/// Opens a per-run JSONL trace sink at `<trace>/<name>.jsonl`, or `None`
/// when tracing is off (the untraced path costs one branch per slot).
///
/// Each run owns its own file, so `--jobs N` workers never contend and the
/// traces are byte-identical whatever the thread count.
pub fn trace_recorder(opts: &Options, name: &str) -> Option<Box<hbm_telemetry::JsonlRecorder>> {
    let dir = opts.trace.as_ref()?;
    let path = dir.join(format!("{name}.jsonl"));
    match hbm_telemetry::JsonlRecorder::create(&path) {
        Ok(rec) => Some(Box::new(rec)),
        Err(e) => {
            eprintln!("warning: cannot create trace {}: {e}", path.display());
            None
        }
    }
}

/// Buffered console output of one experiment.
///
/// Runners write here instead of stdout so experiments running on worker
/// threads don't interleave their tables; the driver flushes each buffer
/// whole, in submission order. CSV files are still written immediately
/// (each experiment owns its own files, so parallel runs don't conflict).
#[derive(Debug, Default)]
pub struct Sink {
    lines: Vec<String>,
}

impl Sink {
    /// An empty buffer.
    pub fn new() -> Self {
        Sink::default()
    }

    /// Appends one output line.
    pub fn line(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Writes the buffered lines to stdout and clears the buffer.
    pub fn flush_to_stdout(&mut self) {
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in self.lines.drain(..) {
            let _ = writeln!(out, "{line}");
        }
    }
}

/// `println!` into a [`Sink`]: `outln!(out, "fmt {}", x)` or `outln!(out)`.
#[macro_export]
macro_rules! outln {
    ($sink:expr) => { $sink.line(String::new()) };
    ($sink:expr, $($fmt:tt)*) => { $sink.line(format!($($fmt)*)) };
}

/// Writes rows as CSV into `<out>/<name>.csv` and echoes where it went.
/// A failed write is reported through [`io_error`], so the run still
/// completes its remaining experiments but exits nonzero.
pub fn write_csv(opts: &Options, out: &mut Sink, name: &str, header: &str, rows: &[String]) {
    if let Err(e) = fs::create_dir_all(&opts.out_dir) {
        io_error(
            out,
            format!("cannot create {}: {e}", opts.out_dir.display()),
        );
        return;
    }
    let path = opts.out_dir.join(format!("{name}.csv"));
    match write_rows(&path, header, rows) {
        Ok(()) => out.line(format!("  [csv] {}", path.display())),
        Err(e) => io_error(out, format!("cannot write {}: {e}", path.display())),
    }
}

fn write_rows(path: &std::path::Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(fs::File::create(path)?);
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    f.flush()
}

/// Prints a section heading.
pub fn heading(out: &mut Sink, title: &str) {
    out.line(String::new());
    out.line(format!("=== {title} ==="));
}

/// Builds and runs a simulation, warming up learning policies first.
/// Thin wrapper over [`hbm_core::scenario::run_policy`] — the same code
/// path `hbm-serve` executes, so served and CLI metrics stay identical.
pub fn run_policy(
    config: &ColoConfig,
    policy: Box<dyn AttackPolicy>,
    opts: &Options,
    needs_warmup: bool,
) -> SimReport {
    scenario::run_policy(
        config,
        policy,
        opts.seed,
        opts.warmup_slots(),
        opts.slots(),
        needs_warmup,
    )
}

/// Warms up the lanes of `sims` flagged `true` through the sharded batch
/// engine and hands every simulation back in input order. Dropping the
/// warm-up run's reports performs exactly the metric reset
/// [`Simulation::warmup`] does, so each lane continues bit-identically to a
/// scalar `warmup` call (the batch determinism contract).
pub fn warmup_sims_batch(sims: Vec<(Simulation, bool)>, warmup_slots: u64) -> Vec<Simulation> {
    let mut lanes: Vec<Option<Simulation>> = Vec::with_capacity(sims.len());
    let mut warm = Vec::new();
    let mut warm_at = Vec::new();
    for (i, (sim, needs_warmup)) in sims.into_iter().enumerate() {
        if needs_warmup && warmup_slots > 0 {
            warm_at.push(i);
            warm.push(sim);
            lanes.push(None);
        } else {
            lanes.push(Some(sim));
        }
    }
    if !warm.is_empty() {
        let warmed = hbm_core::run_sharded(warm, warmup_slots).sims;
        for (i, sim) in warm_at.into_iter().zip(warmed) {
            lanes[i] = Some(sim);
        }
    }
    lanes.into_iter().map(|s| s.expect("lane")).collect()
}

/// Runs pre-built simulations through the sharded batch engine: the lanes
/// flagged `true` (learning policies) warm up together first via
/// [`warmup_sims_batch`], then every lane runs the measured horizon in
/// lockstep. Reports come back in input order, byte-identical to running
/// each simulation alone through [`run_policy`] — this is the batched
/// counterpart the flat experiment sweeps ride.
pub fn run_sims_batch(
    sims: Vec<(Simulation, bool)>,
    warmup_slots: u64,
    slots: u64,
) -> Vec<SimReport> {
    let warmed = warmup_sims_batch(sims, warmup_slots);
    hbm_core::run_sharded(warmed, slots).reports
}

/// The canonical trio of repeated-attack policies at their default
/// settings (shared with `hbm-serve` via [`hbm_core::scenario`]).
pub fn default_policies(
    config: &ColoConfig,
    opts: &Options,
) -> Vec<(String, Box<dyn AttackPolicy>, bool)> {
    scenario::default_policies(config, opts.seed)
}

/// One-line metrics summary.
pub fn summary_line(name: &str, m: &Metrics) -> String {
    format!(
        "{name:12}  attack {:5.2} h/day   emergencies {:6.3} % of time ({} events)   avg dT {:5.3} K   latency x{:4.2}   outages {}",
        m.attack_hours_per_day(),
        100.0 * m.emergency_fraction(),
        m.emergency_events,
        m.avg_delta_t().as_celsius(),
        m.mean_emergency_degradation(),
        m.outage_events,
    )
}
