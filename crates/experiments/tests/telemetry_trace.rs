//! Telemetry must be an observer, not a participant: tracing cannot change
//! any published CSV, the JSONL channels must agree with the CSV columns
//! they mirror, and the run manifest's deterministic fields must not depend
//! on `--jobs`.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

use hbm_telemetry::{deterministic_manifest_fields, parse_jsonl_line, JsonValue};

fn base_dir(sub: &str) -> std::path::PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(sub);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(ids: &[&str], out_dir: &Path, extra: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(ids)
        .args(["--days", "1", "--warmup-days", "0", "--seed", "42"])
        .arg("--out")
        .arg(out_dir)
        .args(extra)
        .status()
        .expect("experiments binary runs");
    assert!(status.success(), "experiments {ids:?} {extra:?} failed");
}

fn read_csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "csv") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&path).expect("csv readable"));
        }
    }
    out
}

/// Enabling `--trace` (and `--timings`) must leave every CSV byte-identical:
/// the recorder only observes values the simulator computes anyway.
#[test]
fn tracing_does_not_perturb_csvs() {
    let base = base_dir("telemetry_golden");
    let plain_dir = base.join("plain");
    let traced_dir = base.join("traced");
    let trace_dir = base.join("trace");

    run(&["fig9"], &plain_dir, &[]);
    run(
        &["fig9"],
        &traced_dir,
        &["--trace", trace_dir.to_str().unwrap(), "--timings"],
    );

    let plain = read_csvs(&plain_dir);
    let traced = read_csvs(&traced_dir);
    assert!(!plain.is_empty(), "untraced run produced no CSVs");
    assert_eq!(
        plain.keys().collect::<Vec<_>>(),
        traced.keys().collect::<Vec<_>>(),
        "tracing changed the set of CSVs"
    );
    for (name, bytes) in &plain {
        assert_eq!(bytes, &traced[name], "{name} differs with tracing enabled");
    }
    for policy in ["random", "myopic", "foresighted"] {
        assert!(
            trace_dir.join(format!("fig9_{policy}.jsonl")).is_file(),
            "missing fig9_{policy}.jsonl"
        );
    }
    assert!(trace_dir.join("manifest.json").is_file());
    assert!(traced_dir.join("manifest.json").is_file());
}

fn channel_f64(channels: &[(String, JsonValue)], name: &str) -> f64 {
    channels
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| v.as_f64())
        .unwrap_or_else(|| panic!("channel {name} missing or not a number"))
}

fn channel_bool(channels: &[(String, JsonValue)], name: &str) -> bool {
    channels
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| v.as_bool())
        .unwrap_or_else(|| panic!("channel {name} missing or not a bool"))
}

/// Everything in a fig9 CSV row after the (window-relative) minute column,
/// rebuilt from a JSONL record with the CSV's own format strings. Equality
/// is therefore exact: both sides round-trip the same f64s.
fn csv_suffix_from_jsonl(channels: &[(String, JsonValue)]) -> String {
    format!(
        "{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.2},{},{}",
        channel_f64(channels, "benign_kw"),
        channel_f64(channels, "metered_kw"),
        channel_f64(channels, "actual_kw"),
        channel_f64(channels, "attack_kw"),
        channel_f64(channels, "soc"),
        channel_f64(channels, "est_kw"),
        channel_f64(channels, "inlet_c"),
        u8::from(channel_bool(channels, "capping")),
        u8::from(channel_bool(channels, "outage")),
    )
}

/// The JSONL trace records every simulated slot; the CSV publishes the most
/// interesting 4-hour window. Some contiguous slice of the trace must
/// reproduce the CSV exactly, column for column.
#[test]
fn jsonl_channels_match_csv_columns() {
    let base = base_dir("telemetry_match");
    let out_dir = base.join("csv");
    let trace_dir = base.join("trace");
    run(
        &["fig9"],
        &out_dir,
        &["--trace", trace_dir.to_str().unwrap()],
    );

    for policy in ["random", "myopic", "foresighted"] {
        let csv = std::fs::read_to_string(out_dir.join(format!("fig9_{policy}.csv")))
            .expect("csv readable");
        let csv_rows: Vec<&str> = csv.lines().skip(1).collect(); // drop header
        assert_eq!(csv_rows.len(), 240, "fig9 window is 4 h of minutes");
        let csv_suffixes: Vec<&str> = csv_rows
            .iter()
            .map(|row| row.split_once(',').expect("minute column").1)
            .collect();

        let jsonl = std::fs::read_to_string(trace_dir.join(format!("fig9_{policy}.jsonl")))
            .expect("jsonl readable");
        let records: Vec<(u64, Vec<(String, JsonValue)>)> = jsonl
            .lines()
            .map(|line| parse_jsonl_line(line).expect("valid JSONL record"))
            .collect();
        assert_eq!(records.len(), 4 * 1440, "one record per simulated slot");
        let trace_suffixes: Vec<String> = records
            .iter()
            .map(|(_, channels)| csv_suffix_from_jsonl(channels))
            .collect();

        // CSV minutes are window-relative; find the window in the trace.
        let window = (0..=trace_suffixes.len() - 240)
            .find(|&s| (0..240).all(|i| trace_suffixes[s + i] == csv_suffixes[i]));
        let start = window.unwrap_or_else(|| {
            panic!("fig9_{policy}: no 240-slot trace window reproduces the CSV")
        });
        // And the trace's absolute slot indices must be contiguous there.
        for i in 0..240 {
            assert_eq!(records[start + i].0, (start + i) as u64);
        }
    }
}

/// `--jobs` may only influence the manifest's volatile fields (jobs itself,
/// timestamps); seed, config hash, parameters, and versions must be stable.
#[test]
fn manifest_deterministic_fields_stable_across_jobs() {
    let base = base_dir("telemetry_manifest");
    let dir1 = base.join("jobs1");
    let dir4 = base.join("jobs4");
    run(&["fig9", "fig11a"], &dir1, &["--jobs", "1"]);
    run(&["fig9", "fig11a"], &dir4, &["--jobs", "4"]);

    let m1 = std::fs::read_to_string(dir1.join("manifest.json")).expect("manifest 1");
    let m4 = std::fs::read_to_string(dir4.join("manifest.json")).expect("manifest 4");
    assert_ne!(m1, m4, "volatile fields (jobs) should differ");
    let d1 = deterministic_manifest_fields(&m1).expect("manifest 1 parses");
    let d4 = deterministic_manifest_fields(&m4).expect("manifest 4 parses");
    assert_eq!(d1, d4, "deterministic manifest fields differ across --jobs");
    assert!(
        d1.iter().any(|(k, _)| k == "config_hash"),
        "manifest must carry a config hash"
    );
}
