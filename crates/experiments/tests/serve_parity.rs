//! The acceptance bar for `hbm-serve`: for the same canonical
//! configuration, the daemon's response body and the CLI's
//! `experiments simulate` stdout must be byte-identical — the two front
//! ends share one code path in `hbm_core::scenario` and this test keeps
//! them from drifting.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;

use hbm_serve::{ServeConfig, Server};

/// Runs `experiments simulate ...` and returns its stdout bytes.
fn cli_simulate(args: &[&str]) -> Vec<u8> {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("simulate")
        .args(args)
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "experiments simulate failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

/// POSTs `body` to a freshly booted server and returns the response body
/// bytes (after asserting a 200).
fn served_simulate(body: &str) -> Vec<u8> {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server runs"));

    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    handle.stop();
    thread.join().unwrap();

    let response = String::from_utf8(response).expect("utf-8 response");
    let (head, payload) = response.split_once("\r\n\r\n").expect("complete response");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "expected 200, got: {head}\n{payload}"
    );
    payload.as_bytes().to_vec()
}

#[test]
fn served_body_matches_cli_stdout_byte_for_byte() {
    let cli = cli_simulate(&[
        "--policy",
        "myopic",
        "--days",
        "1",
        "--warmup-days",
        "0",
        "--seed",
        "7",
    ]);
    let served = served_simulate("{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":7}");
    assert!(!cli.is_empty(), "CLI printed nothing");
    assert_eq!(
        cli,
        served,
        "CLI: {}\nserved: {}",
        String::from_utf8_lossy(&cli),
        String::from_utf8_lossy(&served)
    );
}

#[test]
fn parity_holds_with_overrides() {
    let cli = cli_simulate(&[
        "--policy",
        "random",
        "--days",
        "1",
        "--warmup-days",
        "0",
        "--seed",
        "3",
        "--util",
        "0.5",
        "--attack-load-kw",
        "2.5",
        "--threshold-c",
        "33.5",
    ]);
    let served = served_simulate(
        "{\"policy\":\"random\",\"days\":1,\"warmup_days\":0,\"seed\":3,\
         \"utilization\":0.5,\"attack_load_kw\":2.5,\"threshold_c\":33.5}",
    );
    assert_eq!(
        cli,
        served,
        "CLI: {}\nserved: {}",
        String::from_utf8_lossy(&cli),
        String::from_utf8_lossy(&served)
    );
}

#[test]
fn bad_simulate_flags_exit_nonzero_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["simulate", "--policy", "myopic", "--bogus", "1"])
        .output()
        .expect("experiments binary runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "no usage in: {stderr}");

    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["simulate", "--days", "1"])
        .output()
        .expect("experiments binary runs");
    assert_eq!(output.status.code(), Some(2), "missing --policy must fail");
}

#[test]
fn unsupported_harness_flags_exit_two_with_usage() {
    // simulate prints one JSON report to stdout; the harness-wide output,
    // parallelism, and timing flags do nothing there, and silently
    // accepting them would look like they worked.
    for (flag, value) in [
        ("--out", Some("somewhere")),
        ("--jobs", Some("4")),
        ("--trace", Some("somewhere")),
        ("--timings", None),
        ("--timings-json", Some("t.json")),
    ] {
        let mut args = vec!["simulate", "--policy", "myopic", "--days", "1", flag];
        args.extend(value);
        let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(&args)
            .output()
            .expect("experiments binary runs");
        assert_eq!(output.status.code(), Some(2), "{flag} must be rejected");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(&format!("simulate does not support {flag}")),
            "{flag}: {stderr}"
        );
        assert!(stderr.contains("usage:"), "{flag}: no usage in: {stderr}");
    }
}
