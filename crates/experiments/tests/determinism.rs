//! The parallel harness must be invisible in the results: the same
//! experiments, seed, and horizon must produce byte-identical CSVs
//! whatever `--jobs` is set to.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

/// Reads every CSV in `dir` into a name → bytes map.
fn read_csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "csv") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&path).expect("csv readable"));
        }
    }
    out
}

fn run(jobs: usize, out_dir: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        // fig9 exercises the parallel multi-policy sweep, fig11a and
        // fig14b are cheap analytic figures mixed in so the driver-level
        // fan-out across experiments is exercised too.
        .args(["fig9", "fig11a", "fig14b"])
        .args(["--days", "1", "--warmup-days", "0", "--seed", "42"])
        .arg("--out")
        .arg(out_dir)
        .args(["--jobs", &jobs.to_string()])
        .status()
        .expect("experiments binary runs");
    assert!(status.success(), "experiments --jobs {jobs} failed");
}

#[test]
fn csvs_are_byte_identical_across_jobs() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("determinism");
    let serial_dir = base.join("jobs1");
    let parallel_dir = base.join("jobs4");
    let _ = std::fs::remove_dir_all(&base);

    run(1, &serial_dir);
    run(4, &parallel_dir);

    let serial = read_csvs(&serial_dir);
    let parallel = read_csvs(&parallel_dir);
    assert!(!serial.is_empty(), "serial run produced no CSVs");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "the two runs wrote different file sets"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            bytes, &parallel[name],
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }
}
