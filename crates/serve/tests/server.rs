//! End-to-end tests: boot the daemon on an ephemeral port and drive it
//! over real sockets — golden-scenario parity with the shared scenario
//! code path, cache behavior, input validation, and load shedding.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use hbm_serve::{ServeConfig, Server, ServerHandle};

/// Boots a server with `config` and returns its address, stop handle, and
/// run-thread join handle.
fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, thread)
}

/// One raw HTTP exchange; returns `(status, headers, body)`.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn post_simulate(addr: SocketAddr, body: &str) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!(
            "POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn post_batch_simulate(addr: SocketAddr, body: &str) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!(
            "POST /v1/batch-simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// An arbitrary-method request with an optional body.
fn req(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    exchange(
        addr,
        &format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn json_str(body: &str, key: &str) -> String {
    let fields = hbm_telemetry::json::parse_flat_object(body.trim()).expect("flat json");
    fields
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing {key} in {body}"))
        .1
        .as_str()
        .expect("string")
        .to_string()
}

fn json_u64(body: &str, key: &str) -> u64 {
    let fields = hbm_telemetry::json::parse_flat_object(body.trim()).expect("flat json");
    fields
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing {key} in {body}"))
        .1
        .as_f64()
        .expect("numeric") as u64
}

#[test]
fn golden_scenario_parity_cache_and_metrics() {
    let (addr, handle, thread) = boot(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // Health first.
    let (status, _, body) = get(addr, "/v1/health");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "health said {body}");

    // The served response must be byte-identical to the shared scenario
    // code path (which `experiments simulate` prints verbatim).
    let mut scenario = hbm_core::Scenario::new("myopic");
    scenario.days = 1;
    scenario.warmup_days = 0;
    scenario.seed = 7;
    let expected = hbm_core::scenario::metrics_json(
        &scenario.config_canonical(),
        &scenario.run().expect("golden scenario runs").metrics,
    ) + "\n";

    let request = "{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":7}";
    let (status, headers, body) = post_simulate(addr, request);
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(header(&headers, "x-cache"), Some("miss"));
    assert_eq!(
        header(&headers, "x-config-hash"),
        Some(scenario.config_hash().as_str())
    );
    assert_eq!(body, expected);

    // Same canonical config again: cache hit, identical bytes.
    let (status, headers, cached) = post_simulate(addr, request);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(cached, body);

    // Counters saw all of it.
    let (status, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    assert!(json_u64(&metrics, "cache_hits") >= 1, "metrics: {metrics}");
    assert_eq!(json_u64(&metrics, "cache_misses"), 1);
    assert!(json_u64(&metrics, "simulate_ok") >= 2);
    assert!(json_u64(&metrics, "requests_total") >= 3);
    // Thermal-tier observability keys are always present (process-global
    // counters, so only presence is asserted here).
    json_u64(&metrics, "heat_matrix_cache_hits");
    json_u64(&metrics, "heat_matrix_cache_misses");
    json_u64(&metrics, "surrogate_hits");
    json_u64(&metrics, "surrogate_misses");
    json_u64(&metrics, "surrogate_fallbacks");
    assert!(
        metrics.contains("\"surrogate_bound_c\":"),
        "metrics: {metrics}"
    );

    handle.stop();
    thread.join().unwrap();
}

#[test]
fn bad_requests_get_4xx_not_a_hang() {
    let (addr, handle, thread) = boot(ServeConfig::default());

    let (status, _, body) = post_simulate(addr, "not json at all");
    assert_eq!(status, 400, "body: {body}");
    let (status, _, _) = post_simulate(addr, "{\"policy\":\"zergling\",\"days\":1}");
    assert_eq!(status, 400);
    let (status, _, _) = post_simulate(addr, "{\"policy\":\"myopic\",\"bogus\":1}");
    assert_eq!(status, 400);
    let (status, _, _) = post_simulate(
        addr,
        "{\"policy\":\"myopic\",\"days\":1,\"utilization\":2.5}",
    );
    assert_eq!(status, 400);

    // Routing errors: a wrong method on a known path is 405 and names the
    // allowed set; an unknown path is 404.
    let (status, headers, _) = get(addr, "/v1/simulate");
    assert_eq!(status, 405);
    assert_eq!(header(&headers, "allow"), Some("POST"));
    let (status, headers, _) = req(addr, "DELETE", "/v1/batch-simulate", "");
    assert_eq!(status, 405);
    assert_eq!(header(&headers, "allow"), Some("POST"));
    let (status, headers, _) = req(addr, "PATCH", "/v1/health", "");
    assert_eq!(status, 405);
    assert_eq!(header(&headers, "allow"), Some("GET"));
    let (status, headers, _) = req(addr, "PUT", "/v1/experiments", "");
    assert_eq!(status, 405);
    assert_eq!(header(&headers, "allow"), Some("GET, POST"));
    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    // Malformed HTTP straight off the socket.
    let (status, _, _) = exchange(addr, "GARBAGE\r\n\r\n");
    assert_eq!(status, 400);

    let (_, _, metrics) = get(addr, "/v1/metrics");
    assert!(
        json_u64(&metrics, "bad_requests") >= 7,
        "metrics: {metrics}"
    );

    handle.stop();
    thread.join().unwrap();
}

#[test]
fn batch_simulate_parity_cache_reuse_and_bounds() {
    let (addr, handle, thread) = boot(ServeConfig {
        workers: 2,
        max_batch: 4,
        ..ServeConfig::default()
    });

    // Site i of a batch must be byte-identical to the shared scenario code
    // path at seed + i (which /v1/simulate and the CLI print verbatim).
    let mut template = hbm_core::Scenario::new("myopic");
    template.days = 1;
    template.warmup_days = 0;
    template.seed = 40;
    let expected_sites: Vec<String> = (0..3)
        .map(|i| {
            let site = template.site(i);
            hbm_core::scenario::metrics_json(
                &site.config_canonical(),
                &site.run().expect("site scenario runs").metrics,
            )
        })
        .collect();
    let expected = format!("{{\"count\":3,\"sites\":[{}]}}\n", expected_sites.join(","));

    let request = "{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":40,\"count\":3}";
    let (status, headers, body) = post_batch_simulate(addr, request);
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(header(&headers, "x-cache"), Some("miss"));
    assert_eq!(body, expected);

    // The per-site cache entries are the single-simulate entries: a single
    // request for site 1 (seed 41) must hit without computing anything.
    let single = "{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":41}";
    let (status, headers, single_body) = post_simulate(addr, single);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(single_body.trim_end(), expected_sites[1]);

    // And the whole batch again is a pure hit, byte-identical.
    let (status, headers, again) = post_batch_simulate(addr, request);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(again, body);

    // A partially overlapping batch reuses the cached sites and computes
    // only the new ones (count 4 covers seeds 40..43; 40..42 are cached).
    let wider = "{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":40,\"count\":4}";
    let (status, headers, wide_body) = post_batch_simulate(addr, wider);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("miss"));
    assert!(wide_body.starts_with(&format!(
        "{{\"count\":4,\"sites\":[{}",
        expected_sites.join(",")
    )));

    // The daemon metrics count batch jobs and only the lanes that actually
    // simulated: 3 fresh + 0 (pure hit) + 1 (the one new site of the wider
    // batch).
    let (_, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(json_u64(&metrics, "batch_requests"), 3, "metrics: {metrics}");
    assert_eq!(
        json_u64(&metrics, "batch_lanes_simulated"),
        4,
        "metrics: {metrics}"
    );

    // Oversize batches are rejected up front with 413.
    let oversize = "{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":40,\"count\":5}";
    let (status, _, body) = post_batch_simulate(addr, oversize);
    assert_eq!(status, 413, "body: {body}");

    // Malformed batch bodies fail fast like single ones.
    let (status, _, _) = post_batch_simulate(addr, "{\"policy\":\"myopic\",\"count\":0}");
    assert_eq!(status, 400);
    let (status, _, _) = post_batch_simulate(addr, "{\"policy\":\"zergling\",\"count\":2}");
    assert_eq!(status, 400);
    let (status, _, _) = get(addr, "/v1/batch-simulate");
    assert_eq!(status, 405);

    handle.stop();
    thread.join().unwrap();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    // One worker, one queue slot: a burst of distinct scenarios must shed
    // rather than buffer. Each scenario is heavy enough (120 simulated
    // days) that the worker cannot drain the burst as fast as it arrives.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });

    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let body = format!(
                    "{{\"policy\":\"myopic\",\"days\":120,\"warmup_days\":0,\"seed\":{}}}",
                    100 + i
                );
                post_simulate(addr, &body)
            })
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let ok = results.iter().filter(|(s, _, _)| *s == 200).count();
    let shed: Vec<_> = results.iter().filter(|(s, _, _)| *s == 503).collect();
    assert!(ok >= 1, "at least the first request must be served");
    assert!(
        !shed.is_empty(),
        "an 8-request burst against workers=1/queue=1 must shed; statuses: {:?}",
        results.iter().map(|(s, _, _)| *s).collect::<Vec<_>>()
    );
    assert_eq!(ok + shed.len(), results.len(), "nothing may hang or error");
    for (_, headers, _) in &shed {
        assert_eq!(header(headers, "retry-after"), Some("1"));
    }

    let (_, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(json_u64(&metrics, "shed_total") as usize, shed.len());

    handle.stop();
    thread.join().unwrap();
}

#[test]
fn manifest_written_per_computed_scenario() {
    let dir = std::env::temp_dir().join(format!("hbm_serve_manifest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle, thread) = boot(ServeConfig {
        manifest_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });

    let request = "{\"policy\":\"random\",\"days\":1,\"warmup_days\":0,\"seed\":3}";
    let (status, headers, _) = post_simulate(addr, request);
    assert_eq!(status, 200);
    let hash = header(&headers, "x-config-hash")
        .expect("config hash")
        .to_string();

    let manifest_path = dir.join(&hash).join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let fields = hbm_telemetry::deterministic_manifest_fields(&text).expect("parseable");
    assert!(fields
        .iter()
        .any(|(k, v)| k == "tool" && v.as_str() == Some("hbm-serve")));
    assert!(fields
        .iter()
        .any(|(k, v)| k == "config_hash" && v.as_str() == Some(hash.as_str())));

    // A cache hit must not rewrite the manifest.
    let modified = std::fs::metadata(&manifest_path)
        .unwrap()
        .modified()
        .unwrap();
    let (_, headers, _) = post_simulate(addr, request);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(
        std::fs::metadata(&manifest_path)
            .unwrap()
            .modified()
            .unwrap(),
        modified
    );

    handle.stop();
    thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A short experiment scenario shared by the lifecycle tests.
const EXP_SCENARIO: &str = "{\"policy\":\"myopic\",\"days\":2,\"warmup_days\":0,\"seed\":7}";

fn exp_scenario() -> hbm_core::Scenario {
    let mut s = hbm_core::Scenario::new("myopic");
    s.days = 2;
    s.warmup_days = 0;
    s.seed = 7;
    s
}

fn temp_state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hbm_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn experiment_lifecycle_over_http() {
    let (addr, handle, thread) = boot(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // Create, step, inspect, perturb, delete — the whole arc.
    let (status, headers, body) = req(addr, "POST", "/v1/experiments", EXP_SCENARIO);
    assert_eq!(status, 201, "body: {body}");
    let id = json_str(&body, "id");
    assert_eq!(
        header(&headers, "location"),
        Some(format!("/v1/experiments/{id}").as_str())
    );
    assert_eq!(json_u64(&body, "warmup_slots"), 0);

    let (status, _, body) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/step"),
        "{\"slots\":500}",
    );
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(json_u64(&body, "stepped"), 500);
    assert_eq!(json_u64(&body, "slots"), 500);

    let (status, _, listing) = get(addr, "/v1/experiments");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&listing, "count"), 1);
    assert!(listing.contains(&format!("\"{id}\"")), "listing: {listing}");

    // State is the live checkpoint line.
    let (status, _, state) = get(addr, &format!("/v1/experiments/{id}/state"));
    assert_eq!(status, 200);
    assert!(state.contains(&format!("\"schema\":\"{}\"", hbm_core::SNAPSHOT_SCHEMA)));

    // Metrics carry the effective config hash.
    let (status, headers, metrics) = get(addr, &format!("/v1/experiments/{id}/metrics"));
    assert_eq!(status, 200);
    assert_eq!(json_u64(&metrics, "slots"), 500);
    assert_eq!(
        header(&headers, "x-config-hash"),
        Some(exp_scenario().config_hash().as_str())
    );

    // Perturbing returns the effective scenario and changes the hash.
    let (status, _, effective) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/perturb"),
        "{\"threshold_c\":30.5}",
    );
    assert_eq!(status, 200, "body: {effective}");
    assert!(
        effective.contains("\"threshold_c\":30.5"),
        "got {effective}"
    );
    let (_, headers, _) = get(addr, &format!("/v1/experiments/{id}/metrics"));
    assert_ne!(
        header(&headers, "x-config-hash"),
        Some(exp_scenario().config_hash().as_str())
    );

    // Bad inputs fail fast.
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/step"),
        "{\"slots\":0}",
    );
    assert_eq!(status, 400);
    let (status, _, _) = req(addr, "POST", &format!("/v1/experiments/{id}/step"), "{}");
    assert_eq!(status, 400);
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/step"),
        "{\"slots\":99999999}",
    );
    assert_eq!(status, 413);
    let (status, _, _) = req(addr, "POST", &format!("/v1/experiments/{id}/perturb"), "{}");
    assert_eq!(status, 400);
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/perturb"),
        "{\"utilization\":5.0}",
    );
    assert_eq!(status, 400);
    let (status, _, _) = req(
        addr,
        "POST",
        "/v1/experiments/exp-999999/step",
        "{\"slots\":1}",
    );
    assert_eq!(status, 404);

    // Delete, and the id is gone.
    let (status, _, body) = req(addr, "DELETE", &format!("/v1/experiments/{id}"), "");
    assert_eq!(status, 200);
    assert_eq!(json_str(&body, "deleted"), id);
    let (status, _, _) = get(addr, &format!("/v1/experiments/{id}/state"));
    assert_eq!(status, 404);

    // The daemon metrics saw the lifecycle.
    let (_, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(json_u64(&metrics, "experiments_created"), 1);
    assert_eq!(json_u64(&metrics, "experiments_deleted"), 1);
    assert_eq!(json_u64(&metrics, "experiments_active"), 0);
    assert_eq!(json_u64(&metrics, "experiment_steps"), 1);
    assert_eq!(json_u64(&metrics, "experiment_slots"), 500);
    assert_eq!(json_u64(&metrics, "experiment_perturbs"), 1);

    handle.stop();
    thread.join().unwrap();
}

#[test]
fn fork_and_branch_endpoints_over_http() {
    let (addr, handle, thread) = boot(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    let (status, _, body) = req(addr, "POST", "/v1/experiments", EXP_SCENARIO);
    assert_eq!(status, 201, "body: {body}");
    let id = json_str(&body, "id");
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/step"),
        "{\"slots\":300}",
    );
    assert_eq!(status, 200);

    // Before any fork: no branch report, and branch-stepping is a conflict.
    let (status, _, _) = get(addr, &format!("/v1/experiments/{id}/branches"));
    assert_eq!(status, 404);
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/branches/step"),
        "{\"slots\":10}",
    );
    assert_eq!(status, 409);

    // An empty body forks a control branch at the current slot.
    let (status, _, body) = req(addr, "POST", &format!("/v1/experiments/{id}/fork"), "");
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(json_u64(&body, "branch"), 0);
    assert_eq!(json_str(&body, "label"), "branch-0");
    assert_eq!(json_u64(&body, "fork_slot"), 300);
    assert_eq!(json_u64(&body, "branches"), 1);

    // A labeled variant branch forks from the same pinned slot.
    let (status, _, body) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/fork"),
        "{\"label\":\"hot\",\"attack_load_kw\":3.0,\"battery_kwh\":1.0}",
    );
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(json_str(&body, "label"), "hot");
    assert_eq!(json_u64(&body, "fork_slot"), 300);
    assert_eq!(json_u64(&body, "branches"), 2);

    // Bad forks fail fast and do not disturb the tree.
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/fork"),
        "{\"label\":\"no spaces!\"}",
    );
    assert_eq!(status, 400);
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/fork"),
        "{\"bogus\":1}",
    );
    assert_eq!(status, 400);
    let (status, _, _) = req(addr, "POST", "/v1/experiments/exp-999999/fork", "");
    assert_eq!(status, 404);

    // Lockstep-step both branches a day; the variant must diverge.
    let (status, _, body) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/branches/step"),
        "{\"slots\":1440}",
    );
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(json_u64(&body, "stepped"), 1440);
    assert_eq!(json_u64(&body, "branches"), 2);
    let diverged_at = json_u64(&body, "first_divergence");
    assert!(
        diverged_at >= 300,
        "divergence at/after the fork slot: {body}"
    );

    // The comparison report reads inline.
    let (status, _, report) = get(addr, &format!("/v1/experiments/{id}/branches"));
    assert_eq!(status, 200, "report: {report}");
    assert_eq!(json_u64(&report, "fork_slot"), 300);
    assert_eq!(json_u64(&report, "branches"), 2);
    assert_eq!(json_u64(&report, "slots_run"), 1440);
    assert_eq!(json_u64(&report, "first_divergence"), diverged_at);
    assert!(report.contains("\"labels\":[\"branch-0\",\"hot\"]"));
    assert!(report.contains("\"attack_slots\":["));
    assert!(report.contains("\"battery_soc\":["));

    // The trunk never moved.
    let (status, _, metrics) = get(addr, &format!("/v1/experiments/{id}/metrics"));
    assert_eq!(status, 200);
    assert_eq!(json_u64(&metrics, "slots"), 300);

    // Discarding branches frees the tree; a second delete is a 404.
    let (status, _, body) = req(
        addr,
        "DELETE",
        &format!("/v1/experiments/{id}/branches"),
        "",
    );
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(json_u64(&body, "deleted_branches"), 2);
    let (status, _, _) = req(
        addr,
        "DELETE",
        &format!("/v1/experiments/{id}/branches"),
        "",
    );
    assert_eq!(status, 404);
    let (status, _, _) = get(addr, &format!("/v1/experiments/{id}/branches"));
    assert_eq!(status, 404);

    // The daemon counters saw the branch traffic.
    let (_, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(json_u64(&metrics, "experiment_forks"), 2);
    assert_eq!(json_u64(&metrics, "experiment_branch_steps"), 1);
    assert_eq!(json_u64(&metrics, "checkpoint_failures"), 0);

    handle.stop();
    thread.join().unwrap();
}

#[test]
fn kill_and_restore_continues_bit_identically() {
    // The tentpole guarantee: kill the daemon mid-experiment, reboot on
    // the same state dir, finish stepping — the final metrics body must be
    // byte-identical to an uninterrupted /v1/simulate of the same
    // scenario.
    let dir = temp_state_dir("kill_restore");
    let scenario = exp_scenario();
    let total_slots = scenario.slots();

    let (addr, handle, thread) = boot(ServeConfig {
        workers: 2,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let (status, _, body) = req(addr, "POST", "/v1/experiments", EXP_SCENARIO);
    assert_eq!(status, 201, "body: {body}");
    let id = json_str(&body, "id");
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/step"),
        "{\"slots\":1000}",
    );
    assert_eq!(status, 200);

    // Kill.
    handle.stop();
    thread.join().unwrap();

    // Reboot on the same state dir: the experiment is back with its
    // progress, and its checkpoint is byte-stable across the restart.
    let (addr, handle, thread) = boot(ServeConfig {
        workers: 2,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let (status, _, listing) = get(addr, "/v1/experiments");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&listing, "count"), 1, "listing: {listing}");
    assert!(listing.contains(&format!("\"{id}\"")));
    let (_, _, metrics) = get(addr, &format!("/v1/experiments/{id}/metrics"));
    assert_eq!(json_u64(&metrics, "slots"), 1000);
    let (_, _, daemon_metrics) = get(addr, "/v1/metrics");
    assert_eq!(json_u64(&daemon_metrics, "experiments_restored"), 1);

    // Step to the full horizon and compare against the uninterrupted run.
    let remaining = total_slots - 1000;
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/step"),
        &format!("{{\"slots\":{remaining}}}"),
    );
    assert_eq!(status, 200);
    let (status, _, experiment_body) = get(addr, &format!("/v1/experiments/{id}/metrics"));
    assert_eq!(status, 200);
    let (status, _, simulate_body) = post_simulate(addr, EXP_SCENARIO);
    assert_eq!(status, 200);
    assert_eq!(
        experiment_body, simulate_body,
        "killed-and-restored experiment must match the uninterrupted run byte for byte"
    );

    handle.stop();
    thread.join().unwrap();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn every_route_is_documented_in_service_md() {
    // docs/SERVICE.md must document every route the router serves, as a
    // literal "METHOD /path" string — adding a route without documenting
    // it fails here.
    let doc = include_str!("../../../docs/SERVICE.md");
    for route in hbm_serve::routes::ROUTES {
        for method in route.methods {
            let needle = format!("{method} {}", route.pattern);
            assert!(
                doc.contains(&needle),
                "docs/SERVICE.md does not document {needle:?}"
            );
        }
    }
}

#[test]
fn surrogate_tier_labels_responses_and_metrics() {
    // Fit a tiny real surrogate whose trust region covers the paper
    // default's per-server operating point (~130 W) and install it
    // process-wide, exactly as `hbm-serve --surrogate` does.
    let settings = hbm_surrogate::ExtractionSettings {
        config: hbm_thermal::CfdConfig {
            racks: 1,
            servers_per_rack: 2,
            ..hbm_thermal::CfdConfig::paper_default()
        },
        spike: hbm_units::Power::from_watts(120.0),
        window: hbm_units::Duration::from_minutes(5.0),
        lag_step: hbm_units::Duration::from_minutes(1.0),
    };
    let model = hbm_surrogate::SurrogateModel::fit(
        settings,
        hbm_surrogate::SurrogateDomain {
            lo: [50.0, 25.0, 0.03],
            hi: [250.0, 29.0, 0.10],
        },
        hbm_surrogate::FitOptions {
            grid_points: 3,
            holdout_every: 3,
            lambda: 1e-8,
        },
    )
    .expect("surrogate fits");
    let bound = model.max_abs_err_inlet_c();
    hbm_core::install_thermal_tier(Some(std::sync::Arc::new(
        hbm_surrogate::TieredExtractor::with_model(model, f64::INFINITY),
    )));

    let (addr, handle, thread) = boot(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // Simulate: in-region, so the response is labeled as surrogate-tier.
    let (status, headers, body) = post_simulate(
        addr,
        "{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":3}",
    );
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(header(&headers, "x-thermal-tier"), Some("surrogate"));

    // Fork: the branch scenario consults the tier too.
    let (status, _, body) = req(addr, "POST", "/v1/experiments", EXP_SCENARIO);
    assert_eq!(status, 201, "body: {body}");
    let id = json_str(&body, "id");
    let (status, _, _) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/step"),
        "{\"slots\":10}",
    );
    assert_eq!(status, 200);
    let (status, headers, body) = req(
        addr,
        "POST",
        &format!("/v1/experiments/{id}/fork"),
        "{\"label\":\"hot\",\"attack_load_kw\":2.0}",
    );
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(header(&headers, "x-thermal-tier"), Some("surrogate"));

    // Metrics carry the tier counters and the model's bound. Counters are
    // process-global (other tests' simulations may consult the tier while
    // it is installed), so assert lower bounds, not exact values.
    let (_, _, metrics) = get(addr, "/v1/metrics");
    assert!(
        json_u64(&metrics, "surrogate_hits") >= 2,
        "metrics: {metrics}"
    );
    let bound_key = format!("\"surrogate_bound_c\":{bound}");
    assert!(metrics.contains(&bound_key), "metrics: {metrics}");

    // Uninstall: back to the tier-less default for the rest of the suite.
    hbm_core::install_thermal_tier(None);
    let (_, headers, _) = post_simulate(
        addr,
        "{\"policy\":\"myopic\",\"days\":1,\"warmup_days\":0,\"seed\":4}",
    );
    assert_eq!(header(&headers, "x-thermal-tier"), None);
    let (_, _, metrics) = get(addr, "/v1/metrics");
    assert_eq!(json_u64(&metrics, "surrogate_bound_c"), 0);

    handle.stop();
    thread.join().unwrap();
}
