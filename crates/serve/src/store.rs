//! On-disk experiment state: manifests and checkpoints.
//!
//! Layout under the daemon's `--state-dir`:
//!
//! ```text
//! <state-dir>/experiments/<id>/manifest.json    # meta line + scenario line
//! <state-dir>/experiments/<id>/checkpoint.json  # one hbm-checkpoint-v1 line
//! ```
//!
//! `manifest.json` holds two flat-JSON lines: experiment metadata (id,
//! warm-up length, op counters) and the *effective* scenario (base scenario
//! with every applied perturbation folded in, via
//! [`hbm_core::Scenario::to_flat_json`]). `checkpoint.json` is the latest
//! [`hbm_core::Simulation::snapshot_json`] line. Together they are enough
//! to rebuild the experiment bit-exactly: rebuild from the scenario,
//! restore from the checkpoint.
//!
//! Every write goes through a temp file + `rename`, so a crash mid-write
//! leaves the previous consistent pair in place, never a torn file.

use std::io;
use std::path::{Path, PathBuf};

use hbm_telemetry::json::JsonObject;

/// Schema tag of the manifest meta line.
pub const MANIFEST_SCHEMA: &str = "hbm-experiment-v1";

/// One experiment as read back from disk during crash recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedExperiment {
    /// Experiment id (the directory name).
    pub id: String,
    /// Warm-up slots run at creation.
    pub warmup_slots: u64,
    /// Completed step operations.
    pub steps: u64,
    /// Applied perturbations.
    pub perturbs: u64,
    /// The effective scenario, as one flat-JSON line.
    pub scenario_json: String,
    /// The latest checkpoint line.
    pub snapshot: String,
}

/// The experiment directory of one state dir.
#[derive(Debug)]
pub struct ExperimentStore {
    root: PathBuf,
}

impl ExperimentStore {
    /// Opens (creating if needed) `<state_dir>/experiments`.
    ///
    /// # Errors
    ///
    /// Returns the underlying directory-creation error.
    pub fn open(state_dir: &Path) -> io::Result<ExperimentStore> {
        let root = state_dir.join("experiments");
        std::fs::create_dir_all(&root)?;
        Ok(ExperimentStore { root })
    }

    fn dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Atomically writes the manifest and checkpoint for `id`.
    ///
    /// # Errors
    ///
    /// Returns the first underlying filesystem error.
    pub fn save(
        &self,
        id: &str,
        warmup_slots: u64,
        steps: u64,
        perturbs: u64,
        scenario_json: &str,
        snapshot: &str,
    ) -> io::Result<()> {
        let dir = self.dir(id);
        std::fs::create_dir_all(&dir)?;
        let mut meta = JsonObject::new();
        meta.str("schema", MANIFEST_SCHEMA)
            .str("id", id)
            .u64("warmup_slots", warmup_slots)
            .u64("steps", steps)
            .u64("perturbs", perturbs);
        let manifest = format!("{}\n{scenario_json}\n", meta.finish());
        write_atomic(&dir.join("manifest.json"), manifest.as_bytes())?;
        write_atomic(
            &dir.join("checkpoint.json"),
            format!("{snapshot}\n").as_bytes(),
        )
    }

    /// Removes `id`'s directory; absent is not an error.
    ///
    /// # Errors
    ///
    /// Returns the underlying removal error.
    pub fn remove(&self, id: &str) -> io::Result<()> {
        match std::fs::remove_dir_all(self.dir(id)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Reads every recoverable experiment, in id order. Unreadable or
    /// malformed entries are skipped with a warning on stderr — recovery
    /// restores what it can rather than refusing to boot.
    pub fn load_all(&self) -> Vec<PersistedExperiment> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(_) => return out,
        };
        let mut ids: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        ids.sort();
        for id in ids {
            match self.load_one(&id) {
                Ok(p) => out.push(p),
                Err(e) => eprintln!("warning: skipping experiment {id:?}: {e}"),
            }
        }
        out
    }

    fn load_one(&self, id: &str) -> Result<PersistedExperiment, String> {
        let dir = self.dir(id);
        let manifest = std::fs::read_to_string(dir.join("manifest.json"))
            .map_err(|e| format!("reading manifest.json: {e}"))?;
        let mut lines = manifest.lines();
        let meta_line = lines.next().ok_or("manifest.json is empty")?;
        let scenario_json = lines
            .next()
            .ok_or("manifest.json is missing the scenario line")?
            .to_string();
        let meta = hbm_telemetry::json::parse_flat_object(meta_line)
            .map_err(|e| format!("manifest meta line: {e}"))?;
        let field = |key: &str| {
            meta.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("manifest meta line is missing {key:?}"))
        };
        let schema = field("schema")?.as_str().unwrap_or_default();
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest schema {schema:?} (expected {MANIFEST_SCHEMA:?})"
            ));
        }
        let counter = |key: &str| -> Result<u64, String> {
            let v = field(key)?
                .as_f64()
                .ok_or_else(|| format!("manifest field {key:?} is not a number"))?;
            Ok(v as u64)
        };
        let snapshot = std::fs::read_to_string(dir.join("checkpoint.json"))
            .map_err(|e| format!("reading checkpoint.json: {e}"))?
            .trim_end()
            .to_string();
        if snapshot.is_empty() {
            return Err("checkpoint.json is empty".into());
        }
        Ok(PersistedExperiment {
            id: id.to_string(),
            warmup_slots: counter("warmup_slots")?,
            steps: counter("steps")?,
            perturbs: counter("perturbs")?,
            scenario_json,
            snapshot,
        })
    }
}

/// Writes `bytes` to `path` through a sibling temp file + rename, so
/// readers and crash recovery only ever see complete files.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, ExperimentStore) {
        let dir = std::env::temp_dir().join(format!("hbm_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ExperimentStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn save_load_remove_round_trip() {
        let (dir, store) = temp_store("rt");
        store
            .save(
                "exp-000001",
                10,
                3,
                1,
                "{\"policy\":\"myopic\"}",
                "{\"s\":1}",
            )
            .unwrap();
        store
            .save(
                "exp-000002",
                0,
                0,
                0,
                "{\"policy\":\"random\"}",
                "{\"s\":2}",
            )
            .unwrap();
        let all = store.load_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, "exp-000001");
        assert_eq!(all[0].warmup_slots, 10);
        assert_eq!(all[0].steps, 3);
        assert_eq!(all[0].perturbs, 1);
        assert_eq!(all[0].scenario_json, "{\"policy\":\"myopic\"}");
        assert_eq!(all[0].snapshot, "{\"s\":1}");

        store.remove("exp-000001").unwrap();
        store.remove("exp-000001").unwrap(); // absent is fine
        assert_eq!(store.load_all().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_entries_are_skipped_not_fatal() {
        let (dir, store) = temp_store("corrupt");
        store
            .save(
                "exp-000001",
                0,
                0,
                0,
                "{\"policy\":\"myopic\"}",
                "{\"s\":1}",
            )
            .unwrap();
        // A directory with a torn manifest and one with no checkpoint.
        std::fs::create_dir_all(dir.join("experiments/exp-000002")).unwrap();
        std::fs::write(dir.join("experiments/exp-000002/manifest.json"), "{bad").unwrap();
        std::fs::create_dir_all(dir.join("experiments/exp-000003")).unwrap();
        let all = store.load_all();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].id, "exp-000001");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rewrites_are_atomic_renames() {
        let (dir, store) = temp_store("atomic");
        store
            .save("exp-000001", 0, 1, 0, "{}", "{\"v\":1}")
            .unwrap();
        store
            .save("exp-000001", 0, 2, 0, "{}", "{\"v\":2}")
            .unwrap();
        let all = store.load_all();
        assert_eq!(all[0].snapshot, "{\"v\":2}");
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(dir.join("experiments/exp-000001"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
