//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The workspace vendors no HTTP stack, and the daemon needs only a small,
//! strictly bounded subset: one request per connection, flat-JSON bodies,
//! `Connection: close` responses. Every limit is explicit so a client can
//! never make the server allocate unboundedly, and every malformed input
//! maps to a 4xx/5xx [`HttpError`] — parsing never panics.

use std::io::{BufRead, Read, Write};

/// Longest accepted request line, bytes (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header block, bytes (sum over all header lines).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A request-parsing failure, carrying the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (4xx/5xx).
    pub status: u16,
    /// Human-readable description, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target (`/v1/simulate`).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header value with the given case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one `\n`-terminated line, at most `cap` bytes of it, stripping
/// the trailing `\r\n`/`\n`. `Ok(None)` means clean EOF before any byte.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    cap: usize,
    what: &str,
    too_long_status: u16,
) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let read = reader
        .by_ref()
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| HttpError::new(400, format!("reading {what}: {e}")))?;
    if read == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > cap {
            return Err(HttpError::new(too_long_status, format!("{what} too long")));
        }
        return Err(HttpError::new(400, format!("truncated {what}")));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::new(400, format!("{what} is not valid UTF-8")))
}

/// Reads and parses one request from `reader`.
///
/// `Ok(None)` means the client closed the connection without sending
/// anything (not an error).
///
/// # Errors
///
/// * 400 — malformed request line, truncated headers or body, bad
///   `Content-Length`;
/// * 413 — body larger than [`MAX_BODY_BYTES`];
/// * 414 — request line longer than [`MAX_REQUEST_LINE`];
/// * 431 — header block larger than [`MAX_HEADER_BYTES`];
/// * 501 — `Transfer-Encoding` (unsupported);
/// * 505 — not HTTP/1.x.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line_bounded(reader, MAX_REQUEST_LINE, "request line", 414)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line {line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            505,
            format!("unsupported protocol version {version:?}"),
        ));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let remaining = MAX_HEADER_BYTES.saturating_sub(header_bytes);
        let Some(line) = read_line_bounded(reader, remaining, "header block", 431)? else {
            return Err(HttpError::new(400, "truncated headers (connection closed)"));
        };
        header_bytes += line.len() + 2;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::new(501, "transfer-encoding is not supported"));
    }
    let body_len = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("bad content-length {v:?}")))?,
    };
    if body_len > MAX_BODY_BYTES {
        return Err(HttpError::new(
            413,
            format!("body of {body_len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
        ));
    }
    let mut body = vec![0u8; body_len];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::new(400, format!("truncated body: {e}")))?;
    Ok(Some(Request { body, ..request }))
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one complete `Connection: close` response: status line, the
/// standard headers, any `extra` headers, and the body.
///
/// # Errors
///
/// Returns the underlying I/O error (typically: the client went away).
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    extra: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    head.push_str("Content-Type: application/json\r\n");
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    head.push_str("Connection: close\r\n");
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// A JSON error body (`{"error": …}`) for an error response.
pub fn error_body(message: &str) -> Vec<u8> {
    let mut o = hbm_telemetry::json::JsonObject::new();
    o.str("error", message);
    let mut body = o.finish().into_bytes();
    body.push(b'\n');
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn well_formed_post_round_trips() {
        let raw = b"POST /v1/simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/simulate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /v1/health HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.target, "/v1/health");
    }

    #[test]
    fn empty_stream_is_none_not_an_error() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn malformed_request_line_is_400() {
        assert_eq!(parse(b"GARBAGE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"GET /\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse(b"GET / HTTP/1.1 extra\r\n\r\n").unwrap_err().status,
            400
        );
    }

    #[test]
    fn wrong_protocol_version_is_505() {
        assert_eq!(parse(b"GET / HTTP/2\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(parse(b"GET / SPDY/3\r\n\r\n").unwrap_err().status, 505);
    }

    #[test]
    fn truncated_headers_are_400() {
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err().status,
            400
        );
        assert_eq!(parse(b"GET / HTTP/1.1\r\nHost").unwrap_err().status, 400);
    }

    #[test]
    fn header_without_colon_is_400() {
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn oversized_request_line_is_414() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 414);
    }

    #[test]
    fn oversized_header_block_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..3000 {
            raw.extend_from_slice(format!("X-Pad-{i}: aaaaaaaaaa\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(raw.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn bad_and_truncated_content_length_are_400() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Body shorter than promised.
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn transfer_encoding_is_501() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
    }

    #[test]
    fn non_utf8_bytes_are_400_not_a_panic() {
        assert_eq!(
            parse(b"GET /\xff\xfe HTTP/1.1\r\n\r\n").unwrap_err().status,
            400
        );
    }

    #[test]
    fn response_writer_emits_complete_message() {
        let mut out = Vec::new();
        write_response(&mut out, 503, &[("Retry-After", "1".into())], b"{}\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }

    #[test]
    fn error_body_is_flat_json() {
        let body = error_body("boom \"quoted\"");
        let line = std::str::from_utf8(&body).unwrap();
        let fields = hbm_telemetry::json::parse_flat_object(line.trim()).unwrap();
        assert_eq!(fields[0].1.as_str().unwrap(), "boom \"quoted\"");
    }
}
