//! Simulation-as-a-service for the *Heat Behind the Meter* workspace.
//!
//! The `experiments` CLI regenerates figures one process at a time; this
//! crate turns the same scenario code path ([`hbm_core::scenario`]) into a
//! long-running daemon, so dashboards, sweeps, and other consumers can
//! request attack-scenario evaluations over HTTP without recompiling.
//! Everything is first-party `std`: a hand-rolled HTTP/1.1 subset
//! ([`http`]), the workspace's flat-JSON dialect (`hbm-telemetry`), and a
//! worker pool accounted against `hbm-par`'s process-wide thread budget.
//!
//! # Endpoints
//!
//! * `POST /v1/simulate` — a flat-JSON [`hbm_core::Scenario`] body;
//!   responds with the same metrics JSON line the CLI's `simulate`
//!   subcommand prints (byte-identical for the same canonical config).
//! * `GET /v1/health` — liveness and the effective pool/queue sizes.
//! * `GET /v1/metrics` — flat-JSON counters: requests, cache hits/misses,
//!   queue depth, worker utilization.
//!
//! # Backpressure
//!
//! Accepted-but-unstarted requests live in a [`queue::BoundedQueue`]; when
//! it is full the server answers `503` with `Retry-After` immediately
//! instead of buffering — memory stays bounded no matter the offered load.
//! Results are memoized in a bounded [`cache::ScenarioCache`] keyed by the
//! canonical config string, and every computed run can write a
//! `RunManifest`, so served runs stay as traceable as CLI runs.
//!
//! See `docs/SERVICE.md` for the full endpoint reference and
//! `hbm-serve-bench` for the bundled load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod queue;
mod server;

pub use server::{declare_spans, ServeConfig, Server, ServerHandle};

/// The crate version, for run manifests and `/v1/health`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
