//! Simulation-as-a-service for the *Heat Behind the Meter* workspace.
//!
//! The `experiments` CLI regenerates figures one process at a time; this
//! crate turns the same scenario code path ([`hbm_core::scenario`]) into a
//! long-running daemon, so dashboards, sweeps, and other consumers can
//! request attack-scenario evaluations over HTTP without recompiling.
//! Everything is first-party `std`: a hand-rolled HTTP/1.1 subset
//! ([`http`]), the workspace's flat-JSON dialect (`hbm-telemetry`), and a
//! worker pool accounted against `hbm-par`'s process-wide thread budget.
//!
//! # Endpoints
//!
//! Routing is table-driven ([`routes::ROUTES`] is the single source of
//! truth; a wrong method answers `405` with an `Allow` header). One-shot
//! evaluation:
//!
//! * `POST /v1/simulate` — a flat-JSON [`hbm_core::Scenario`] body;
//!   responds with the same metrics JSON line the CLI's `simulate`
//!   subcommand prints (byte-identical for the same canonical config).
//! * `POST /v1/batch-simulate` — a scenario template plus `count`,
//!   answered by the batch engine, site-for-site cache-compatible with
//!   single simulates.
//! * `GET /v1/health`, `GET /v1/metrics` — liveness and flat-JSON
//!   counters.
//!
//! Sessionful experiments (the [`experiment::Supervisor`]):
//!
//! * `POST /v1/experiments` creates a long-lived experiment (warming up
//!   learning policies once), then `POST /v1/experiments/{id}/step`
//!   advances it, `POST …/perturb` applies mid-run workload/attack/defense
//!   overrides, `GET …/state` and `GET …/metrics` inspect it, and
//!   `DELETE /v1/experiments/{id}` retires it.
//!
//! With a `--state-dir`, every mutating operation checkpoints the
//! experiment (manifest + `hbm-checkpoint-v1` line, [`store`]) and a
//! restarted daemon restores all of them bit-exactly — a stepped-after-
//! restore experiment is byte-identical to one that never crashed.
//!
//! # Backpressure
//!
//! Accepted-but-unstarted requests live in a [`queue::BoundedQueue`]; when
//! it is full the server answers `503` with `Retry-After` immediately
//! instead of buffering — memory stays bounded no matter the offered load.
//! Results are memoized in a bounded [`cache::ScenarioCache`] keyed by the
//! canonical config string, and every computed run can write a
//! `RunManifest`, so served runs stay as traceable as CLI runs.
//! Experiment mutations share the same queue and worker pool; experiment
//! reads answer inline from published snapshots and never wait on a
//! running step.
//!
//! See `docs/SERVICE.md` for the full endpoint reference,
//! `docs/OPERATIONS.md` for deployment and crash recovery, and
//! `hbm-serve-bench` for the bundled load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod experiment;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod routes;
mod server;
pub mod store;
pub mod writer;

pub use server::{declare_spans, ServeConfig, Server, ServerHandle};

/// The crate version, for run manifests and `/v1/health`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
