//! The experiment supervisor: long-lived simulations behind the API.
//!
//! An *experiment* is a [`Simulation`] that outlives any one request:
//! created (and warmed up) once, then stepped, perturbed, forked, and
//! eventually deleted. The [`Supervisor`] owns the table of live
//! experiments; mutating operations (create/step/perturb/fork/delete) run
//! on the daemon's worker pool and serialize per experiment through its
//! state mutex, while reads (`state`/`metrics`/`branches`/list) answer
//! inline on the accept thread from a small *published* snapshot refreshed
//! after every mutation — a slow step can never stall a read or the
//! accept loop.
//!
//! The published snapshot is the **binary** [`Snapshot`], not its JSON: a
//! mutation publishes an `Arc<Snapshot>` (a cheap clone of the flat
//! dynamic state) and readers serialize lazily on demand, so the hot
//! step path pays no JSON tax. Checkpointing is write-behind: with a
//! state dir, every mutation *enqueues* its snapshot on the
//! [`CheckpointWriter`] (latest-wins per experiment) instead of writing
//! two files synchronously; the queue is flushed on delete and shutdown,
//! so [`Supervisor::recover`] still restores every experiment
//! bit-identically — the contract proven by
//! `crates/core/tests/checkpoint.rs` and the serve crate's
//! kill-and-restore test. Write failures are surfaced through
//! [`Supervisor::checkpoint_failures`].
//!
//! Forking roots a [`StateTree`] at the experiment's current state; the
//! tree's branches advance in lockstep on batch lanes, independently of
//! the trunk experiment, and are **memory-only** — they are not
//! checkpointed and do not survive a restart.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hbm_core::scenario::metrics_json;
use hbm_core::{Perturbation, Scenario, Simulation, Snapshot, StateTree};
use hbm_telemetry::json::push_json_f64;

use crate::store::ExperimentStore;
use crate::writer::{CheckpointWriter, PendingSave};

/// An API-level failure: the HTTP status to answer with and a message.
pub type ApiError = (u16, String);

/// Tuning for a [`Supervisor`], split out of `ServeConfig`.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Maximum live experiments; creates beyond this answer `429`.
    pub max_experiments: usize,
    /// Evict experiments idle longer than this (`None`: never).
    pub ttl: Option<Duration>,
    /// Maximum branches per experiment; forks beyond this answer `429`.
    pub max_branches: usize,
    /// Maximum cumulative slots a branch tree may run (bounds the
    /// in-memory per-slot records); branch steps beyond this answer `413`.
    pub max_branch_slots: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_experiments: 64,
            ttl: None,
            max_branches: 16,
            max_branch_slots: 100_000,
        }
    }
}

/// The scenario-derived strings reads and checkpoints need, computed once
/// per scenario change (create/perturb/recover) and shared by reference.
#[derive(Clone)]
struct ScenarioStrings {
    canonical: Arc<String>,
    config_hash: Arc<String>,
    scenario_json: Arc<String>,
}

impl ScenarioStrings {
    fn of(scenario: &Scenario) -> ScenarioStrings {
        ScenarioStrings {
            canonical: Arc::new(scenario.config_canonical()),
            config_hash: Arc::new(scenario.config_hash()),
            scenario_json: Arc::new(scenario.to_flat_json()),
        }
    }
}

/// The in-memory state of one experiment, guarded by its slot's mutex.
struct ExperimentState {
    scenario: Scenario,
    strings: ScenarioStrings,
    sim: Simulation,
    tree: Option<StateTree>,
    warmup_slots: u64,
    steps: u64,
    perturbs: u64,
}

/// What reads see without touching the simulation: refreshed after every
/// mutating operation. The snapshot stays binary; readers serialize it
/// (or render metrics from it) lazily.
struct Published {
    snapshot: Arc<Snapshot>,
    canonical: Arc<String>,
    config_hash: Arc<String>,
    scenario_json: Arc<String>,
    slots: u64,
    last_touched: Instant,
}

struct Slot {
    id: String,
    /// Set (under no lock) when the experiment is deleted or evicted;
    /// queued operations that already resolved the slot check it before
    /// persisting, so they can never resurrect a removed directory.
    retired: AtomicBool,
    state: Mutex<ExperimentState>,
    published: Mutex<Published>,
    /// The published branch report (`GET …/branches`), refreshed after
    /// every fork / branch step; `None` until the first fork.
    branches: Mutex<Option<Arc<String>>>,
}

struct Table {
    entries: HashMap<String, Arc<Slot>>,
    next_id: u64,
}

/// Owns every live experiment; see the module docs for the locking story.
pub struct Supervisor {
    store: Option<Arc<ExperimentStore>>,
    writer: Option<CheckpointWriter>,
    config: SupervisorConfig,
    table: Mutex<Table>,
}

/// A successful create: the new id and how much warm-up ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateOutcome {
    /// The new experiment id.
    pub id: String,
    /// Warm-up slots run before the experiment became steppable.
    pub warmup_slots: u64,
}

/// A successful step: how far the experiment advanced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// The experiment id.
    pub id: String,
    /// Slots stepped by this operation.
    pub stepped: u64,
    /// Total measured slots so far.
    pub slots: u64,
}

/// A successful fork: where the new branch sits in the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ForkOutcome {
    /// The experiment id.
    pub id: String,
    /// Index of the new branch.
    pub branch: u64,
    /// The branch's label (given or generated).
    pub label: String,
    /// The slot index every branch forked from.
    pub fork_slot: u64,
    /// Total branches after this fork.
    pub branches: u64,
    /// The branch's effective scenario (tree base with the fork's
    /// perturbation applied) — lets the server consult the thermal tier
    /// for the branch without re-deriving the perturbation.
    pub scenario: Scenario,
}

/// A successful lockstep branch step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchStepOutcome {
    /// The experiment id.
    pub id: String,
    /// Slots every branch advanced by this operation.
    pub stepped: u64,
    /// Number of branches stepped.
    pub branches: u64,
    /// First absolute slot where any branch diverged from branch 0, if
    /// any divergence has been observed yet.
    pub first_divergence: Option<u64>,
}

fn publish(state: &ExperimentState) -> Published {
    Published {
        snapshot: Arc::new(state.sim.snapshot()),
        canonical: Arc::clone(&state.strings.canonical),
        config_hash: Arc::clone(&state.strings.config_hash),
        scenario_json: Arc::clone(&state.strings.scenario_json),
        slots: state.sim.metrics().slots,
        last_touched: Instant::now(),
    }
}

/// Renders the branch report served by `GET …/branches`: scalar tree
/// facts plus parallel per-branch arrays (the `/v1/experiments` listing
/// idiom). Labels are validated upstream to need no JSON escaping.
fn branches_report(id: &str, tree: &StateTree) -> String {
    let outcomes = tree.outcomes();
    let slots_run = outcomes.first().map_or(0, |o| o.slots_run);
    let mut out = format!(
        "{{\"id\":\"{id}\",\"fork_slot\":{},\"branches\":{},\"slots_run\":{slots_run}",
        tree.fork_slot(),
        outcomes.len()
    );
    out.push_str(",\"first_divergence\":");
    match tree.first_divergence() {
        Some(slot) => out.push_str(&slot.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"labels\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&o.label);
        out.push('"');
    }
    out.push(']');
    {
        let mut u64s = |key: &str, of: &dyn Fn(&hbm_core::BranchOutcome) -> u64| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":[");
            for (i, o) in outcomes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&of(o).to_string());
            }
            out.push(']');
        };
        u64s("attack_slots", &|o| o.metrics.attack_slots);
        u64s("emergency_slots", &|o| o.metrics.emergency_slots);
        u64s("outage_events", &|o| o.metrics.outage_events);
    }
    {
        let mut f64s = |key: &str, of: &dyn Fn(&hbm_core::BranchOutcome) -> f64| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":[");
            for (i, o) in outcomes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_f64(&mut out, of(o));
            }
            out.push(']');
        };
        f64s("attack_energy_kwh", &|o| {
            o.metrics.attack_energy.as_kilowatt_hours()
        });
        f64s("avg_delta_t_c", &|o| o.metrics.avg_delta_t().as_celsius());
        f64s("inlet_c", &|o| o.inlet_c);
        f64s("battery_soc", &|o| o.battery_soc);
    }
    out.push('}');
    out
}

impl Supervisor {
    /// A supervisor persisting through `store` (`None`: memory only).
    /// With a store, checkpoints are write-behind: enqueued per mutation,
    /// coalesced latest-wins, flushed on delete/[`Supervisor::flush`]/drop.
    pub fn new(config: SupervisorConfig, store: Option<ExperimentStore>) -> Supervisor {
        let store = store.map(Arc::new);
        let writer = store.as_ref().map(|s| CheckpointWriter::new(Arc::clone(s)));
        Supervisor {
            store,
            writer,
            config,
            table: Mutex::new(Table {
                entries: HashMap::new(),
                next_id: 1,
            }),
        }
    }

    /// Live experiment count (the `experiments_active` gauge).
    pub fn active(&self) -> usize {
        self.table.lock().unwrap().entries.len()
    }

    /// Checkpoint writes that failed since boot (`checkpoint_failures` in
    /// `GET /v1/metrics`); always 0 without a state dir.
    pub fn checkpoint_failures(&self) -> u64 {
        self.writer.as_ref().map_or(0, CheckpointWriter::failures)
    }

    /// Blocks until every queued checkpoint is on disk. The server calls
    /// this before `run()` returns, making orderly shutdown durable.
    pub fn flush(&self) {
        if let Some(writer) = &self.writer {
            writer.flush();
        }
    }

    fn resolve(&self, id: &str) -> Result<Arc<Slot>, ApiError> {
        self.table
            .lock()
            .unwrap()
            .entries
            .get(id)
            .cloned()
            .ok_or_else(|| (404, format!("no experiment {id:?}")))
    }

    /// Enqueues `slot`'s current published state for write-behind
    /// persistence, unless the experiment was retired (deleted/evicted)
    /// meanwhile. Persistence failures are counted, not fatal: the
    /// in-memory experiment stays authoritative.
    fn save(&self, slot: &Slot, state: &ExperimentState, published: &Published) {
        let Some(writer) = &self.writer else { return };
        if slot.retired.load(Ordering::SeqCst) {
            return;
        }
        writer.enqueue(
            &slot.id,
            PendingSave {
                warmup_slots: state.warmup_slots,
                steps: state.steps,
                perturbs: state.perturbs,
                scenario_json: Arc::clone(&published.scenario_json),
                snapshot: Arc::clone(&published.snapshot),
            },
        );
    }

    /// Creates an experiment: validates and builds the scenario, runs the
    /// warm-up (for learning policies), registers the slot, and enqueues
    /// the first checkpoint. Runs on a worker thread — warm-up can be
    /// long.
    ///
    /// # Errors
    ///
    /// `400` for an invalid scenario, `429` at the experiment capacity.
    pub fn create(&self, scenario: Scenario) -> Result<CreateOutcome, ApiError> {
        if self.active() >= self.config.max_experiments {
            return Err((
                429,
                format!(
                    "experiment capacity {} reached; delete one or raise --max-experiments",
                    self.config.max_experiments
                ),
            ));
        }
        let (mut sim, needs_warmup) = scenario.build_sim().map_err(|e| (400, e))?;
        let warmup_slots = if needs_warmup {
            sim.warmup(scenario.warmup_slots());
            scenario.warmup_slots()
        } else {
            0
        };
        let strings = ScenarioStrings::of(&scenario);
        let state = ExperimentState {
            scenario,
            strings,
            sim,
            tree: None,
            warmup_slots,
            steps: 0,
            perturbs: 0,
        };
        let published = publish(&state);
        let slot = {
            let mut table = self.table.lock().unwrap();
            if table.entries.len() >= self.config.max_experiments {
                return Err((
                    429,
                    format!(
                        "experiment capacity {} reached; delete one or raise --max-experiments",
                        self.config.max_experiments
                    ),
                ));
            }
            let id = format!("exp-{:06}", table.next_id);
            table.next_id += 1;
            let slot = Arc::new(Slot {
                id: id.clone(),
                retired: AtomicBool::new(false),
                state: Mutex::new(state),
                published: Mutex::new(published),
                branches: Mutex::new(None),
            });
            table.entries.insert(id, Arc::clone(&slot));
            slot
        };
        let state = slot.state.lock().unwrap();
        let published = slot.published.lock().unwrap();
        self.save(&slot, &state, &published);
        Ok(CreateOutcome {
            id: slot.id.clone(),
            warmup_slots,
        })
    }

    /// Steps an experiment `slots` measured slots and enqueues the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id, `410` if it was deleted mid-flight.
    pub fn step(&self, id: &str, slots: u64) -> Result<StepOutcome, ApiError> {
        let slot = self.resolve(id)?;
        let mut state = slot.state.lock().unwrap();
        if slot.retired.load(Ordering::SeqCst) {
            return Err((410, format!("experiment {id:?} was deleted")));
        }
        for _ in 0..slots {
            state.sim.step();
        }
        state.steps += 1;
        let published = publish(&state);
        let outcome = StepOutcome {
            id: slot.id.clone(),
            stepped: slots,
            slots: published.slots,
        };
        self.save(&slot, &state, &published);
        *slot.published.lock().unwrap() = published;
        Ok(outcome)
    }

    /// Applies a perturbation: rebuilds the simulation from the perturbed
    /// (effective) scenario and transplants the dynamic state through an
    /// in-memory binary [`Snapshot`] — bit-equivalent to the JSON
    /// checkpoint round trip a crash-restore performs, so perturbed
    /// experiments stay bit-exact across restarts. Returns the effective
    /// scenario's flat JSON.
    ///
    /// # Errors
    ///
    /// `404`/`410` as for [`Supervisor::step`]; `400` if the perturbed
    /// scenario is invalid; `500` if the state transplant fails.
    pub fn perturb(&self, id: &str, perturbation: &Perturbation) -> Result<String, ApiError> {
        let slot = self.resolve(id)?;
        let mut state = slot.state.lock().unwrap();
        if slot.retired.load(Ordering::SeqCst) {
            return Err((410, format!("experiment {id:?} was deleted")));
        }
        let effective = perturbation.apply(&state.scenario);
        // Perturbations cannot change the seed, so the rebuilt simulator
        // shares the live one's workload trace unless the perturbation
        // changed the workload itself — no trace regeneration on this path.
        let (mut sim, _) = effective
            .build_sim_sharing_trace(&state.sim, state.scenario.seed)
            .map_err(|e| (400, e))?;
        sim.restore(&state.sim.snapshot())
            .map_err(|e| (500, format!("state transplant failed: {e}")))?;
        state.sim = sim;
        state.strings = ScenarioStrings::of(&effective);
        state.scenario = effective;
        state.perturbs += 1;
        let published = publish(&state);
        let scenario_json = published.scenario_json.as_ref().clone();
        self.save(&slot, &state, &published);
        *slot.published.lock().unwrap() = published;
        Ok(scenario_json)
    }

    /// Adds a branch to the experiment's [`StateTree`], rooting the tree
    /// at the experiment's *current* state on the first fork. An empty
    /// perturbation is the control branch (a plain state fork); a
    /// non-empty one rebuilds from the perturbed scenario with the fork
    /// point's snapshot transplanted in. Branches are memory-only.
    ///
    /// # Errors
    ///
    /// `404`/`410` as for [`Supervisor::step`]; `400` for an invalid
    /// perturbation; `429` at the branch capacity.
    pub fn fork(
        &self,
        id: &str,
        label: Option<String>,
        perturbation: &Perturbation,
    ) -> Result<ForkOutcome, ApiError> {
        let slot = self.resolve(id)?;
        let mut state = slot.state.lock().unwrap();
        if slot.retired.load(Ordering::SeqCst) {
            return Err((410, format!("experiment {id:?} was deleted")));
        }
        let rooted_now = state.tree.is_none();
        if rooted_now {
            let base = state.sim.fork();
            let scenario = state.scenario.clone();
            state.tree = Some(StateTree::new(base, scenario));
        }
        let max_branches = self.config.max_branches;
        let tree = state.tree.as_mut().expect("tree just ensured");
        if tree.len() >= max_branches {
            return Err((
                429,
                format!("branch capacity {max_branches} reached; DELETE …/branches to start over"),
            ));
        }
        let label = label.unwrap_or_else(|| format!("branch-{}", tree.len()));
        let branch = match tree.branch(label.clone(), perturbation) {
            Ok(index) => index as u64,
            Err(e) => {
                if rooted_now {
                    // Do not leave an empty tree pinned at this slot: the
                    // fork point is the first *successful* fork.
                    state.tree = None;
                }
                return Err((400, e));
            }
        };
        let tree = state.tree.as_ref().expect("tree holds the new branch");
        let outcome = ForkOutcome {
            id: slot.id.clone(),
            branch,
            label,
            fork_slot: tree.fork_slot(),
            branches: tree.len() as u64,
            scenario: perturbation.apply(tree.scenario()),
        };
        let report = Arc::new(branches_report(&slot.id, tree));
        drop(state);
        *slot.branches.lock().unwrap() = Some(report);
        Ok(outcome)
    }

    /// Advances every branch of the experiment's tree by `slots` in
    /// lockstep (batch lanes) and republishes the branch report. The
    /// trunk experiment does not move.
    ///
    /// # Errors
    ///
    /// `404`/`410` as for [`Supervisor::step`]; `409` if the experiment
    /// has no branches; `413` past the cumulative branch-slot budget.
    pub fn branch_step(&self, id: &str, slots: u64) -> Result<BranchStepOutcome, ApiError> {
        let slot = self.resolve(id)?;
        let mut state = slot.state.lock().unwrap();
        if slot.retired.load(Ordering::SeqCst) {
            return Err((410, format!("experiment {id:?} was deleted")));
        }
        let max_branch_slots = self.config.max_branch_slots;
        let tree = state
            .tree
            .as_mut()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| {
                (
                    409,
                    format!("experiment {id:?} has no branches; POST …/fork first"),
                )
            })?;
        let horizon = tree.records(0).len() as u64;
        if horizon + slots > max_branch_slots {
            return Err((
                413,
                format!("branch horizon {horizon}+{slots} exceeds the budget {max_branch_slots}"),
            ));
        }
        tree.run(slots);
        let outcome = BranchStepOutcome {
            id: slot.id.clone(),
            stepped: slots,
            branches: tree.len() as u64,
            first_divergence: tree.first_divergence(),
        };
        let report = Arc::new(branches_report(&slot.id, tree));
        drop(state);
        *slot.branches.lock().unwrap() = Some(report);
        Ok(outcome)
    }

    /// The published branch report (refreshes the idle clock).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id or when the experiment has no branches.
    pub fn branches_of(&self, id: &str) -> Result<Arc<String>, ApiError> {
        let slot = self.resolve(id)?;
        slot.published.lock().unwrap().last_touched = Instant::now();
        let report = slot.branches.lock().unwrap().clone();
        report.ok_or_else(|| (404, format!("experiment {id:?} has no branches")))
    }

    /// Drops the experiment's branch tree, freeing its lanes and records.
    /// Returns how many branches went.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id or when the experiment has no branches.
    pub fn branch_delete(&self, id: &str) -> Result<u64, ApiError> {
        let slot = self.resolve(id)?;
        let mut state = slot.state.lock().unwrap();
        let tree = state
            .tree
            .take()
            .ok_or_else(|| (404, format!("experiment {id:?} has no branches")))?;
        let branches = tree.len() as u64;
        drop(state);
        *slot.branches.lock().unwrap() = None;
        Ok(branches)
    }

    /// Deletes an experiment: unregisters it, waits for any in-flight
    /// operation to drain, discards its queued checkpoint, and removes its
    /// directory.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn delete(&self, id: &str) -> Result<(), ApiError> {
        let slot = {
            let mut table = self.table.lock().unwrap();
            table
                .entries
                .remove(id)
                .ok_or_else(|| (404, format!("no experiment {id:?}")))?
        };
        slot.retired.store(true, Ordering::SeqCst);
        let _drain = slot.state.lock().unwrap();
        if let Some(writer) = &self.writer {
            writer.forget(&slot.id);
        }
        if let Some(store) = &self.store {
            if let Err(e) = store.remove(&slot.id) {
                eprintln!("warning: cannot remove experiment {}: {e}", slot.id);
            }
        }
        Ok(())
    }

    /// Evicts every experiment idle longer than the TTL, returning how
    /// many went. Busy experiments are never evicted (stepping counts as
    /// touching). No-op without a TTL.
    pub fn sweep(&self) -> u64 {
        let Some(ttl) = self.config.ttl else { return 0 };
        let expired: Vec<Arc<Slot>> = {
            let mut table = self.table.lock().unwrap();
            let ids: Vec<String> = table
                .entries
                .values()
                .filter(|slot| slot.published.lock().unwrap().last_touched.elapsed() > ttl)
                .map(|slot| slot.id.clone())
                .collect();
            ids.iter()
                .filter_map(|id| table.entries.remove(id))
                .collect()
        };
        let evicted = expired.len() as u64;
        for slot in expired {
            slot.retired.store(true, Ordering::SeqCst);
            let _drain = slot.state.lock().unwrap();
            if let Some(writer) = &self.writer {
                writer.forget(&slot.id);
            }
            if let Some(store) = &self.store {
                let _ = store.remove(&slot.id);
            }
        }
        evicted
    }

    /// `(id, measured slots)` rows for every live experiment, id-sorted.
    pub fn list(&self) -> Vec<(String, u64)> {
        let slots: Vec<Arc<Slot>> = self
            .table
            .lock()
            .unwrap()
            .entries
            .values()
            .cloned()
            .collect();
        let mut rows: Vec<(String, u64)> = slots
            .iter()
            .map(|slot| (slot.id.clone(), slot.published.lock().unwrap().slots))
            .collect();
        rows.sort();
        rows
    }

    /// The latest checkpoint line, serialized lazily from the published
    /// binary snapshot (refreshes the idle clock).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn state_of(&self, id: &str) -> Result<String, ApiError> {
        let slot = self.resolve(id)?;
        let snapshot = {
            let mut published = slot.published.lock().unwrap();
            published.last_touched = Instant::now();
            Arc::clone(&published.snapshot)
        };
        Ok(snapshot.to_json())
    }

    /// The metrics line for the effective scenario — the same
    /// `metrics_json` bytes `/v1/simulate` would return for it — rendered
    /// lazily from the published snapshot, plus the effective config hash
    /// (refreshes the idle clock).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn metrics_of(&self, id: &str) -> Result<(String, String), ApiError> {
        let slot = self.resolve(id)?;
        let (snapshot, canonical, hash) = {
            let mut published = slot.published.lock().unwrap();
            published.last_touched = Instant::now();
            (
                Arc::clone(&published.snapshot),
                Arc::clone(&published.canonical),
                published.config_hash.as_ref().clone(),
            )
        };
        Ok((metrics_json(&canonical, snapshot.metrics()), hash))
    }

    /// Restores every persisted experiment from the store: rebuild from
    /// the effective scenario, overwrite the dynamic state from the
    /// checkpoint — bit-identical continuation. Returns how many restored;
    /// corrupt entries are skipped with a warning. Call before serving.
    pub fn recover(&self) -> u64 {
        let Some(store) = &self.store else { return 0 };
        let mut restored = 0;
        for p in store.load_all() {
            match Self::rebuild(&p.scenario_json, &p.snapshot) {
                Ok((scenario, sim)) => {
                    let strings = ScenarioStrings::of(&scenario);
                    let state = ExperimentState {
                        scenario,
                        strings,
                        sim,
                        tree: None,
                        warmup_slots: p.warmup_slots,
                        steps: p.steps,
                        perturbs: p.perturbs,
                    };
                    let published = publish(&state);
                    let mut table = self.table.lock().unwrap();
                    if let Some(n) =
                        p.id.strip_prefix("exp-")
                            .and_then(|s| s.parse::<u64>().ok())
                    {
                        table.next_id = table.next_id.max(n + 1);
                    }
                    table.entries.insert(
                        p.id.clone(),
                        Arc::new(Slot {
                            id: p.id,
                            retired: AtomicBool::new(false),
                            state: Mutex::new(state),
                            published: Mutex::new(published),
                            branches: Mutex::new(None),
                        }),
                    );
                    restored += 1;
                }
                Err(e) => eprintln!("warning: cannot restore experiment {:?}: {e}", p.id),
            }
        }
        restored
    }

    fn rebuild(scenario_json: &str, snapshot: &str) -> Result<(Scenario, Simulation), String> {
        let scenario = Scenario::from_flat_json(scenario_json)?;
        let (mut sim, _) = scenario.build_sim()?;
        sim.restore_from_json(snapshot)?;
        Ok((scenario, sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scenario() -> Scenario {
        let mut s = Scenario::new("myopic");
        s.days = 2;
        s.warmup_days = 0;
        s.seed = 5;
        s
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hbm_sup_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_step_metrics_delete_lifecycle() {
        let sup = Supervisor::new(SupervisorConfig::default(), None);
        let created = sup.create(scenario()).unwrap();
        assert_eq!(created.id, "exp-000001");
        assert_eq!(created.warmup_slots, 0);
        assert_eq!(sup.active(), 1);

        let out = sup.step(&created.id, 100).unwrap();
        assert_eq!((out.stepped, out.slots), (100, 100));
        let (metrics, hash) = sup.metrics_of(&created.id).unwrap();
        assert!(metrics.contains("\"slots\":100"), "got {metrics}");
        assert_eq!(hash, scenario().config_hash());
        assert_eq!(sup.list(), vec![(created.id.clone(), 100)]);

        sup.delete(&created.id).unwrap();
        assert_eq!(sup.active(), 0);
        assert_eq!(sup.step(&created.id, 1).unwrap_err().0, 404);
        assert_eq!(sup.delete(&created.id).unwrap_err().0, 404);
    }

    #[test]
    fn capacity_is_enforced_with_429() {
        let sup = Supervisor::new(
            SupervisorConfig {
                max_experiments: 1,
                ..SupervisorConfig::default()
            },
            None,
        );
        sup.create(scenario()).unwrap();
        assert_eq!(sup.create(scenario()).unwrap_err().0, 429);
    }

    #[test]
    fn stepped_experiment_matches_one_shot_scenario_run() {
        // Stepping to the full horizon must equal Scenario::run exactly.
        let sup = Supervisor::new(SupervisorConfig::default(), None);
        let s = scenario();
        let expected = metrics_json(&s.config_canonical(), &s.run().unwrap().metrics);
        let created = sup.create(s.clone()).unwrap();
        sup.step(&created.id, 1000).unwrap();
        sup.step(&created.id, s.slots() - 1000).unwrap();
        let (metrics, _) = sup.metrics_of(&created.id).unwrap();
        assert_eq!(metrics, expected);
    }

    #[test]
    fn recover_continues_bit_identically() {
        let dir = temp_dir("recover");
        let s = scenario();
        let expected = metrics_json(&s.config_canonical(), &s.run().unwrap().metrics);

        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        let created = sup.create(s.clone()).unwrap();
        sup.step(&created.id, 700).unwrap();
        drop(sup); // "kill" the daemon (drop flushes the write-behind queue)

        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        assert_eq!(sup.recover(), 1);
        assert_eq!(sup.list(), vec![(created.id.clone(), 700)]);
        sup.step(&created.id, s.slots() - 700).unwrap();
        let (metrics, _) = sup.metrics_of(&created.id).unwrap();
        assert_eq!(metrics, expected);

        // Ids keep counting past recovered ones.
        assert_eq!(sup.create(s).unwrap().id, "exp-000002");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn perturb_is_durable_and_bit_exact_across_recovery() {
        let dir = temp_dir("perturb");
        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        let created = sup.create(scenario()).unwrap();
        sup.step(&created.id, 500).unwrap();
        let perturbation = Perturbation {
            threshold_c: Some(30.5),
            ..Perturbation::default()
        };
        let effective = sup.perturb(&created.id, &perturbation).unwrap();
        assert!(
            effective.contains("\"threshold_c\":30.5"),
            "got {effective}"
        );
        sup.step(&created.id, 300).unwrap();
        let (reference, _) = sup.metrics_of(&created.id).unwrap();
        let snapshot = sup.state_of(&created.id).unwrap();
        drop(sup);

        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        assert_eq!(sup.recover(), 1);
        assert_eq!(sup.state_of(&created.id).unwrap(), snapshot);
        assert_eq!(sup.metrics_of(&created.id).unwrap().0, reference);

        // An invalid perturbation is rejected without corrupting state.
        let bad = Perturbation {
            utilization: Some(2.0),
            ..Perturbation::default()
        };
        assert_eq!(sup.perturb(&created.id, &bad).unwrap_err().0, 400);
        assert_eq!(sup.state_of(&created.id).unwrap(), snapshot);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_evicts_only_idle_experiments() {
        let sup = Supervisor::new(
            SupervisorConfig {
                max_experiments: 8,
                ttl: Some(Duration::from_secs(0)),
                ..SupervisorConfig::default()
            },
            None,
        );
        sup.create(scenario()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sup.sweep(), 1);
        assert_eq!(sup.active(), 0);

        let sup = Supervisor::new(
            SupervisorConfig {
                max_experiments: 8,
                ttl: Some(Duration::from_secs(3600)),
                ..SupervisorConfig::default()
            },
            None,
        );
        sup.create(scenario()).unwrap();
        assert_eq!(sup.sweep(), 0);
        assert_eq!(sup.active(), 1);
    }

    #[test]
    fn fork_branch_step_compare_delete_lifecycle() {
        let sup = Supervisor::new(SupervisorConfig::default(), None);
        let created = sup.create(scenario()).unwrap();
        sup.step(&created.id, 300).unwrap();

        // No branches yet.
        assert_eq!(sup.branches_of(&created.id).unwrap_err().0, 404);
        assert_eq!(sup.branch_step(&created.id, 10).unwrap_err().0, 409);

        // Control + a heavier-attack variant fork at slot 300.
        let control = sup
            .fork(&created.id, None, &Perturbation::default())
            .unwrap();
        assert_eq!(control.fork_slot, 300);
        assert_eq!((control.branch, control.branches), (0, 1));
        assert_eq!(control.label, "branch-0");
        let hot = Perturbation {
            attack_load_kw: Some(3.0),
            battery_kwh: Some(1.0),
            ..Perturbation::default()
        };
        let variant = sup.fork(&created.id, Some("hot".into()), &hot).unwrap();
        assert_eq!((variant.branch, variant.branches), (1, 2));
        assert_eq!(variant.fork_slot, 300);

        let out = sup.branch_step(&created.id, 1440).unwrap();
        assert_eq!((out.stepped, out.branches), (1440, 2));
        let div = out.first_divergence.expect("a 3 kW variant must diverge");
        assert!(div >= 300);

        let report = sup.branches_of(&created.id).unwrap();
        assert!(report.contains("\"fork_slot\":300"), "got {report}");
        assert!(report.contains("\"labels\":[\"branch-0\",\"hot\"]"));
        assert!(report.contains(&format!("\"first_divergence\":{div}")));

        // The trunk did not move: branch stepping is independent.
        let (metrics, _) = sup.metrics_of(&created.id).unwrap();
        assert!(metrics.contains("\"slots\":300"), "got {metrics}");

        // Invalid fork leaves the tree intact.
        let bad = Perturbation {
            utilization: Some(2.0),
            ..Perturbation::default()
        };
        assert_eq!(sup.fork(&created.id, None, &bad).unwrap_err().0, 400);
        assert_eq!(
            sup.branches_of(&created.id).unwrap().as_str(),
            report.as_str()
        );

        assert_eq!(sup.branch_delete(&created.id).unwrap(), 2);
        assert_eq!(sup.branches_of(&created.id).unwrap_err().0, 404);
        assert_eq!(sup.branch_delete(&created.id).unwrap_err().0, 404);
    }

    #[test]
    fn branch_capacity_and_budget_are_enforced() {
        let sup = Supervisor::new(
            SupervisorConfig {
                max_branches: 2,
                max_branch_slots: 100,
                ..SupervisorConfig::default()
            },
            None,
        );
        let created = sup.create(scenario()).unwrap();
        sup.fork(&created.id, None, &Perturbation::default())
            .unwrap();
        sup.fork(&created.id, None, &Perturbation::default())
            .unwrap();
        assert_eq!(
            sup.fork(&created.id, None, &Perturbation::default())
                .unwrap_err()
                .0,
            429
        );
        sup.branch_step(&created.id, 80).unwrap();
        assert_eq!(sup.branch_step(&created.id, 21).unwrap_err().0, 413);
        sup.branch_step(&created.id, 20).unwrap();
    }

    #[test]
    fn control_branch_matches_trunk_trajectory() {
        // Stepping the control branch N slots must land on the exact
        // attack accounting the trunk reaches after the same N slots.
        let sup = Supervisor::new(SupervisorConfig::default(), None);
        let created = sup.create(scenario()).unwrap();
        sup.step(&created.id, 400).unwrap();
        sup.fork(
            &created.id,
            Some("control".into()),
            &Perturbation::default(),
        )
        .unwrap();
        sup.branch_step(&created.id, 500).unwrap();
        sup.step(&created.id, 500).unwrap();
        let (trunk, _) = sup.metrics_of(&created.id).unwrap();
        let report = sup.branches_of(&created.id).unwrap();
        let trunk_attack_slots = trunk
            .split("\"attack_slots\":")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .unwrap()
            .to_string();
        assert!(
            report.contains(&format!("\"attack_slots\":[{trunk_attack_slots}]")),
            "branch report {report} must match trunk {trunk}"
        );
    }
}
