//! The experiment supervisor: long-lived simulations behind the API.
//!
//! An *experiment* is a [`Simulation`] that outlives any one request:
//! created (and warmed up) once, then stepped, perturbed, inspected, and
//! eventually deleted. The [`Supervisor`] owns the table of live
//! experiments; mutating operations (create/step/perturb/delete) run on
//! the daemon's worker pool and serialize per experiment through its state
//! mutex, while reads (`state`/`metrics`/list) answer inline on the accept
//! thread from a small *published* snapshot refreshed after every mutation
//! — a slow step can never stall a read or the accept loop.
//!
//! After every mutating operation the supervisor writes the experiment's
//! manifest and checkpoint through [`ExperimentStore`] (when the daemon
//! has a state dir), so a killed daemon restarts with
//! [`Supervisor::recover`] and every experiment continues bit-identically
//! — the contract proven by `crates/core/tests/checkpoint.rs` and the
//! serve crate's kill-and-restore test.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hbm_core::scenario::metrics_json;
use hbm_core::{Perturbation, Scenario, Simulation};

use crate::store::ExperimentStore;

/// An API-level failure: the HTTP status to answer with and a message.
pub type ApiError = (u16, String);

/// Tuning for a [`Supervisor`], split out of `ServeConfig`.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Maximum live experiments; creates beyond this answer `429`.
    pub max_experiments: usize,
    /// Evict experiments idle longer than this (`None`: never).
    pub ttl: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_experiments: 64,
            ttl: None,
        }
    }
}

/// The in-memory state of one experiment, guarded by its slot's mutex.
struct ExperimentState {
    scenario: Scenario,
    sim: Simulation,
    warmup_slots: u64,
    steps: u64,
    perturbs: u64,
}

/// What reads see without touching the simulation: refreshed after every
/// mutating operation.
struct Published {
    snapshot: String,
    metrics: String,
    config_hash: String,
    scenario_json: String,
    slots: u64,
    last_touched: Instant,
}

struct Slot {
    id: String,
    /// Set (under no lock) when the experiment is deleted or evicted;
    /// queued operations that already resolved the slot check it before
    /// persisting, so they can never resurrect a removed directory.
    retired: AtomicBool,
    state: Mutex<ExperimentState>,
    published: Mutex<Published>,
}

struct Table {
    entries: HashMap<String, Arc<Slot>>,
    next_id: u64,
}

/// Owns every live experiment; see the module docs for the locking story.
pub struct Supervisor {
    store: Option<ExperimentStore>,
    config: SupervisorConfig,
    table: Mutex<Table>,
}

/// A successful create: the new id and how much warm-up ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateOutcome {
    /// The new experiment id.
    pub id: String,
    /// Warm-up slots run before the experiment became steppable.
    pub warmup_slots: u64,
}

/// A successful step: how far the experiment advanced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// The experiment id.
    pub id: String,
    /// Slots stepped by this operation.
    pub stepped: u64,
    /// Total measured slots so far.
    pub slots: u64,
}

fn publish(state: &ExperimentState) -> Published {
    Published {
        snapshot: state.sim.snapshot_json(),
        metrics: metrics_json(&state.scenario.config_canonical(), state.sim.metrics()),
        config_hash: state.scenario.config_hash(),
        scenario_json: state.scenario.to_flat_json(),
        slots: state.sim.metrics().slots,
        last_touched: Instant::now(),
    }
}

impl Supervisor {
    /// A supervisor persisting through `store` (`None`: memory only).
    pub fn new(config: SupervisorConfig, store: Option<ExperimentStore>) -> Supervisor {
        Supervisor {
            store,
            config,
            table: Mutex::new(Table {
                entries: HashMap::new(),
                next_id: 1,
            }),
        }
    }

    /// Live experiment count (the `experiments_active` gauge).
    pub fn active(&self) -> usize {
        self.table.lock().unwrap().entries.len()
    }

    fn resolve(&self, id: &str) -> Result<Arc<Slot>, ApiError> {
        self.table
            .lock()
            .unwrap()
            .entries
            .get(id)
            .cloned()
            .ok_or_else(|| (404, format!("no experiment {id:?}")))
    }

    /// Persists `slot`'s current published state, unless the experiment
    /// was retired (deleted/evicted) meanwhile. Persistence failures are
    /// warnings: the in-memory experiment stays authoritative.
    fn save(&self, slot: &Slot, state: &ExperimentState, published: &Published) {
        let Some(store) = &self.store else { return };
        if slot.retired.load(Ordering::SeqCst) {
            return;
        }
        if let Err(e) = store.save(
            &slot.id,
            state.warmup_slots,
            state.steps,
            state.perturbs,
            &published.scenario_json,
            &published.snapshot,
        ) {
            eprintln!("warning: cannot checkpoint experiment {}: {e}", slot.id);
        }
    }

    /// Creates an experiment: validates and builds the scenario, runs the
    /// warm-up (for learning policies), registers the slot, and writes the
    /// first checkpoint. Runs on a worker thread — warm-up can be long.
    ///
    /// # Errors
    ///
    /// `400` for an invalid scenario, `429` at the experiment capacity.
    pub fn create(&self, scenario: Scenario) -> Result<CreateOutcome, ApiError> {
        if self.active() >= self.config.max_experiments {
            return Err((
                429,
                format!(
                    "experiment capacity {} reached; delete one or raise --max-experiments",
                    self.config.max_experiments
                ),
            ));
        }
        let (mut sim, needs_warmup) = scenario.build_sim().map_err(|e| (400, e))?;
        let warmup_slots = if needs_warmup {
            sim.warmup(scenario.warmup_slots());
            scenario.warmup_slots()
        } else {
            0
        };
        let state = ExperimentState {
            scenario,
            sim,
            warmup_slots,
            steps: 0,
            perturbs: 0,
        };
        let published = publish(&state);
        let slot = {
            let mut table = self.table.lock().unwrap();
            if table.entries.len() >= self.config.max_experiments {
                return Err((
                    429,
                    format!(
                        "experiment capacity {} reached; delete one or raise --max-experiments",
                        self.config.max_experiments
                    ),
                ));
            }
            let id = format!("exp-{:06}", table.next_id);
            table.next_id += 1;
            let slot = Arc::new(Slot {
                id: id.clone(),
                retired: AtomicBool::new(false),
                state: Mutex::new(state),
                published: Mutex::new(published),
            });
            table.entries.insert(id, Arc::clone(&slot));
            slot
        };
        let state = slot.state.lock().unwrap();
        let published = slot.published.lock().unwrap();
        self.save(&slot, &state, &published);
        Ok(CreateOutcome {
            id: slot.id.clone(),
            warmup_slots,
        })
    }

    /// Steps an experiment `slots` measured slots and checkpoints.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id, `410` if it was deleted mid-flight.
    pub fn step(&self, id: &str, slots: u64) -> Result<StepOutcome, ApiError> {
        let slot = self.resolve(id)?;
        let mut state = slot.state.lock().unwrap();
        if slot.retired.load(Ordering::SeqCst) {
            return Err((410, format!("experiment {id:?} was deleted")));
        }
        for _ in 0..slots {
            state.sim.step();
        }
        state.steps += 1;
        let published = publish(&state);
        let outcome = StepOutcome {
            id: slot.id.clone(),
            stepped: slots,
            slots: published.slots,
        };
        self.save(&slot, &state, &published);
        *slot.published.lock().unwrap() = published;
        Ok(outcome)
    }

    /// Applies a perturbation: rebuilds the simulation from the perturbed
    /// (effective) scenario, transplants the dynamic state through a
    /// checkpoint, and persists the new manifest — exactly the rebuild a
    /// crash-restore performs, so perturbed experiments stay bit-exact
    /// across restarts. Returns the effective scenario's flat JSON.
    ///
    /// # Errors
    ///
    /// `404`/`410` as for [`Supervisor::step`]; `400` if the perturbed
    /// scenario is invalid; `500` if the state transplant fails.
    pub fn perturb(&self, id: &str, perturbation: &Perturbation) -> Result<String, ApiError> {
        let slot = self.resolve(id)?;
        let mut state = slot.state.lock().unwrap();
        if slot.retired.load(Ordering::SeqCst) {
            return Err((410, format!("experiment {id:?} was deleted")));
        }
        let effective = perturbation.apply(&state.scenario);
        let (mut sim, _) = effective.build_sim().map_err(|e| (400, e))?;
        sim.restore_from_json(&state.sim.snapshot_json())
            .map_err(|e| (500, format!("state transplant failed: {e}")))?;
        state.sim = sim;
        state.scenario = effective;
        state.perturbs += 1;
        let published = publish(&state);
        let scenario_json = published.scenario_json.clone();
        self.save(&slot, &state, &published);
        *slot.published.lock().unwrap() = published;
        Ok(scenario_json)
    }

    /// Deletes an experiment: unregisters it, waits for any in-flight
    /// operation to drain, and removes its directory.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn delete(&self, id: &str) -> Result<(), ApiError> {
        let slot = {
            let mut table = self.table.lock().unwrap();
            table
                .entries
                .remove(id)
                .ok_or_else(|| (404, format!("no experiment {id:?}")))?
        };
        slot.retired.store(true, Ordering::SeqCst);
        let _drain = slot.state.lock().unwrap();
        if let Some(store) = &self.store {
            if let Err(e) = store.remove(&slot.id) {
                eprintln!("warning: cannot remove experiment {}: {e}", slot.id);
            }
        }
        Ok(())
    }

    /// Evicts every experiment idle longer than the TTL, returning how
    /// many went. Busy experiments are never evicted (stepping counts as
    /// touching). No-op without a TTL.
    pub fn sweep(&self) -> u64 {
        let Some(ttl) = self.config.ttl else { return 0 };
        let expired: Vec<Arc<Slot>> = {
            let mut table = self.table.lock().unwrap();
            let ids: Vec<String> = table
                .entries
                .values()
                .filter(|slot| slot.published.lock().unwrap().last_touched.elapsed() > ttl)
                .map(|slot| slot.id.clone())
                .collect();
            ids.iter()
                .filter_map(|id| table.entries.remove(id))
                .collect()
        };
        let evicted = expired.len() as u64;
        for slot in expired {
            slot.retired.store(true, Ordering::SeqCst);
            let _drain = slot.state.lock().unwrap();
            if let Some(store) = &self.store {
                let _ = store.remove(&slot.id);
            }
        }
        evicted
    }

    /// `(id, measured slots)` rows for every live experiment, id-sorted.
    pub fn list(&self) -> Vec<(String, u64)> {
        let slots: Vec<Arc<Slot>> = self
            .table
            .lock()
            .unwrap()
            .entries
            .values()
            .cloned()
            .collect();
        let mut rows: Vec<(String, u64)> = slots
            .iter()
            .map(|slot| (slot.id.clone(), slot.published.lock().unwrap().slots))
            .collect();
        rows.sort();
        rows
    }

    /// The latest checkpoint line (refreshes the idle clock).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn state_of(&self, id: &str) -> Result<String, ApiError> {
        let slot = self.resolve(id)?;
        let mut published = slot.published.lock().unwrap();
        published.last_touched = Instant::now();
        Ok(published.snapshot.clone())
    }

    /// The metrics line for the effective scenario — the same
    /// `metrics_json` bytes `/v1/simulate` would return for it — plus the
    /// effective config hash (refreshes the idle clock).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn metrics_of(&self, id: &str) -> Result<(String, String), ApiError> {
        let slot = self.resolve(id)?;
        let mut published = slot.published.lock().unwrap();
        published.last_touched = Instant::now();
        Ok((published.metrics.clone(), published.config_hash.clone()))
    }

    /// Restores every persisted experiment from the store: rebuild from
    /// the effective scenario, overwrite the dynamic state from the
    /// checkpoint — bit-identical continuation. Returns how many restored;
    /// corrupt entries are skipped with a warning. Call before serving.
    pub fn recover(&self) -> u64 {
        let Some(store) = &self.store else { return 0 };
        let mut restored = 0;
        for p in store.load_all() {
            match Self::rebuild(&p.scenario_json, &p.snapshot) {
                Ok((scenario, sim)) => {
                    let state = ExperimentState {
                        scenario,
                        sim,
                        warmup_slots: p.warmup_slots,
                        steps: p.steps,
                        perturbs: p.perturbs,
                    };
                    let published = publish(&state);
                    let mut table = self.table.lock().unwrap();
                    if let Some(n) =
                        p.id.strip_prefix("exp-")
                            .and_then(|s| s.parse::<u64>().ok())
                    {
                        table.next_id = table.next_id.max(n + 1);
                    }
                    table.entries.insert(
                        p.id.clone(),
                        Arc::new(Slot {
                            id: p.id,
                            retired: AtomicBool::new(false),
                            state: Mutex::new(state),
                            published: Mutex::new(published),
                        }),
                    );
                    restored += 1;
                }
                Err(e) => eprintln!("warning: cannot restore experiment {:?}: {e}", p.id),
            }
        }
        restored
    }

    fn rebuild(scenario_json: &str, snapshot: &str) -> Result<(Scenario, Simulation), String> {
        let scenario = Scenario::from_flat_json(scenario_json)?;
        let (mut sim, _) = scenario.build_sim()?;
        sim.restore_from_json(snapshot)?;
        Ok((scenario, sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scenario() -> Scenario {
        let mut s = Scenario::new("myopic");
        s.days = 2;
        s.warmup_days = 0;
        s.seed = 5;
        s
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hbm_sup_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_step_metrics_delete_lifecycle() {
        let sup = Supervisor::new(SupervisorConfig::default(), None);
        let created = sup.create(scenario()).unwrap();
        assert_eq!(created.id, "exp-000001");
        assert_eq!(created.warmup_slots, 0);
        assert_eq!(sup.active(), 1);

        let out = sup.step(&created.id, 100).unwrap();
        assert_eq!((out.stepped, out.slots), (100, 100));
        let (metrics, hash) = sup.metrics_of(&created.id).unwrap();
        assert!(metrics.contains("\"slots\":100"), "got {metrics}");
        assert_eq!(hash, scenario().config_hash());
        assert_eq!(sup.list(), vec![(created.id.clone(), 100)]);

        sup.delete(&created.id).unwrap();
        assert_eq!(sup.active(), 0);
        assert_eq!(sup.step(&created.id, 1).unwrap_err().0, 404);
        assert_eq!(sup.delete(&created.id).unwrap_err().0, 404);
    }

    #[test]
    fn capacity_is_enforced_with_429() {
        let sup = Supervisor::new(
            SupervisorConfig {
                max_experiments: 1,
                ttl: None,
            },
            None,
        );
        sup.create(scenario()).unwrap();
        assert_eq!(sup.create(scenario()).unwrap_err().0, 429);
    }

    #[test]
    fn stepped_experiment_matches_one_shot_scenario_run() {
        // Stepping to the full horizon must equal Scenario::run exactly.
        let sup = Supervisor::new(SupervisorConfig::default(), None);
        let s = scenario();
        let expected = metrics_json(&s.config_canonical(), &s.run().unwrap().metrics);
        let created = sup.create(s.clone()).unwrap();
        sup.step(&created.id, 1000).unwrap();
        sup.step(&created.id, s.slots() - 1000).unwrap();
        let (metrics, _) = sup.metrics_of(&created.id).unwrap();
        assert_eq!(metrics, expected);
    }

    #[test]
    fn recover_continues_bit_identically() {
        let dir = temp_dir("recover");
        let s = scenario();
        let expected = metrics_json(&s.config_canonical(), &s.run().unwrap().metrics);

        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        let created = sup.create(s.clone()).unwrap();
        sup.step(&created.id, 700).unwrap();
        drop(sup); // "kill" the daemon

        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        assert_eq!(sup.recover(), 1);
        assert_eq!(sup.list(), vec![(created.id.clone(), 700)]);
        sup.step(&created.id, s.slots() - 700).unwrap();
        let (metrics, _) = sup.metrics_of(&created.id).unwrap();
        assert_eq!(metrics, expected);

        // Ids keep counting past recovered ones.
        assert_eq!(sup.create(s).unwrap().id, "exp-000002");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn perturb_is_durable_and_bit_exact_across_recovery() {
        let dir = temp_dir("perturb");
        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        let created = sup.create(scenario()).unwrap();
        sup.step(&created.id, 500).unwrap();
        let perturbation = Perturbation {
            threshold_c: Some(30.5),
            ..Perturbation::default()
        };
        let effective = sup.perturb(&created.id, &perturbation).unwrap();
        assert!(
            effective.contains("\"threshold_c\":30.5"),
            "got {effective}"
        );
        sup.step(&created.id, 300).unwrap();
        let (reference, _) = sup.metrics_of(&created.id).unwrap();
        let snapshot = sup.state_of(&created.id).unwrap();
        drop(sup);

        let sup = Supervisor::new(
            SupervisorConfig::default(),
            Some(ExperimentStore::open(&dir).unwrap()),
        );
        assert_eq!(sup.recover(), 1);
        assert_eq!(sup.state_of(&created.id).unwrap(), snapshot);
        assert_eq!(sup.metrics_of(&created.id).unwrap().0, reference);

        // An invalid perturbation is rejected without corrupting state.
        let bad = Perturbation {
            utilization: Some(2.0),
            ..Perturbation::default()
        };
        assert_eq!(sup.perturb(&created.id, &bad).unwrap_err().0, 400);
        assert_eq!(sup.state_of(&created.id).unwrap(), snapshot);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_evicts_only_idle_experiments() {
        let sup = Supervisor::new(
            SupervisorConfig {
                max_experiments: 8,
                ttl: Some(Duration::from_secs(0)),
            },
            None,
        );
        sup.create(scenario()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sup.sweep(), 1);
        assert_eq!(sup.active(), 0);

        let sup = Supervisor::new(
            SupervisorConfig {
                max_experiments: 8,
                ttl: Some(Duration::from_secs(3600)),
            },
            None,
        );
        sup.create(scenario()).unwrap();
        assert_eq!(sup.sweep(), 0);
        assert_eq!(sup.active(), 1);
    }
}
