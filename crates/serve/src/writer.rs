//! Write-behind checkpointing: a dedicated thread turns in-memory
//! snapshots into on-disk checkpoints off the request path.
//!
//! The supervisor used to serialize and `fsync`-rename two files inside
//! every mutating operation — the dominant cost of a session step. A
//! [`CheckpointWriter`] replaces that with a *latest-wins* queue: each
//! enqueue coalesces onto any still-pending save for the same experiment
//! (only the newest snapshot matters — checkpoints are recovery points,
//! not a journal), and a single writer thread serializes the snapshot and
//! writes both files. The queue is bounded by construction: at most one
//! pending save per live experiment, so its size never exceeds the
//! supervisor's experiment capacity.
//!
//! Durability contract: [`CheckpointWriter::flush`] drains the queue and
//! any in-flight write; the server calls it before `run()` returns, and
//! dropping the writer flushes too — so an orderly shutdown always leaves
//! the newest state on disk (the kill-and-restore test proves the
//! round trip). [`CheckpointWriter::forget`] lets a delete discard the
//! pending save and wait out an in-flight one, so removal can never race
//! a write that would resurrect the directory. Write failures bump a
//! counter surfaced as `checkpoint_failures` in `GET /v1/metrics`; the
//! in-memory experiment stays authoritative.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hbm_core::Snapshot;

use crate::store::ExperimentStore;

/// One coalescable save: everything [`ExperimentStore::save`] needs, with
/// the snapshot still binary — the writer thread serializes it.
pub struct PendingSave {
    /// Warm-up slots run at creation.
    pub warmup_slots: u64,
    /// Completed step operations.
    pub steps: u64,
    /// Applied perturbations.
    pub perturbs: u64,
    /// The effective scenario, one flat-JSON line (shared, not copied).
    pub scenario_json: Arc<String>,
    /// The binary snapshot; serialized to `hbm-checkpoint-v1` JSON on the
    /// writer thread, not the caller's.
    pub snapshot: Arc<Snapshot>,
}

struct WriterState {
    /// Latest pending save per experiment id (latest wins).
    pending: HashMap<String, PendingSave>,
    /// The id whose save is being written right now, if any.
    writing: Option<String>,
    /// Set once on shutdown; the thread drains `pending` and exits.
    closing: bool,
}

struct Inner {
    store: Arc<ExperimentStore>,
    state: Mutex<WriterState>,
    /// Signals the writer (work/closing) and waiters (write finished).
    cond: Condvar,
    failures: AtomicU64,
}

/// The write-behind checkpoint queue plus its writer thread.
pub struct CheckpointWriter {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl CheckpointWriter {
    /// Starts the writer thread over `store`.
    pub fn new(store: Arc<ExperimentStore>) -> CheckpointWriter {
        let inner = Arc::new(Inner {
            store,
            state: Mutex::new(WriterState {
                pending: HashMap::new(),
                writing: None,
                closing: false,
            }),
            cond: Condvar::new(),
            failures: AtomicU64::new(0),
        });
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("hbm-checkpoint-writer".into())
                .spawn(move || writer_loop(&inner))
                .expect("spawn checkpoint writer")
        };
        CheckpointWriter {
            inner,
            thread: Some(thread),
        }
    }

    /// Queues (or replaces) the save for `id` — latest wins.
    pub fn enqueue(&self, id: &str, save: PendingSave) {
        let mut state = self.inner.state.lock().unwrap();
        state.pending.insert(id.to_string(), save);
        self.inner.cond.notify_all();
    }

    /// Drops any pending save for `id` and waits for an in-flight write of
    /// it to finish, so the caller can remove the directory without racing
    /// a write that would recreate it.
    pub fn forget(&self, id: &str) {
        let mut state = self.inner.state.lock().unwrap();
        state.pending.remove(id);
        while state.writing.as_deref() == Some(id) {
            state = self.inner.cond.wait(state).unwrap();
        }
    }

    /// Blocks until every queued save (and any in-flight one) is on disk.
    pub fn flush(&self) {
        let mut state = self.inner.state.lock().unwrap();
        while !state.pending.is_empty() || state.writing.is_some() {
            state = self.inner.cond.wait(state).unwrap();
        }
    }

    /// Checkpoint writes that failed since boot (the
    /// `checkpoint_failures` counter of `GET /v1/metrics`).
    pub fn failures(&self) -> u64 {
        self.inner.failures.load(Ordering::Relaxed)
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.closing = true;
            self.inner.cond.notify_all();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn writer_loop(inner: &Inner) {
    loop {
        let (id, save) = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(id) = state.pending.keys().next().cloned() {
                    let save = state.pending.remove(&id).expect("key just seen");
                    state.writing = Some(id.clone());
                    break (id, save);
                }
                if state.closing {
                    return;
                }
                state = inner.cond.wait(state).unwrap();
            }
        };
        // Serialize and write outside the lock: enqueues keep landing (and
        // coalescing) while the files go down.
        let snapshot_line = save.snapshot.to_json();
        if let Err(e) = inner.store.save(
            &id,
            save.warmup_slots,
            save.steps,
            save.perturbs,
            &save.scenario_json,
            &snapshot_line,
        ) {
            inner.failures.fetch_add(1, Ordering::Relaxed);
            eprintln!("warning: cannot checkpoint experiment {id}: {e}");
        }
        let mut state = inner.state.lock().unwrap();
        state.writing = None;
        inner.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_core::Scenario;
    use std::path::PathBuf;

    fn snapshot_pair() -> (Arc<String>, Arc<Snapshot>) {
        let mut s = Scenario::new("myopic");
        s.days = 1;
        s.warmup_days = 0;
        s.seed = 3;
        let (mut sim, _) = s.build_sim().unwrap();
        sim.run(50);
        (Arc::new(s.to_flat_json()), Arc::new(sim.snapshot()))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hbm_writer_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn flush_makes_queued_saves_durable_and_coalesces() {
        let dir = temp_dir("flush");
        let store = Arc::new(ExperimentStore::open(&dir).unwrap());
        let writer = CheckpointWriter::new(Arc::clone(&store));
        let (scenario_json, snapshot) = snapshot_pair();
        // Many enqueues for one id: only the last must survive.
        for steps in 0..50 {
            writer.enqueue(
                "exp-000001",
                PendingSave {
                    warmup_slots: 0,
                    steps,
                    perturbs: 0,
                    scenario_json: Arc::clone(&scenario_json),
                    snapshot: Arc::clone(&snapshot),
                },
            );
        }
        writer.flush();
        let all = store.load_all();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].steps, 49);
        assert_eq!(all[0].snapshot, snapshot.to_json());
        assert_eq!(writer.failures(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn drop_flushes_and_forget_discards() {
        let dir = temp_dir("drop");
        let store = Arc::new(ExperimentStore::open(&dir).unwrap());
        let (scenario_json, snapshot) = snapshot_pair();
        {
            let writer = CheckpointWriter::new(Arc::clone(&store));
            writer.enqueue(
                "exp-000001",
                PendingSave {
                    warmup_slots: 0,
                    steps: 1,
                    perturbs: 0,
                    scenario_json: Arc::clone(&scenario_json),
                    snapshot: Arc::clone(&snapshot),
                },
            );
            writer.enqueue(
                "exp-000002",
                PendingSave {
                    warmup_slots: 0,
                    steps: 2,
                    perturbs: 0,
                    scenario_json,
                    snapshot,
                },
            );
            writer.forget("exp-000002");
            // Dropping the writer drains exp-000001 (orderly shutdown).
        }
        let all = store.load_all();
        assert_eq!(all.len(), 1, "forgotten save must not be written");
        assert_eq!(all[0].id, "exp-000001");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let dir = temp_dir("fail");
        let store = Arc::new(ExperimentStore::open(&dir).unwrap());
        let writer = CheckpointWriter::new(Arc::clone(&store));
        let (scenario_json, snapshot) = snapshot_pair();
        // Make the experiment's directory path unusable: a *file* where
        // the store wants a directory.
        std::fs::write(dir.join("experiments/exp-000009"), b"not a dir").unwrap();
        writer.enqueue(
            "exp-000009",
            PendingSave {
                warmup_slots: 0,
                steps: 1,
                perturbs: 0,
                scenario_json,
                snapshot,
            },
        );
        writer.flush();
        assert_eq!(writer.failures(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
