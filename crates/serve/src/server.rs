//! The daemon: accept loop, routing, worker pool, and shutdown.
//!
//! Requests route through the declarative table in [`crate::routes`].
//! Fast endpoints (health, metrics, experiment reads) answer inline on
//! the accept thread; everything that runs or mutates a simulation —
//! one-shot scenarios, batches, and the experiment lifecycle — is
//! validated up front and parked in the bounded queue for the worker
//! pool, so the accept loop never blocks on simulation work.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hbm_core::scenario::{metrics_json, run_scenarios_batch, BatchScenario};
use hbm_core::{installed_thermal_tier, Perturbation, Scenario};
use hbm_telemetry::json::JsonObject;
use hbm_telemetry::{timing, RunManifest};

use crate::cache::ScenarioCache;
use crate::experiment::{Supervisor, SupervisorConfig};
use crate::http::{self, HttpError, Request};
use crate::metrics::{BusyGuard, ServeMetrics};
use crate::queue::BoundedQueue;
use crate::routes::{self, RouteMatch};
use crate::store::ExperimentStore;

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running scenarios (≥ 1). The pool reserves this
    /// many threads from `hbm-par`'s process-wide budget for its whole
    /// lifetime, so parallel kernels inside scenario runs degrade to
    /// sequential instead of oversubscribing the machine. Experiment
    /// operations run on the same pool, so the experiment supervisor is
    /// accounted against the same budget.
    pub workers: usize,
    /// Maximum queued (accepted but not yet running) simulation requests;
    /// beyond this the server sheds load with `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// Maximum distinct scenario results kept in the memoization cache.
    pub cache_capacity: usize,
    /// Maximum sites one `/v1/batch-simulate` request may ask for; larger
    /// requests are rejected with `413` before touching the queue.
    pub max_batch: usize,
    /// `Retry-After` value advertised on `503` responses, seconds.
    pub retry_after_secs: u64,
    /// Per-connection socket read/write timeout, so one stalled client
    /// cannot pin the accept loop or a worker forever.
    pub io_timeout: Duration,
    /// When set, every *computed* (cache-miss) scenario writes a
    /// `RunManifest` to `<dir>/<config_hash>/manifest.json`, making served
    /// runs as auditable as CLI runs.
    pub manifest_dir: Option<PathBuf>,
    /// When set, experiments checkpoint under `<dir>/experiments/<id>/`
    /// after every mutating operation and are restored at boot, so they
    /// survive daemon restarts. `None`: experiments are memory-only.
    pub state_dir: Option<PathBuf>,
    /// Maximum live experiments; creates beyond this answer `429`.
    pub max_experiments: usize,
    /// Evict experiments idle longer than this (`None`: never). Eviction
    /// is lazy: swept when experiment requests arrive.
    pub experiment_ttl: Option<Duration>,
    /// Largest `slots` one step request may ask for; larger requests are
    /// rejected with `413` so a single op cannot pin a worker for long.
    pub max_step_slots: u64,
    /// Maximum what-if branches per experiment; forks beyond this answer
    /// `429`.
    pub max_branches: usize,
    /// Largest cumulative slot horizon the branches of one experiment may
    /// advance; branch steps beyond it answer `413`.
    pub max_branch_slots: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 256,
            max_batch: 64,
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(10),
            manifest_dir: None,
            state_dir: None,
            max_experiments: 64,
            experiment_ttl: None,
            max_step_slots: 1_000_000,
            max_branches: 16,
            max_branch_slots: 100_000,
        }
    }
}

/// What a queued job asks a worker to do. Every variant was fully
/// validated on the accept thread; workers only see well-formed work.
enum JobKind {
    /// Run (or serve from cache) one scenario.
    Simulate {
        scenario: Scenario,
        canonical: String,
    },
    /// Run a seed-staggered batch (`scenario` is the site-0 template).
    Batch { scenario: Scenario, count: u64 },
    /// Create an experiment (runs warm-up, writes the first checkpoint).
    ExperimentCreate { scenario: Scenario },
    /// Step an experiment by `slots`.
    ExperimentStep { id: String, slots: u64 },
    /// Apply a mid-run perturbation to an experiment.
    ExperimentPerturb {
        id: String,
        perturbation: Perturbation,
    },
    /// Add a branch to an experiment's what-if tree (rooting the tree at
    /// the current state on the first fork).
    ExperimentFork {
        id: String,
        label: Option<String>,
        perturbation: Perturbation,
    },
    /// Advance every branch of an experiment's tree in lockstep.
    ExperimentBranchStep { id: String, slots: u64 },
    /// Drop an experiment's branch tree.
    ExperimentBranchDelete { id: String },
    /// Delete an experiment and its on-disk state.
    ExperimentDelete { id: String },
}

/// One accepted request, parked in the queue until a worker picks it up
/// and writes the response.
struct Job {
    kind: JobKind,
    stream: TcpStream,
}

struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<Job>,
    cache: ScenarioCache,
    metrics: ServeMetrics,
    supervisor: Supervisor,
    stopping: AtomicBool,
}

/// A bound (but not yet running) simulation server.
///
/// # Examples
///
/// ```no_run
/// let server = hbm_serve::Server::bind("127.0.0.1:7070", Default::default()).unwrap();
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cloneable handle that can stop a running [`Server`] from another
/// thread (used by tests and the bundled load generator).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Asks the server to stop: the accept loop exits, queued requests
    /// drain, workers join. Idempotent.
    pub fn stop(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Pre-registers the server's timing spans so `--timings` reports name
/// them even before the first request.
pub fn declare_spans() {
    timing::declare_span("serve.request");
    timing::declare_span("serve.simulate");
    timing::declare_span("serve.batch-simulate");
    timing::declare_span("serve.experiment");
    timing::declare_span("surrogate.fit");
    timing::declare_span("surrogate.predict");
}

/// Which tier would answer `scenario`'s thermal query, as a response
/// header value — `None` when no surrogate tier is installed (the
/// default), so responses are byte-identical to a tier-less build.
///
/// Consulting the tier is the hot-path integration point: it bumps the
/// hit/miss/fallback counters `/v1/metrics` reports and warms the
/// extraction cache for fallback queries.
fn thermal_tier_label(scenario: &Scenario) -> Option<&'static str> {
    installed_thermal_tier()?;
    match scenario.thermal_model() {
        Ok(answer) => answer.map(|(_, kind)| kind.as_str()),
        // An unextractable query (invalid mapped config) never blocks the
        // response; the header is simply omitted.
        Err(_) => None,
    }
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and opens
    /// the experiment store when a state dir is configured.
    ///
    /// # Errors
    ///
    /// Returns the underlying bind or state-dir creation error.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let store = match &config.state_dir {
            Some(dir) => Some(ExperimentStore::open(dir)?),
            None => None,
        };
        let supervisor = Supervisor::new(
            SupervisorConfig {
                max_experiments: config.max_experiments,
                ttl: config.experiment_ttl,
                max_branches: config.max_branches,
                max_branch_slots: config.max_branch_slots,
            },
            store,
        );
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: ScenarioCache::new(config.cache_capacity),
            metrics: ServeMetrics::default(),
            supervisor,
            stopping: AtomicBool::new(false),
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// A handle that can stop this server once it runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] is called:
    /// recovers persisted experiments first, then spawns the worker pool,
    /// and joins it before returning.
    ///
    /// # Errors
    ///
    /// Returns a fatal listener error (per-connection errors are absorbed).
    pub fn run(self) -> std::io::Result<()> {
        let restored = self.shared.supervisor.recover();
        for _ in 0..restored {
            ServeMetrics::bump(&self.shared.metrics.experiments_restored);
        }
        let workers = self.shared.config.workers.max(1);
        // Account the pool against the process-wide thread budget for the
        // server's whole lifetime (see ServeConfig::workers).
        let _lease = hbm_par::reserve_threads(workers);
        let pool: Vec<_> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("hbm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => handle_connection(&self.shared, stream, workers),
                Err(_) => continue,
            }
        }
        self.shared.queue.close();
        for worker in pool {
            let _ = worker.join();
        }
        // Drain the write-behind checkpoint queue before reporting an
        // orderly shutdown: everything stepped is on disk when run()
        // returns.
        self.shared.supervisor.flush();
        Ok(())
    }
}

/// Parses one request off `stream` and routes it through the route table.
/// Fast endpoints answer inline on the accept thread; simulation and
/// experiment mutations are validated here and then queued (or shed) —
/// the worker writes those responses.
fn handle_connection(shared: &Shared, stream: TcpStream, workers: usize) {
    let span = timing::start();
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader) {
        Ok(Some(request)) => request,
        // Connection opened and closed without a request (e.g. the
        // stop() wake-up): nothing to answer.
        Ok(None) => return,
        Err(HttpError { status, message }) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let mut stream = reader.into_inner();
            let _ = http::write_response(&mut stream, status, &[], &http::error_body(&message));
            timing::record_span("serve.request", span);
            return;
        }
    };
    ServeMetrics::bump(&shared.metrics.requests_total);
    let mut stream = reader.into_inner();

    match routes::route(&request.method, &request.target) {
        RouteMatch::NotFound => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let body = http::error_body(&format!("no such endpoint {:?}", request.target));
            let _ = http::write_response(&mut stream, 404, &[], &body);
        }
        RouteMatch::MethodNotAllowed { allow } => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let body = http::error_body(&format!(
                "{} is not allowed on {} (allowed: {allow})",
                request.method, request.target
            ));
            let _ = http::write_response(&mut stream, 405, &[("Allow", allow)], &body);
        }
        RouteMatch::Ok { pattern, id } => {
            let id = id.map(str::to_string);
            dispatch(shared, pattern, id, request, stream, workers);
        }
    }
    timing::record_span("serve.request", span);
}

/// Serves one route-matched request (see [`handle_connection`]).
fn dispatch(
    shared: &Shared,
    pattern: &'static str,
    id: Option<String>,
    request: Request,
    mut stream: TcpStream,
    workers: usize,
) {
    let respond = |stream: &mut TcpStream, status: u16, body: &[u8]| {
        let _ = http::write_response(stream, status, &[], body);
    };
    match (request.method.as_str(), pattern) {
        ("GET", "/v1/health") => respond(&mut stream, 200, &health_body(shared, workers)),
        ("GET", "/v1/metrics") => respond(&mut stream, 200, &metrics_body(shared, workers)),
        ("POST", "/v1/simulate") => simulate(shared, request, stream),
        ("POST", "/v1/batch-simulate") => batch_simulate(shared, request, stream),
        ("GET", "/v1/experiments") => {
            sweep_experiments(shared);
            respond(&mut stream, 200, &experiment_list_body(shared));
        }
        ("POST", "/v1/experiments") => experiment_create(shared, request, stream),
        ("DELETE", "/v1/experiments/{id}") => enqueue(
            shared,
            JobKind::ExperimentDelete {
                id: id.expect("route binds id"),
            },
            stream,
        ),
        ("POST", "/v1/experiments/{id}/step") => {
            experiment_step(shared, id.expect("route binds id"), request, stream)
        }
        ("POST", "/v1/experiments/{id}/perturb") => {
            experiment_perturb(shared, id.expect("route binds id"), request, stream)
        }
        ("POST", "/v1/experiments/{id}/fork") => {
            experiment_fork(shared, id.expect("route binds id"), request, stream)
        }
        ("POST", "/v1/experiments/{id}/branches/step") => {
            experiment_branch_step(shared, id.expect("route binds id"), request, stream)
        }
        ("GET", "/v1/experiments/{id}/branches") => {
            sweep_experiments(shared);
            match shared.supervisor.branches_of(&id.expect("route binds id")) {
                Ok(report) => respond(&mut stream, 200, format!("{report}\n").as_bytes()),
                Err(e) => respond_api_error(shared, &mut stream, e),
            }
        }
        ("DELETE", "/v1/experiments/{id}/branches") => enqueue(
            shared,
            JobKind::ExperimentBranchDelete {
                id: id.expect("route binds id"),
            },
            stream,
        ),
        ("GET", "/v1/experiments/{id}/state") => {
            sweep_experiments(shared);
            match shared.supervisor.state_of(&id.expect("route binds id")) {
                Ok(snapshot) => respond(&mut stream, 200, format!("{snapshot}\n").as_bytes()),
                Err(e) => respond_api_error(shared, &mut stream, e),
            }
        }
        ("GET", "/v1/experiments/{id}/metrics") => {
            sweep_experiments(shared);
            match shared.supervisor.metrics_of(&id.expect("route binds id")) {
                Ok((metrics, hash)) => {
                    let extra = [("X-Config-Hash", hash)];
                    let _ = http::write_response(
                        &mut stream,
                        200,
                        &extra,
                        format!("{metrics}\n").as_bytes(),
                    );
                }
                Err(e) => respond_api_error(shared, &mut stream, e),
            }
        }
        // The route table only yields (method, pattern) pairs listed in
        // ROUTES; anything else here is a routing bug.
        (method, pattern) => unreachable!("unrouted {method} {pattern}"),
    }
}

/// Writes a supervisor error, counting 4xx as bad requests.
fn respond_api_error(shared: &Shared, stream: &mut TcpStream, (status, message): (u16, String)) {
    if (400..500).contains(&status) {
        ServeMetrics::bump(&shared.metrics.bad_requests);
    }
    let _ = http::write_response(stream, status, &[], &http::error_body(&message));
}

/// Evicts idle experiments per the TTL, counting them.
fn sweep_experiments(shared: &Shared) {
    for _ in 0..shared.supervisor.sweep() {
        ServeMetrics::bump(&shared.metrics.experiments_evicted);
    }
}

/// Queues a validated job, shedding with `503` when the queue is full.
fn enqueue(shared: &Shared, kind: JobKind, stream: TcpStream) {
    let job = Job { kind, stream };
    match shared.queue.try_push(job) {
        Ok(()) => ServeMetrics::bump(&shared.metrics.simulate_accepted),
        Err(mut job) => {
            ServeMetrics::bump(&shared.metrics.shed_total);
            let _ = http::write_response(
                &mut job.stream,
                503,
                &[("Retry-After", shared.config.retry_after_secs.to_string())],
                &http::error_body("queue full, retry later"),
            );
        }
    }
}

/// Parses a scenario body and validates it end to end (config build plus
/// policy name), so workers only ever see runnable scenarios.
fn parse_scenario(body: &[u8]) -> Result<Scenario, String> {
    std::str::from_utf8(body)
        .map_err(|_| "body is not valid UTF-8".to_string())
        .and_then(|body| Scenario::from_flat_json(body.trim()))
        .and_then(|scenario| scenario.build_config().map(|_| scenario))
        .and_then(|scenario| {
            if hbm_core::scenario::POLICY_NAMES.contains(&scenario.policy.as_str()) {
                Ok(scenario)
            } else {
                Err(format!(
                    "unknown policy {:?} (expected one of {})",
                    scenario.policy,
                    hbm_core::scenario::POLICY_NAMES.join(", ")
                ))
            }
        })
}

/// Validates a `/v1/simulate` body and enqueues the job.
fn simulate(shared: &Shared, request: Request, mut stream: TcpStream) {
    match parse_scenario(&request.body) {
        Ok(scenario) => enqueue(
            shared,
            JobKind::Simulate {
                canonical: scenario.config_canonical(),
                scenario,
            },
            stream,
        ),
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
        }
    }
}

/// Validates a `/v1/batch-simulate` body and enqueues the job: one
/// scenario template plus a site count, rejected with `413` when the count
/// exceeds [`ServeConfig::max_batch`]. The worker runs the sites through
/// the batch engine.
fn batch_simulate(shared: &Shared, request: Request, mut stream: TcpStream) {
    let parsed = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not valid UTF-8".to_string())
        .and_then(|body| BatchScenario::from_flat_json(body.trim()))
        .and_then(|batch| batch.scenario.build_config().map(|_| batch))
        .and_then(|batch| {
            if hbm_core::scenario::POLICY_NAMES.contains(&batch.scenario.policy.as_str()) {
                Ok(batch)
            } else {
                Err(format!(
                    "unknown policy {:?} (expected one of {})",
                    batch.scenario.policy,
                    hbm_core::scenario::POLICY_NAMES.join(", ")
                ))
            }
        });
    let batch = match parsed {
        Ok(batch) => batch,
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
            return;
        }
    };
    if batch.count > shared.config.max_batch as u64 {
        ServeMetrics::bump(&shared.metrics.bad_requests);
        let _ = http::write_response(
            &mut stream,
            413,
            &[],
            &http::error_body(&format!(
                "count {} exceeds the batch limit {}",
                batch.count, shared.config.max_batch
            )),
        );
        return;
    }
    enqueue(
        shared,
        JobKind::Batch {
            scenario: batch.scenario,
            count: batch.count,
        },
        stream,
    );
}

/// Validates a `POST /v1/experiments` body and enqueues the create (the
/// worker runs the warm-up, which can be long).
fn experiment_create(shared: &Shared, request: Request, mut stream: TcpStream) {
    sweep_experiments(shared);
    match parse_scenario(&request.body) {
        Ok(scenario) => enqueue(shared, JobKind::ExperimentCreate { scenario }, stream),
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
        }
    }
}

/// Parses a `{"slots": N}` body, `N ≥ 1` and integral.
fn parse_slots_body(body: &[u8]) -> Result<u64, String> {
    std::str::from_utf8(body)
        .map_err(|_| "body is not valid UTF-8".to_string())
        .and_then(|body| hbm_telemetry::json::parse_flat_object(body.trim()))
        .and_then(|fields| {
            let mut slots = None;
            for (key, value) in fields {
                match key.as_str() {
                    "slots" => match value.as_f64() {
                        Some(v) if v >= 1.0 && v.fract() == 0.0 && v <= 9e15 => {
                            slots = Some(v as u64)
                        }
                        _ => return Err("slots must be a positive integer".into()),
                    },
                    other => return Err(format!("unknown field {other:?}")),
                }
            }
            slots.ok_or_else(|| "missing required field \"slots\"".to_string())
        })
}

/// Validates a slots body against `max_step_slots`, answering `400`/`413`
/// itself; `Some(slots, stream)` when the job should be enqueued.
fn validated_slots(
    shared: &Shared,
    request: &Request,
    mut stream: TcpStream,
) -> Option<(u64, TcpStream)> {
    let slots = match parse_slots_body(&request.body) {
        Ok(slots) => slots,
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
            return None;
        }
    };
    if slots > shared.config.max_step_slots {
        ServeMetrics::bump(&shared.metrics.bad_requests);
        let _ = http::write_response(
            &mut stream,
            413,
            &[],
            &http::error_body(&format!(
                "slots {slots} exceeds the step limit {}",
                shared.config.max_step_slots
            )),
        );
        return None;
    }
    Some((slots, stream))
}

/// Validates a step body (`{"slots": N}`, `1 ..= max_step_slots`) and
/// enqueues the step.
fn experiment_step(shared: &Shared, id: String, request: Request, stream: TcpStream) {
    if let Some((slots, stream)) = validated_slots(shared, &request, stream) {
        enqueue(shared, JobKind::ExperimentStep { id, slots }, stream);
    }
}

/// Validates a branch-step body (same shape and limit as a step) and
/// enqueues the lockstep branch step.
fn experiment_branch_step(shared: &Shared, id: String, request: Request, stream: TcpStream) {
    if let Some((slots, stream)) = validated_slots(shared, &request, stream) {
        enqueue(shared, JobKind::ExperimentBranchStep { id, slots }, stream);
    }
}

/// Validates a fork body — an optional `label` plus [`Perturbation`]
/// fields, all optional (an empty body forks the control branch) — and
/// enqueues the fork.
fn experiment_fork(shared: &Shared, id: String, request: Request, mut stream: TcpStream) {
    let parsed = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not valid UTF-8".to_string())
        .and_then(|body| {
            let body = body.trim();
            if body.is_empty() {
                return Ok((None, Perturbation::default()));
            }
            let fields = hbm_telemetry::json::parse_flat_object(body)?;
            let mut label = None;
            let mut p = Perturbation::default();
            for (key, value) in fields {
                let number = |value: &hbm_telemetry::json::JsonValue, key: &str| {
                    value
                        .as_f64()
                        .ok_or_else(|| format!("{key} must be a number"))
                };
                match key.as_str() {
                    "label" => {
                        let v = value
                            .as_str()
                            .ok_or_else(|| "label must be a string".to_string())?;
                        let ok = !v.is_empty()
                            && v.len() <= 64
                            && v.chars()
                                .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c));
                        if !ok {
                            return Err(
                                "label must be 1-64 characters of [A-Za-z0-9._-]".to_string()
                            );
                        }
                        label = Some(v.to_string());
                    }
                    "utilization" => p.utilization = Some(number(&value, "utilization")?),
                    "attack_load_kw" => p.attack_load_kw = Some(number(&value, "attack_load_kw")?),
                    "battery_kwh" => p.battery_kwh = Some(number(&value, "battery_kwh")?),
                    "threshold_c" => p.threshold_c = Some(number(&value, "threshold_c")?),
                    "cap_w" => p.cap_w = Some(number(&value, "cap_w")?),
                    other => return Err(format!("unknown field {other:?}")),
                }
            }
            Ok((label, p))
        });
    match parsed {
        Ok((label, perturbation)) => enqueue(
            shared,
            JobKind::ExperimentFork {
                id,
                label,
                perturbation,
            },
            stream,
        ),
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
        }
    }
}

/// Validates a perturb body ([`Perturbation`] flat JSON, at least one
/// field) and enqueues the perturb.
fn experiment_perturb(shared: &Shared, id: String, request: Request, mut stream: TcpStream) {
    let parsed = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not valid UTF-8".to_string())
        .and_then(|body| Perturbation::from_flat_json(body.trim()))
        .and_then(|p| {
            if p.is_empty() {
                Err("perturbation must set at least one field".into())
            } else {
                Ok(p)
            }
        });
    match parsed {
        Ok(perturbation) => enqueue(
            shared,
            JobKind::ExperimentPerturb { id, perturbation },
            stream,
        ),
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
        }
    }
}

/// Runs one batch job: cached sites are answered from the scenario cache
/// (the per-site canonical strings are exactly the single-simulate keys),
/// the rest run together through the batch engine, and freshly computed
/// sites are inserted back so later single or batch requests hit.
///
/// Returns the assembled response body and whether every site was a hit.
fn run_batch_job(
    shared: &Shared,
    scenario: &Scenario,
    count: u64,
) -> Result<(String, bool), String> {
    ServeMetrics::bump(&shared.metrics.batch_requests);
    let sites: Vec<Scenario> = (0..count).map(|i| scenario.site(i)).collect();
    let canonicals: Vec<String> = sites.iter().map(Scenario::config_canonical).collect();
    let mut bodies: Vec<Option<std::sync::Arc<String>>> = vec![None; sites.len()];
    let mut missing: Vec<usize> = Vec::new();
    for (i, canonical) in canonicals.iter().enumerate() {
        match shared.cache.lookup(canonical) {
            Some(Ok(body)) => bodies[i] = Some(body),
            _ => missing.push(i),
        }
    }
    let all_hit = missing.is_empty();
    if !all_hit {
        ServeMetrics::add(&shared.metrics.batch_lanes_simulated, missing.len() as u64);
        let span = timing::start();
        let miss_sites: Vec<Scenario> = missing.iter().map(|&i| sites[i].clone()).collect();
        let reports = run_scenarios_batch(&miss_sites)?;
        timing::record_span("serve.batch-simulate", span);
        for (&i, report) in missing.iter().zip(&reports) {
            let body = metrics_json(&canonicals[i], &report.metrics) + "\n";
            let (result, _) = shared.cache.get_or_compute(&canonicals[i], || Ok(body));
            bodies[i] = Some(result?);
        }
    }
    let mut out = format!("{{\"count\":{count},\"sites\":[");
    for (i, body) in bodies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(body.as_ref().expect("every site filled").trim_end());
    }
    out.push_str("]}\n");
    Ok((out, all_hit))
}

/// One worker: pop jobs until the queue closes; serve each from the cache
/// or by running the scenario / experiment operation.
fn worker_loop(shared: &Shared) {
    while let Some(mut job) = shared.queue.pop() {
        let _busy = BusyGuard::new(&shared.metrics.workers_busy);
        match job.kind {
            JobKind::Simulate {
                scenario,
                canonical,
            } => run_simulate_job(shared, &scenario, &canonical, &mut job.stream),
            JobKind::Batch { scenario, count } => match run_batch_job(shared, &scenario, count) {
                Ok((body, all_hit)) => {
                    ServeMetrics::bump(&shared.metrics.simulate_ok);
                    let extra = [
                        ("X-Cache", if all_hit { "hit" } else { "miss" }.to_string()),
                        ("X-Config-Hash", scenario.config_hash()),
                    ];
                    let _ = http::write_response(&mut job.stream, 200, &extra, body.as_bytes());
                }
                Err(message) => {
                    let _ = http::write_response(
                        &mut job.stream,
                        500,
                        &[],
                        &http::error_body(&message),
                    );
                }
            },
            kind => run_experiment_job(shared, kind, &mut job.stream),
        }
    }
}

/// Runs one `/v1/simulate` job through the cache.
fn run_simulate_job(shared: &Shared, scenario: &Scenario, canonical: &str, stream: &mut TcpStream) {
    let (result, hit) = shared.cache.get_or_compute(canonical, || {
        let span = timing::start();
        let started = Instant::now();
        let report = scenario.run()?;
        timing::record_span("serve.simulate", span);
        if let Some(dir) = &shared.config.manifest_dir {
            write_job_manifest(
                dir,
                scenario,
                canonical,
                shared.config.workers,
                started.elapsed().as_millis() as u64,
            );
        }
        Ok(metrics_json(canonical, &report.metrics) + "\n")
    });
    match result {
        Ok(body) => {
            ServeMetrics::bump(&shared.metrics.simulate_ok);
            let mut extra = vec![
                ("X-Cache", if hit { "hit" } else { "miss" }.to_string()),
                ("X-Config-Hash", scenario.config_hash()),
            ];
            if let Some(tier) = thermal_tier_label(scenario) {
                extra.push(("X-Thermal-Tier", tier.to_string()));
            }
            let _ = http::write_response(stream, 200, &extra, body.as_bytes());
        }
        Err(message) => {
            let _ = http::write_response(stream, 500, &[], &http::error_body(&message));
        }
    }
}

/// Runs one experiment lifecycle job against the supervisor.
fn run_experiment_job(shared: &Shared, kind: JobKind, stream: &mut TcpStream) {
    let span = timing::start();
    match kind {
        JobKind::ExperimentCreate { scenario } => {
            match shared.supervisor.create(scenario.clone()) {
                Ok(outcome) => {
                    ServeMetrics::bump(&shared.metrics.experiments_created);
                    let mut o = JsonObject::new();
                    o.str("id", &outcome.id)
                        .str("policy", &scenario.policy)
                        .u64("warmup_slots", outcome.warmup_slots)
                        .u64("slots", 0);
                    let extra = [("Location", format!("/v1/experiments/{}", outcome.id))];
                    let body = o.finish() + "\n";
                    let _ = http::write_response(stream, 201, &extra, body.as_bytes());
                }
                Err(e) => respond_api_error(shared, stream, e),
            }
        }
        JobKind::ExperimentStep { id, slots } => match shared.supervisor.step(&id, slots) {
            Ok(outcome) => {
                ServeMetrics::bump(&shared.metrics.experiment_steps);
                shared
                    .metrics
                    .experiment_slots
                    .fetch_add(outcome.stepped, std::sync::atomic::Ordering::Relaxed);
                let mut o = JsonObject::new();
                o.str("id", &outcome.id)
                    .u64("stepped", outcome.stepped)
                    .u64("slots", outcome.slots);
                let body = o.finish() + "\n";
                let _ = http::write_response(stream, 200, &[], body.as_bytes());
            }
            Err(e) => respond_api_error(shared, stream, e),
        },
        JobKind::ExperimentPerturb { id, perturbation } => {
            match shared.supervisor.perturb(&id, &perturbation) {
                Ok(scenario_json) => {
                    ServeMetrics::bump(&shared.metrics.experiment_perturbs);
                    let body = scenario_json + "\n";
                    let _ = http::write_response(stream, 200, &[], body.as_bytes());
                }
                Err(e) => respond_api_error(shared, stream, e),
            }
        }
        JobKind::ExperimentFork {
            id,
            label,
            perturbation,
        } => match shared.supervisor.fork(&id, label, &perturbation) {
            Ok(outcome) => {
                ServeMetrics::bump(&shared.metrics.experiment_forks);
                let mut o = JsonObject::new();
                o.str("id", &outcome.id)
                    .u64("branch", outcome.branch)
                    .str("label", &outcome.label)
                    .u64("fork_slot", outcome.fork_slot)
                    .u64("branches", outcome.branches);
                let body = o.finish() + "\n";
                let mut extra = Vec::new();
                if let Some(tier) = thermal_tier_label(&outcome.scenario) {
                    extra.push(("X-Thermal-Tier", tier.to_string()));
                }
                let _ = http::write_response(stream, 200, &extra, body.as_bytes());
            }
            Err(e) => respond_api_error(shared, stream, e),
        },
        JobKind::ExperimentBranchStep { id, slots } => {
            match shared.supervisor.branch_step(&id, slots) {
                Ok(outcome) => {
                    ServeMetrics::bump(&shared.metrics.experiment_branch_steps);
                    let mut o = JsonObject::new();
                    o.str("id", &outcome.id)
                        .u64("stepped", outcome.stepped)
                        .u64("branches", outcome.branches);
                    if let Some(slot) = outcome.first_divergence {
                        o.u64("first_divergence", slot);
                    }
                    let body = o.finish() + "\n";
                    let _ = http::write_response(stream, 200, &[], body.as_bytes());
                }
                Err(e) => respond_api_error(shared, stream, e),
            }
        }
        JobKind::ExperimentBranchDelete { id } => match shared.supervisor.branch_delete(&id) {
            Ok(branches) => {
                let mut o = JsonObject::new();
                o.str("id", &id).u64("deleted_branches", branches);
                let body = o.finish() + "\n";
                let _ = http::write_response(stream, 200, &[], body.as_bytes());
            }
            Err(e) => respond_api_error(shared, stream, e),
        },
        JobKind::ExperimentDelete { id } => match shared.supervisor.delete(&id) {
            Ok(()) => {
                ServeMetrics::bump(&shared.metrics.experiments_deleted);
                let mut o = JsonObject::new();
                o.str("deleted", &id);
                let body = o.finish() + "\n";
                let _ = http::write_response(stream, 200, &[], body.as_bytes());
            }
            Err(e) => respond_api_error(shared, stream, e),
        },
        JobKind::Simulate { .. } | JobKind::Batch { .. } => {
            unreachable!("simulation jobs are handled in worker_loop")
        }
    }
    timing::record_span("serve.experiment", span);
}

/// Writes the per-run manifest for a freshly computed scenario; failures
/// are reported on stderr but never fail the request.
fn write_job_manifest(
    dir: &std::path::Path,
    scenario: &Scenario,
    canonical: &str,
    workers: usize,
    wall_clock_ms: u64,
) {
    let mut manifest = RunManifest::new("hbm-serve", scenario.seed);
    manifest.hash_config(canonical);
    manifest
        .param("policy", &scenario.policy)
        .param("days", scenario.days.to_string())
        .param("warmup_days", scenario.warmup_days.to_string());
    for (key, value) in [
        ("utilization", scenario.utilization),
        ("attack_load_kw", scenario.attack_load_kw),
        ("battery_kwh", scenario.battery_kwh),
        ("threshold_c", scenario.threshold_c),
        ("cap_w", scenario.cap_w),
    ] {
        if let Some(v) = value {
            manifest.param(key, v.to_string());
        }
    }
    for (name, version) in [
        ("hbm-serve", crate::VERSION),
        ("hbm-core", hbm_core::VERSION),
        ("hbm-telemetry", hbm_telemetry::VERSION),
    ] {
        manifest.crate_version(name, version);
    }
    manifest.jobs = workers as u64;
    manifest.wall_clock_ms = wall_clock_ms;
    let run_dir = dir.join(scenario.config_hash());
    if let Err(e) = manifest.write_to_dir(&run_dir) {
        eprintln!(
            "warning: cannot write manifest to {}: {e}",
            run_dir.display()
        );
    }
}

fn health_body(shared: &Shared, workers: usize) -> Vec<u8> {
    let mut o = JsonObject::new();
    o.str("status", "ok")
        .str("version", crate::VERSION)
        .u64("workers", workers as u64)
        .u64("queue_capacity", shared.queue.capacity() as u64)
        .u64("cache_capacity", shared.config.cache_capacity as u64)
        .u64("max_experiments", shared.config.max_experiments as u64)
        .bool("experiments_durable", shared.config.state_dir.is_some());
    let mut body = o.finish().into_bytes();
    body.push(b'\n');
    body
}

/// `GET /v1/experiments`: parallel `ids`/`slots` arrays, flat-JSON
/// parseable (ids are server-generated and need no escaping).
fn experiment_list_body(shared: &Shared) -> Vec<u8> {
    let rows = shared.supervisor.list();
    let mut out = format!("{{\"count\":{},\"ids\":[", rows.len());
    for (i, (id, _)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(id);
        out.push('"');
    }
    out.push_str("],\"slots\":[");
    for (i, (_, slots)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&slots.to_string());
    }
    out.push_str("]}\n");
    out.into_bytes()
}

fn metrics_body(shared: &Shared, workers: usize) -> Vec<u8> {
    let cache = shared.cache.stats();
    let busy = ServeMetrics::get(&shared.metrics.workers_busy);
    let mut o = JsonObject::new();
    o.u64(
        "requests_total",
        ServeMetrics::get(&shared.metrics.requests_total),
    )
    .u64(
        "simulate_accepted",
        ServeMetrics::get(&shared.metrics.simulate_accepted),
    )
    .u64(
        "simulate_ok",
        ServeMetrics::get(&shared.metrics.simulate_ok),
    )
    .u64(
        "batch_requests",
        ServeMetrics::get(&shared.metrics.batch_requests),
    )
    .u64(
        "batch_lanes_simulated",
        ServeMetrics::get(&shared.metrics.batch_lanes_simulated),
    )
    .u64("shed_total", ServeMetrics::get(&shared.metrics.shed_total))
    .u64(
        "bad_requests",
        ServeMetrics::get(&shared.metrics.bad_requests),
    )
    .u64("cache_hits", cache.hits)
    .u64("cache_misses", cache.misses)
    .u64("cache_len", cache.len)
    .u64("queue_depth", shared.queue.depth() as u64)
    .u64("queue_capacity", shared.queue.capacity() as u64)
    .u64("workers", workers as u64)
    .u64("workers_busy", busy)
    .f64("worker_utilization", busy as f64 / workers.max(1) as f64)
    .u64("experiments_active", shared.supervisor.active() as u64)
    .u64(
        "experiments_created",
        ServeMetrics::get(&shared.metrics.experiments_created),
    )
    .u64(
        "experiments_restored",
        ServeMetrics::get(&shared.metrics.experiments_restored),
    )
    .u64(
        "experiments_deleted",
        ServeMetrics::get(&shared.metrics.experiments_deleted),
    )
    .u64(
        "experiments_evicted",
        ServeMetrics::get(&shared.metrics.experiments_evicted),
    )
    .u64(
        "experiment_steps",
        ServeMetrics::get(&shared.metrics.experiment_steps),
    )
    .u64(
        "experiment_slots",
        ServeMetrics::get(&shared.metrics.experiment_slots),
    )
    .u64(
        "experiment_perturbs",
        ServeMetrics::get(&shared.metrics.experiment_perturbs),
    )
    .u64(
        "experiment_forks",
        ServeMetrics::get(&shared.metrics.experiment_forks),
    )
    .u64(
        "experiment_branch_steps",
        ServeMetrics::get(&shared.metrics.experiment_branch_steps),
    )
    .u64(
        "checkpoint_failures",
        shared.supervisor.checkpoint_failures(),
    );
    // Process-wide heat-matrix extraction cache (the serve scenario cache
    // above is request-level; this one counts CFD extractions saved).
    let matrix_cache = hbm_thermal::heat_matrix_cache_stats();
    o.u64("heat_matrix_cache_hits", matrix_cache.hits)
        .u64("heat_matrix_cache_misses", matrix_cache.misses);
    // Surrogate tier decisions; all-zero when no tier is installed.
    let tier_stats = installed_thermal_tier().map(|t| t.stats());
    o.u64("surrogate_hits", tier_stats.map_or(0, |s| s.hits))
        .u64("surrogate_misses", tier_stats.map_or(0, |s| s.misses))
        .u64("surrogate_fallbacks", tier_stats.map_or(0, |s| s.fallbacks))
        .f64("surrogate_bound_c", tier_stats.map_or(0.0, |s| s.bound_c));
    let mut body = o.finish().into_bytes();
    body.push(b'\n');
    body
}
