//! The daemon: accept loop, routing, worker pool, and shutdown.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hbm_core::scenario::{metrics_json, run_scenarios_batch, BatchScenario};
use hbm_core::Scenario;
use hbm_telemetry::json::JsonObject;
use hbm_telemetry::{timing, RunManifest};

use crate::cache::ScenarioCache;
use crate::http::{self, HttpError, Request};
use crate::metrics::{BusyGuard, ServeMetrics};
use crate::queue::BoundedQueue;

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running scenarios (≥ 1). The pool reserves this
    /// many threads from `hbm-par`'s process-wide budget for its whole
    /// lifetime, so parallel kernels inside scenario runs degrade to
    /// sequential instead of oversubscribing the machine.
    pub workers: usize,
    /// Maximum queued (accepted but not yet running) simulation requests;
    /// beyond this the server sheds load with `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// Maximum distinct scenario results kept in the memoization cache.
    pub cache_capacity: usize,
    /// Maximum sites one `/v1/batch-simulate` request may ask for; larger
    /// requests are rejected with `413` before touching the queue.
    pub max_batch: usize,
    /// `Retry-After` value advertised on `503` responses, seconds.
    pub retry_after_secs: u64,
    /// Per-connection socket read/write timeout, so one stalled client
    /// cannot pin the accept loop or a worker forever.
    pub io_timeout: Duration,
    /// When set, every *computed* (cache-miss) scenario writes a
    /// `RunManifest` to `<dir>/<config_hash>/manifest.json`, making served
    /// runs as auditable as CLI runs.
    pub manifest_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 256,
            max_batch: 64,
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(10),
            manifest_dir: None,
        }
    }
}

/// One accepted simulation request, parked in the queue until a worker
/// picks it up and writes the response.
struct Job {
    scenario: Scenario,
    canonical: String,
    stream: TcpStream,
    /// `Some(count)` for a `/v1/batch-simulate` job (`scenario` is then the
    /// site-0 template), `None` for a single `/v1/simulate`.
    batch: Option<u64>,
}

struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<Job>,
    cache: ScenarioCache,
    metrics: ServeMetrics,
    stopping: AtomicBool,
}

/// A bound (but not yet running) simulation server.
///
/// # Examples
///
/// ```no_run
/// let server = hbm_serve::Server::bind("127.0.0.1:7070", Default::default()).unwrap();
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cloneable handle that can stop a running [`Server`] from another
/// thread (used by tests and the bundled load generator).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Asks the server to stop: the accept loop exits, queued requests
    /// drain, workers join. Idempotent.
    pub fn stop(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Pre-registers the server's timing spans so `--timings` reports name
/// them even before the first request.
pub fn declare_spans() {
    timing::declare_span("serve.request");
    timing::declare_span("serve.simulate");
    timing::declare_span("serve.batch-simulate");
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the underlying bind error.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: ScenarioCache::new(config.cache_capacity),
            metrics: ServeMetrics::default(),
            stopping: AtomicBool::new(false),
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// A handle that can stop this server once it runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] is called,
    /// spawning the worker pool first and joining it before returning.
    ///
    /// # Errors
    ///
    /// Returns a fatal listener error (per-connection errors are absorbed).
    pub fn run(self) -> std::io::Result<()> {
        let workers = self.shared.config.workers.max(1);
        // Account the pool against the process-wide thread budget for the
        // server's whole lifetime (see ServeConfig::workers).
        let _lease = hbm_par::reserve_threads(workers);
        let pool: Vec<_> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("hbm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => handle_connection(&self.shared, stream, workers),
                Err(_) => continue,
            }
        }
        self.shared.queue.close();
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Parses one request off `stream` and routes it. Fast endpoints answer
/// inline on the accept thread; `/v1/simulate` is validated here and then
/// queued (or shed) — the worker writes that response.
fn handle_connection(shared: &Shared, stream: TcpStream, workers: usize) {
    let span = timing::start();
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader) {
        Ok(Some(request)) => request,
        // Connection opened and closed without a request (e.g. the
        // stop() wake-up): nothing to answer.
        Ok(None) => return,
        Err(HttpError { status, message }) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let mut stream = reader.into_inner();
            let _ = http::write_response(&mut stream, status, &[], &http::error_body(&message));
            timing::record_span("serve.request", span);
            return;
        }
    };
    ServeMetrics::bump(&shared.metrics.requests_total);
    let mut stream = reader.into_inner();

    let respond = |stream: &mut TcpStream, status: u16, body: &[u8]| {
        let _ = http::write_response(stream, status, &[], body);
    };
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/v1/health") => respond(&mut stream, 200, &health_body(shared, workers)),
        ("GET", "/v1/metrics") => respond(&mut stream, 200, &metrics_body(shared, workers)),
        ("POST", "/v1/simulate") => {
            simulate(shared, request, stream);
        }
        ("POST", "/v1/batch-simulate") => {
            batch_simulate(shared, request, stream);
        }
        ("GET" | "POST", "/v1/simulate" | "/v1/batch-simulate" | "/v1/health" | "/v1/metrics") => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            respond(&mut stream, 405, &http::error_body("method not allowed"));
        }
        (_, target) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            respond(
                &mut stream,
                404,
                &http::error_body(&format!("no such endpoint {target:?}")),
            );
        }
    }
    timing::record_span("serve.request", span);
}

/// Validates a `/v1/simulate` body and enqueues the job, shedding with
/// `503` when the queue is full.
fn simulate(shared: &Shared, request: Request, mut stream: TcpStream) {
    let parsed = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not valid UTF-8".to_string())
        .and_then(|body| Scenario::from_flat_json(body.trim()))
        // Full validation up front: workers should only ever see
        // runnable scenarios, and bad requests must fail fast.
        .and_then(|scenario| scenario.build_config().map(|_| scenario))
        .and_then(|scenario| {
            if hbm_core::scenario::POLICY_NAMES.contains(&scenario.policy.as_str()) {
                Ok(scenario)
            } else {
                Err(format!(
                    "unknown policy {:?} (expected one of {})",
                    scenario.policy,
                    hbm_core::scenario::POLICY_NAMES.join(", ")
                ))
            }
        });
    let scenario = match parsed {
        Ok(scenario) => scenario,
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
            return;
        }
    };
    let job = Job {
        canonical: scenario.config_canonical(),
        scenario,
        stream,
        batch: None,
    };
    match shared.queue.try_push(job) {
        Ok(()) => ServeMetrics::bump(&shared.metrics.simulate_accepted),
        Err(mut job) => {
            ServeMetrics::bump(&shared.metrics.shed_total);
            let _ = http::write_response(
                &mut job.stream,
                503,
                &[("Retry-After", shared.config.retry_after_secs.to_string())],
                &http::error_body("queue full, retry later"),
            );
        }
    }
}

/// Validates a `/v1/batch-simulate` body and enqueues the job: one
/// scenario template plus a site count, rejected with `413` when the count
/// exceeds [`ServeConfig::max_batch`] and shed with `503` when the queue
/// is full. The worker runs the sites through the batch engine.
fn batch_simulate(shared: &Shared, request: Request, mut stream: TcpStream) {
    let parsed = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not valid UTF-8".to_string())
        .and_then(|body| BatchScenario::from_flat_json(body.trim()))
        .and_then(|batch| batch.scenario.build_config().map(|_| batch))
        .and_then(|batch| {
            if hbm_core::scenario::POLICY_NAMES.contains(&batch.scenario.policy.as_str()) {
                Ok(batch)
            } else {
                Err(format!(
                    "unknown policy {:?} (expected one of {})",
                    batch.scenario.policy,
                    hbm_core::scenario::POLICY_NAMES.join(", ")
                ))
            }
        });
    let batch = match parsed {
        Ok(batch) => batch,
        Err(message) => {
            ServeMetrics::bump(&shared.metrics.bad_requests);
            let _ = http::write_response(&mut stream, 400, &[], &http::error_body(&message));
            return;
        }
    };
    if batch.count > shared.config.max_batch as u64 {
        ServeMetrics::bump(&shared.metrics.bad_requests);
        let _ = http::write_response(
            &mut stream,
            413,
            &[],
            &http::error_body(&format!(
                "count {} exceeds the batch limit {}",
                batch.count, shared.config.max_batch
            )),
        );
        return;
    }
    let job = Job {
        canonical: batch.scenario.config_canonical(),
        scenario: batch.scenario,
        stream,
        batch: Some(batch.count),
    };
    match shared.queue.try_push(job) {
        Ok(()) => ServeMetrics::bump(&shared.metrics.simulate_accepted),
        Err(mut job) => {
            ServeMetrics::bump(&shared.metrics.shed_total);
            let _ = http::write_response(
                &mut job.stream,
                503,
                &[("Retry-After", shared.config.retry_after_secs.to_string())],
                &http::error_body("queue full, retry later"),
            );
        }
    }
}

/// Runs one batch job: cached sites are answered from the scenario cache
/// (the per-site canonical strings are exactly the single-simulate keys),
/// the rest run together through the batch engine, and freshly computed
/// sites are inserted back so later single or batch requests hit.
///
/// Returns the assembled response body and whether every site was a hit.
fn run_batch_job(
    shared: &Shared,
    scenario: &Scenario,
    count: u64,
) -> Result<(String, bool), String> {
    let sites: Vec<Scenario> = (0..count).map(|i| scenario.site(i)).collect();
    let canonicals: Vec<String> = sites.iter().map(Scenario::config_canonical).collect();
    let mut bodies: Vec<Option<std::sync::Arc<String>>> = vec![None; sites.len()];
    let mut missing: Vec<usize> = Vec::new();
    for (i, canonical) in canonicals.iter().enumerate() {
        match shared.cache.lookup(canonical) {
            Some(Ok(body)) => bodies[i] = Some(body),
            _ => missing.push(i),
        }
    }
    let all_hit = missing.is_empty();
    if !all_hit {
        let span = timing::start();
        let miss_sites: Vec<Scenario> = missing.iter().map(|&i| sites[i].clone()).collect();
        let reports = run_scenarios_batch(&miss_sites)?;
        timing::record_span("serve.batch-simulate", span);
        for (&i, report) in missing.iter().zip(&reports) {
            let body = metrics_json(&canonicals[i], &report.metrics) + "\n";
            let (result, _) = shared.cache.get_or_compute(&canonicals[i], || Ok(body));
            bodies[i] = Some(result?);
        }
    }
    let mut out = format!("{{\"count\":{count},\"sites\":[");
    for (i, body) in bodies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(body.as_ref().expect("every site filled").trim_end());
    }
    out.push_str("]}\n");
    Ok((out, all_hit))
}

/// One worker: pop jobs until the queue closes; serve each from the cache
/// or by running the scenario.
fn worker_loop(shared: &Shared) {
    while let Some(mut job) = shared.queue.pop() {
        let _busy = BusyGuard::new(&shared.metrics.workers_busy);
        if let Some(count) = job.batch {
            match run_batch_job(shared, &job.scenario, count) {
                Ok((body, all_hit)) => {
                    ServeMetrics::bump(&shared.metrics.simulate_ok);
                    let extra = [
                        ("X-Cache", if all_hit { "hit" } else { "miss" }.to_string()),
                        ("X-Config-Hash", job.scenario.config_hash()),
                    ];
                    let _ = http::write_response(&mut job.stream, 200, &extra, body.as_bytes());
                }
                Err(message) => {
                    let _ = http::write_response(
                        &mut job.stream,
                        500,
                        &[],
                        &http::error_body(&message),
                    );
                }
            }
            continue;
        }
        let (result, hit) = shared.cache.get_or_compute(&job.canonical, || {
            let span = timing::start();
            let started = Instant::now();
            let report = job.scenario.run()?;
            timing::record_span("serve.simulate", span);
            if let Some(dir) = &shared.config.manifest_dir {
                write_job_manifest(
                    dir,
                    &job.scenario,
                    &job.canonical,
                    shared.config.workers,
                    started.elapsed().as_millis() as u64,
                );
            }
            Ok(metrics_json(&job.canonical, &report.metrics) + "\n")
        });
        match result {
            Ok(body) => {
                ServeMetrics::bump(&shared.metrics.simulate_ok);
                let extra = [
                    ("X-Cache", if hit { "hit" } else { "miss" }.to_string()),
                    ("X-Config-Hash", job.scenario.config_hash()),
                ];
                let _ = http::write_response(&mut job.stream, 200, &extra, body.as_bytes());
            }
            Err(message) => {
                let _ =
                    http::write_response(&mut job.stream, 500, &[], &http::error_body(&message));
            }
        }
    }
}

/// Writes the per-run manifest for a freshly computed scenario; failures
/// are reported on stderr but never fail the request.
fn write_job_manifest(
    dir: &std::path::Path,
    scenario: &Scenario,
    canonical: &str,
    workers: usize,
    wall_clock_ms: u64,
) {
    let mut manifest = RunManifest::new("hbm-serve", scenario.seed);
    manifest.hash_config(canonical);
    manifest
        .param("policy", &scenario.policy)
        .param("days", scenario.days.to_string())
        .param("warmup_days", scenario.warmup_days.to_string());
    for (key, value) in [
        ("utilization", scenario.utilization),
        ("attack_load_kw", scenario.attack_load_kw),
        ("battery_kwh", scenario.battery_kwh),
        ("threshold_c", scenario.threshold_c),
        ("cap_w", scenario.cap_w),
    ] {
        if let Some(v) = value {
            manifest.param(key, v.to_string());
        }
    }
    for (name, version) in [
        ("hbm-serve", crate::VERSION),
        ("hbm-core", hbm_core::VERSION),
        ("hbm-telemetry", hbm_telemetry::VERSION),
    ] {
        manifest.crate_version(name, version);
    }
    manifest.jobs = workers as u64;
    manifest.wall_clock_ms = wall_clock_ms;
    let run_dir = dir.join(scenario.config_hash());
    if let Err(e) = manifest.write_to_dir(&run_dir) {
        eprintln!(
            "warning: cannot write manifest to {}: {e}",
            run_dir.display()
        );
    }
}

fn health_body(shared: &Shared, workers: usize) -> Vec<u8> {
    let mut o = JsonObject::new();
    o.str("status", "ok")
        .str("version", crate::VERSION)
        .u64("workers", workers as u64)
        .u64("queue_capacity", shared.queue.capacity() as u64)
        .u64("cache_capacity", shared.config.cache_capacity as u64);
    let mut body = o.finish().into_bytes();
    body.push(b'\n');
    body
}

fn metrics_body(shared: &Shared, workers: usize) -> Vec<u8> {
    let cache = shared.cache.stats();
    let busy = ServeMetrics::get(&shared.metrics.workers_busy);
    let mut o = JsonObject::new();
    o.u64(
        "requests_total",
        ServeMetrics::get(&shared.metrics.requests_total),
    )
    .u64(
        "simulate_accepted",
        ServeMetrics::get(&shared.metrics.simulate_accepted),
    )
    .u64(
        "simulate_ok",
        ServeMetrics::get(&shared.metrics.simulate_ok),
    )
    .u64("shed_total", ServeMetrics::get(&shared.metrics.shed_total))
    .u64(
        "bad_requests",
        ServeMetrics::get(&shared.metrics.bad_requests),
    )
    .u64("cache_hits", cache.hits)
    .u64("cache_misses", cache.misses)
    .u64("cache_len", cache.len)
    .u64("queue_depth", shared.queue.depth() as u64)
    .u64("queue_capacity", shared.queue.capacity() as u64)
    .u64("workers", workers as u64)
    .u64("workers_busy", busy)
    .f64("worker_utilization", busy as f64 / workers.max(1) as f64);
    let mut body = o.finish().into_bytes();
    body.push(b'\n');
    body
}
