//! Memoized scenario results, keyed by the canonical config string.
//!
//! Same two-level pattern as `hbm-thermal`'s heat-matrix extraction cache:
//! the map lock is held only to look up a per-key cell, and concurrent
//! requests for the *same* key block on that cell's `OnceLock` instead of
//! running the scenario twice, while different keys proceed independently.
//! Unlike the extraction cache this one is instance-owned (each server has
//! its own) and bounded: at `capacity` distinct scenarios an arbitrary
//! existing entry is evicted, so memory stays bounded under key churn.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Cell = Arc<OnceLock<Result<Arc<String>, String>>>;

/// Hit/miss/size counters of one [`ScenarioCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Scenarios actually computed.
    pub misses: u64,
    /// Entries currently resident.
    pub len: u64,
}

/// A bounded, memoizing map from canonical config string to serialized
/// scenario result.
pub struct ScenarioCache {
    map: Mutex<HashMap<String, Cell>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl ScenarioCache {
    /// A cache holding at most `capacity` scenario results (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ScenarioCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached result for `key`, computing and inserting it on
    /// a miss. The boolean is `true` on a hit. A failed computation is
    /// reported to this caller (and any caller racing on the same cell)
    /// but not retained, so a transient failure does not poison the key.
    pub fn get_or_compute<F>(&self, key: &str, compute: F) -> (Result<Arc<String>, String>, bool)
    where
        F: FnOnce() -> Result<String, String>,
    {
        let cell = {
            let mut map = self.map.lock().expect("cache poisoned");
            if let Some(cell) = map.get(key) {
                Arc::clone(cell)
            } else {
                if map.len() >= self.capacity {
                    // Arbitrary eviction: correctness only needs
                    // boundedness, and the steady workload (a small set of
                    // hot scenarios) rarely reaches capacity at all.
                    if let Some(victim) = map.keys().next().cloned() {
                        map.remove(&victim);
                    }
                }
                let cell: Cell = Arc::new(OnceLock::new());
                map.insert(key.to_string(), Arc::clone(&cell));
                cell
            }
        };

        let mut computed = false;
        let result = cell
            .get_or_init(|| {
                computed = true;
                self.misses.fetch_add(1, Ordering::Relaxed);
                compute().map(Arc::new)
            })
            .clone();
        if computed {
            if result.is_err() {
                // Drop the failed cell (only if it is still ours) so the
                // next request retries instead of replaying the error.
                let mut map = self.map.lock().expect("cache poisoned");
                if map.get(key).is_some_and(|c| Arc::ptr_eq(c, &cell)) {
                    map.remove(key);
                }
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (result, !computed)
    }

    /// Returns the cached result for `key` if one is already resident
    /// (counting a hit), without creating or claiming a cell. Used by the
    /// batch path to split a request into cached sites and sites still to
    /// compute; a cell another thread is mid-computing reads as absent.
    pub fn lookup(&self, key: &str) -> Option<Result<Arc<String>, String>> {
        let cell = self.map.lock().expect("cache poisoned").get(key).cloned()?;
        let result = cell.get()?.clone();
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(result)
    }

    /// Snapshot of the hit/miss counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: self.map.lock().expect("cache poisoned").len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_returns_the_same_value() {
        let cache = ScenarioCache::new(8);
        let (a, hit_a) = cache.get_or_compute("k", || Ok("value".into()));
        let (b, hit_b) = cache.get_or_compute("k", || panic!("must not recompute"));
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(*a.unwrap(), *b.unwrap());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn capacity_bounds_resident_entries() {
        let cache = ScenarioCache::new(3);
        for i in 0..10 {
            let key = format!("k{i}");
            let (r, _) = cache.get_or_compute(&key, || Ok(format!("v{i}")));
            r.unwrap();
        }
        assert!(cache.stats().len <= 3);
        assert_eq!(cache.stats().misses, 10);
    }

    #[test]
    fn failed_computations_are_not_retained() {
        let cache = ScenarioCache::new(8);
        let (r, hit) = cache.get_or_compute("k", || Err("boom".into()));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(!hit);
        let (r, hit) = cache.get_or_compute("k", || Ok("fine".into()));
        assert_eq!(*r.unwrap(), "fine");
        assert!(!hit, "retry after failure is a fresh miss");
        assert_eq!(cache.stats().len, 1);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache = std::sync::Arc::new(ScenarioCache::new(8));
        let computations = std::sync::Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                let computations = std::sync::Arc::clone(&computations);
                std::thread::spawn(move || {
                    let (r, _) = cache.get_or_compute("shared", || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        Ok("once".into())
                    });
                    r.unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(*h.join().unwrap(), "once");
        }
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().misses, 1);
    }
}
