//! Process counters behind `GET /v1/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic request/response counters, updated with relaxed atomics on
/// the request path (they are diagnostics, not synchronization).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests successfully parsed (any endpoint).
    pub requests_total: AtomicU64,
    /// `POST /v1/simulate` requests accepted into the queue.
    pub simulate_accepted: AtomicU64,
    /// Requests answered `503` because the queue was full.
    pub shed_total: AtomicU64,
    /// Requests answered with any 4xx status.
    pub bad_requests: AtomicU64,
    /// Simulation responses served with `200` (cache hits and misses).
    pub simulate_ok: AtomicU64,
    /// `POST /v1/simulate/batch` jobs executed by a worker.
    pub batch_requests: AtomicU64,
    /// Lanes actually simulated by batch jobs (cache misses routed
    /// through the sharded batch engine; hits cost no simulation).
    pub batch_lanes_simulated: AtomicU64,
    /// Workers currently running a scenario.
    pub workers_busy: AtomicU64,
    /// Experiments created (`POST /v1/experiments` answered `201`).
    pub experiments_created: AtomicU64,
    /// Experiments restored from the state dir at boot.
    pub experiments_restored: AtomicU64,
    /// Experiments deleted by request.
    pub experiments_deleted: AtomicU64,
    /// Experiments evicted by the idle TTL.
    pub experiments_evicted: AtomicU64,
    /// Completed step operations.
    pub experiment_steps: AtomicU64,
    /// Total slots advanced across all step operations.
    pub experiment_slots: AtomicU64,
    /// Applied perturbations.
    pub experiment_perturbs: AtomicU64,
    /// Branches created (`POST …/fork` answered `200`).
    pub experiment_forks: AtomicU64,
    /// Completed lockstep branch-step operations.
    pub experiment_branch_steps: AtomicU64,
}

impl ServeMetrics {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add helper for counters that grow by more than one.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Decrements `workers_busy` on drop, so a panicking scenario run cannot
/// leave the gauge stuck high.
pub struct BusyGuard<'a>(&'a AtomicU64);

impl<'a> BusyGuard<'a> {
    /// Marks one worker busy until the guard drops.
    pub fn new(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        BusyGuard(gauge)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_guard_restores_the_gauge() {
        let gauge = AtomicU64::new(0);
        {
            let _a = BusyGuard::new(&gauge);
            let _b = BusyGuard::new(&gauge);
            assert_eq!(gauge.load(Ordering::Relaxed), 2);
        }
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }
}
