//! The daemon's route table — one declarative source of truth.
//!
//! Routing used to be an ad-hoc `match` that answered 404 for a wrong
//! method on a known path. This table fixes that (wrong method → `405`
//! with an `Allow` header listing what the path accepts) and doubles as
//! the machine-readable route inventory: `docs/SERVICE.md` must document
//! every entry, and `crates/serve/tests/server.rs` enumerates [`ROUTES`]
//! to enforce it.

/// One served route: a path pattern and the methods it accepts.
///
/// Patterns are literal segments except `{id}`, which matches exactly one
/// non-empty segment (an experiment id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Path pattern, e.g. `/v1/experiments/{id}/step`.
    pub pattern: &'static str,
    /// Accepted methods in `Allow`-header order.
    pub methods: &'static [&'static str],
}

/// Every route the daemon serves. Ordering is documentation order.
pub const ROUTES: &[Route] = &[
    Route {
        pattern: "/v1/health",
        methods: &["GET"],
    },
    Route {
        pattern: "/v1/metrics",
        methods: &["GET"],
    },
    Route {
        pattern: "/v1/simulate",
        methods: &["POST"],
    },
    Route {
        pattern: "/v1/batch-simulate",
        methods: &["POST"],
    },
    Route {
        pattern: "/v1/experiments",
        methods: &["GET", "POST"],
    },
    Route {
        pattern: "/v1/experiments/{id}",
        methods: &["DELETE"],
    },
    Route {
        pattern: "/v1/experiments/{id}/step",
        methods: &["POST"],
    },
    Route {
        pattern: "/v1/experiments/{id}/perturb",
        methods: &["POST"],
    },
    Route {
        pattern: "/v1/experiments/{id}/fork",
        methods: &["POST"],
    },
    Route {
        pattern: "/v1/experiments/{id}/branches",
        methods: &["GET", "DELETE"],
    },
    Route {
        pattern: "/v1/experiments/{id}/branches/step",
        methods: &["POST"],
    },
    Route {
        pattern: "/v1/experiments/{id}/state",
        methods: &["GET"],
    },
    Route {
        pattern: "/v1/experiments/{id}/metrics",
        methods: &["GET"],
    },
];

/// The outcome of matching one request against [`ROUTES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteMatch<'a> {
    /// Method and path both matched.
    Ok {
        /// The matched pattern (identity-comparable against [`ROUTES`]).
        pattern: &'static str,
        /// The `{id}` segment, when the pattern has one.
        id: Option<&'a str>,
    },
    /// The path exists but not with this method; `allow` is the
    /// comma-separated `Allow` header value.
    MethodNotAllowed {
        /// Value for the `Allow` response header.
        allow: String,
    },
    /// No route matches the path.
    NotFound,
}

/// Does `target` match `pattern`, and if so which segment bound `{id}`?
fn match_pattern<'a>(pattern: &str, target: &'a str) -> Option<Option<&'a str>> {
    let mut id = None;
    let mut pat = pattern.split('/');
    let mut tgt = target.split('/');
    loop {
        match (pat.next(), tgt.next()) {
            (None, None) => return Some(id),
            (Some("{id}"), Some(seg)) if !seg.is_empty() => id = Some(seg),
            (Some(expect), Some(seg)) if expect == seg => {}
            _ => return None,
        }
    }
}

/// Routes one request: the matched route, a `405` with its `Allow` set, or
/// a `404`. Query strings are not supported (they fail to match, as ever).
pub fn route<'a>(method: &str, target: &'a str) -> RouteMatch<'a> {
    let mut allowed: Vec<&'static str> = Vec::new();
    let mut matched: Option<RouteMatch<'a>> = None;
    for r in ROUTES {
        if let Some(id) = match_pattern(r.pattern, target) {
            if r.methods.contains(&method) && matched.is_none() {
                matched = Some(RouteMatch::Ok {
                    pattern: r.pattern,
                    id,
                });
            }
            for m in r.methods {
                if !allowed.contains(m) {
                    allowed.push(m);
                }
            }
        }
    }
    match matched {
        Some(m) => m,
        None if !allowed.is_empty() => RouteMatch::MethodNotAllowed {
            allow: allowed.join(", "),
        },
        None => RouteMatch::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_routes_match_their_methods() {
        assert_eq!(
            route("GET", "/v1/health"),
            RouteMatch::Ok {
                pattern: "/v1/health",
                id: None
            }
        );
        assert_eq!(
            route("POST", "/v1/simulate"),
            RouteMatch::Ok {
                pattern: "/v1/simulate",
                id: None
            }
        );
    }

    #[test]
    fn wrong_method_is_405_with_the_allow_set() {
        assert_eq!(
            route("DELETE", "/v1/simulate"),
            RouteMatch::MethodNotAllowed {
                allow: "POST".into()
            }
        );
        assert_eq!(
            route("PATCH", "/v1/experiments"),
            RouteMatch::MethodNotAllowed {
                allow: "GET, POST".into()
            }
        );
    }

    #[test]
    fn id_segments_bind_and_empty_ones_do_not() {
        assert_eq!(
            route("POST", "/v1/experiments/exp-000001/step"),
            RouteMatch::Ok {
                pattern: "/v1/experiments/{id}/step",
                id: Some("exp-000001")
            }
        );
        assert_eq!(route("POST", "/v1/experiments//step"), RouteMatch::NotFound);
        assert_eq!(
            route("GET", "/v1/experiments/a/b/state"),
            RouteMatch::NotFound
        );
    }

    #[test]
    fn unknown_paths_are_404() {
        assert_eq!(route("GET", "/nope"), RouteMatch::NotFound);
        assert_eq!(route("GET", "/v1/experiments/exp-1/"), RouteMatch::NotFound);
    }

    #[test]
    fn every_route_matches_itself_with_a_sample_id() {
        for r in ROUTES {
            let sample = r.pattern.replace("{id}", "exp-000042");
            for method in r.methods {
                assert!(
                    matches!(route(method, &sample), RouteMatch::Ok { pattern, .. } if pattern == r.pattern),
                    "{method} {sample} must route"
                );
            }
        }
    }
}
