//! `hbm-serve` — the simulation-as-a-service daemon.
//!
//! ```text
//! hbm-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!           [--threads N] [--manifest-dir DIR] [--state-dir DIR]
//!           [--max-experiments N] [--experiment-ttl SECS]
//!           [--max-step-slots N] [--max-branches N]
//!           [--max-branch-slots N] [--surrogate FILE]
//!           [--surrogate-tolerance-c T] [--timings]
//! ```
//!
//! Runs until killed. See `docs/SERVICE.md` for the endpoint reference
//! and `docs/OPERATIONS.md` for deployment and crash recovery.

use std::path::PathBuf;

use hbm_serve::{declare_spans, ServeConfig, Server};

const USAGE: &str = "usage: hbm-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
[--threads N] [--manifest-dir DIR] [--state-dir DIR] [--max-experiments N] \
[--experiment-ttl SECS] [--max-step-slots N] [--max-branches N] [--max-branch-slots N] \
[--surrogate FILE] [--surrogate-tolerance-c T] [--timings]
  --addr HOST:PORT      listen address (default 127.0.0.1:7070)
  --workers N           scenario worker threads (default: available cores - 1, min 1)
  --queue N             bounded request queue capacity (default 32)
  --cache N             scenario-result cache capacity (default 256)
  --threads N           hbm-par process thread budget (default: available cores)
  --manifest-dir DIR    write a RunManifest per computed scenario under DIR
  --state-dir DIR       checkpoint experiments under DIR and restore them at boot
  --max-experiments N   live-experiment capacity; creates beyond it answer 429 (default 64)
  --experiment-ttl SECS evict experiments idle longer than SECS (default: never)
  --max-step-slots N    largest slots one step request may ask for (default 1000000)
  --max-branches N      what-if branch capacity per experiment (default 16)
  --max-branch-slots N  largest slots one branch-step request may ask for (default 100000)
  --surrogate FILE      load an hbm-surrogate-v1 artifact (from `experiments surrogate fit`)
                        and answer in-region thermal queries from it; simulate and fork
                        responses then carry an X-Thermal-Tier header and /v1/metrics
                        reports surrogate_hits/misses/fallbacks
  --surrogate-tolerance-c T
                        max inlet error bound (°C) a surrogate answer may carry; models
                        with a larger measured bound fall back to extraction (default 0.5)
  --timings             enable kernel timing spans (reported via logs on exit)";

struct Args {
    addr: String,
    threads: usize,
    timings: bool,
    surrogate: Option<PathBuf>,
    surrogate_tolerance_c: f64,
    config: ServeConfig,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = Args {
        addr: "127.0.0.1:7070".into(),
        threads: cores,
        timings: false,
        surrogate: None,
        surrogate_tolerance_c: 0.5,
        config: ServeConfig {
            workers: cores.saturating_sub(1).max(1),
            ..ServeConfig::default()
        },
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = take("--addr")?,
            "--workers" => {
                args.config.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.config.queue_capacity = take("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--cache" => {
                args.config.cache_capacity = take("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--threads" => {
                args.threads = take("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--manifest-dir" => {
                args.config.manifest_dir = Some(PathBuf::from(take("--manifest-dir")?))
            }
            "--state-dir" => args.config.state_dir = Some(PathBuf::from(take("--state-dir")?)),
            "--max-experiments" => {
                args.config.max_experiments = take("--max-experiments")?
                    .parse()
                    .map_err(|e| format!("--max-experiments: {e}"))?
            }
            "--experiment-ttl" => {
                let secs: u64 = take("--experiment-ttl")?
                    .parse()
                    .map_err(|e| format!("--experiment-ttl: {e}"))?;
                args.config.experiment_ttl = Some(std::time::Duration::from_secs(secs));
            }
            "--max-step-slots" => {
                args.config.max_step_slots = take("--max-step-slots")?
                    .parse()
                    .map_err(|e| format!("--max-step-slots: {e}"))?
            }
            "--max-branches" => {
                args.config.max_branches = take("--max-branches")?
                    .parse()
                    .map_err(|e| format!("--max-branches: {e}"))?
            }
            "--max-branch-slots" => {
                args.config.max_branch_slots = take("--max-branch-slots")?
                    .parse()
                    .map_err(|e| format!("--max-branch-slots: {e}"))?
            }
            "--surrogate" => args.surrogate = Some(PathBuf::from(take("--surrogate")?)),
            "--surrogate-tolerance-c" => {
                args.surrogate_tolerance_c = take("--surrogate-tolerance-c")?
                    .parse()
                    .map_err(|e| format!("--surrogate-tolerance-c: {e}"))?
            }
            "--timings" => args.timings = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(args)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    hbm_par::configure_threads(args.threads.max(1));
    if args.timings {
        hbm_telemetry::timing::set_timings_enabled(true);
        declare_spans();
    }
    if let Some(path) = &args.surrogate {
        let line = match std::fs::read_to_string(path) {
            Ok(line) => line,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let model = match hbm_surrogate::SurrogateModel::from_flat_json(line.trim()) {
            Ok(model) => model,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let bound = model.max_abs_err_inlet_c();
        let within = bound <= args.surrogate_tolerance_c;
        hbm_core::install_thermal_tier(Some(std::sync::Arc::new(
            hbm_surrogate::TieredExtractor::with_model(model, args.surrogate_tolerance_c),
        )));
        println!(
            "surrogate tier loaded from {} (inlet bound {bound:.3e} °C, tolerance {} °C{})",
            path.display(),
            args.surrogate_tolerance_c,
            if within {
                ""
            } else {
                "; bound exceeds tolerance, all queries will fall back"
            },
        );
    }
    let workers = args.config.workers;
    let queue = args.config.queue_capacity;
    let server = match Server::bind(args.addr.as_str(), args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "hbm-serve {} listening on http://{} ({workers} workers, queue {queue})",
        hbm_serve::VERSION,
        server.local_addr()
    );
    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1);
    }
    if args.timings {
        println!("{}", hbm_telemetry::timing::render_timing_report());
    }
}
