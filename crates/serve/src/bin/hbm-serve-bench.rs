//! `hbm-serve-bench` — load generator for the simulation daemon.
//!
//! ```text
//! hbm-serve-bench [--addr HOST:PORT] [--connections N] [--duration-secs S]
//!                 [--policy NAME] [--days N] [--warmup-days N] [--seed N]
//!                 [--distinct K] [--workers N] [--queue N] [--json FILE]
//!                 [--session-slots N] [--state-dir DIR]
//! ```
//!
//! Without `--addr` it boots an in-process server on an ephemeral port
//! (so `scripts/bench_summary.sh` and CI need no orchestration), warms
//! the scenario cache, then drives `--connections` concurrent clients in
//! closed loops for `--duration-secs` and reports throughput and latency
//! percentiles. `--distinct K` rotates the request seed over K values to
//! exercise cache misses. `--json FILE` writes the results in the
//! `BENCH_thermal.json` entry shape: a latency entry (`{name, median_ns,
//! mean_ns, min_ns, p99_ns, samples}` — each field meaning exactly what
//! its name says) plus one single-value entry (`requests_per_sec` or
//! `slot_ns`), which `scripts/bench_summary.sh` folds into the pinned
//! benchmark file and `scripts/perf_guard.sh` gates.
//!
//! `--session-slots N` switches to the sessionful load pattern: each
//! client creates one long-lived experiment and steps it `N` slots per
//! request for the whole run (stepping past the scenario horizon, which
//! the API supports) — the measured latency is the step round trip, and
//! throughput is reported in wall nanoseconds per simulated slot. Add
//! `--state-dir DIR` to include per-step checkpointing in the
//! measurement (the durable configuration `docs/OPERATIONS.md`
//! recommends).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hbm_serve::{ServeConfig, Server};

const USAGE: &str = "usage: hbm-serve-bench [--addr HOST:PORT] [--connections N] [--duration-secs S] \
[--policy NAME] [--days N] [--warmup-days N] [--seed N] [--distinct K] [--workers N] [--queue N] [--json FILE] \
[--session-slots N] [--state-dir DIR]
  --addr HOST:PORT   target an already-running server (default: spawn one in-process)
  --connections N    concurrent closed-loop clients (default 4)
  --duration-secs S  measured duration after cache warm-up (default 5)
  --policy NAME      scenario policy (default myopic)
  --days N           measured horizon in days (default 1)
  --warmup-days N    learning warm-up days (default 0)
  --seed N           base seed (default 1)
  --distinct K       rotate over K distinct seeds (default 1 = fully cache-warm)
  --workers N        workers for the in-process server (default: cores - 1)
  --queue N          queue capacity for the in-process server (default 32)
  --json FILE        write results as BENCH_thermal.json-shaped entries
  --session-slots N  sessionful mode: step a live experiment N slots per request
  --state-dir DIR    in-process server checkpoints experiments under DIR";

struct Args {
    addr: Option<String>,
    connections: usize,
    duration: Duration,
    policy: String,
    days: u64,
    warmup_days: u64,
    seed: u64,
    distinct: u64,
    workers: usize,
    queue: usize,
    json: Option<String>,
    session_slots: u64,
    state_dir: Option<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = Args {
        addr: None,
        connections: 4,
        duration: Duration::from_secs(5),
        policy: "myopic".into(),
        days: 1,
        warmup_days: 0,
        seed: 1,
        distinct: 1,
        workers: cores.saturating_sub(1).max(1),
        queue: 32,
        json: None,
        session_slots: 0,
        state_dir: None,
    };
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let parse = |name: &str, v: String| -> Result<u64, String> {
            v.parse().map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(take("--addr")?),
            "--connections" => {
                args.connections = parse("--connections", take("--connections")?)? as usize
            }
            "--duration-secs" => {
                args.duration =
                    Duration::from_secs(parse("--duration-secs", take("--duration-secs")?)?)
            }
            "--policy" => args.policy = take("--policy")?,
            "--days" => args.days = parse("--days", take("--days")?)?,
            "--warmup-days" => args.warmup_days = parse("--warmup-days", take("--warmup-days")?)?,
            "--seed" => args.seed = parse("--seed", take("--seed")?)?,
            "--distinct" => args.distinct = parse("--distinct", take("--distinct")?)?.max(1),
            "--workers" => args.workers = parse("--workers", take("--workers")?)?.max(1) as usize,
            "--queue" => args.queue = parse("--queue", take("--queue")?)? as usize,
            "--json" => args.json = Some(take("--json")?),
            "--session-slots" => {
                args.session_slots = parse("--session-slots", take("--session-slots")?)?
            }
            "--state-dir" => args.state_dir = Some(take("--state-dir")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.connections == 0 {
        return Err("--connections must be at least 1".into());
    }
    Ok(args)
}

/// Sends one request and returns `(status, body)`, reading to EOF (the
/// server always answers `Connection: close`).
fn roundtrip(addr: &str, request: &[u8]) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(request)
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response {response:?}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn simulate_request(policy: &str, days: u64, warmup_days: u64, seed: u64) -> Vec<u8> {
    let body = format!(
        "{{\"policy\":\"{policy}\",\"days\":{days},\"warmup_days\":{warmup_days},\"seed\":{seed}}}"
    );
    format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").into_bytes()
}

fn post_request(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn delete_request(path: &str) -> Vec<u8> {
    format!("DELETE {path} HTTP/1.1\r\nHost: bench\r\n\r\n").into_bytes()
}

/// Pulls a `"key":"value"` string out of a flat-JSON body.
fn json_str(body: &str, key: &str) -> Option<String> {
    let start = body.find(&format!("\"{key}\":\""))? + key.len() + 4;
    body[start..].split('"').next().map(str::to_string)
}

/// Pulls a `"key":123` number out of a flat-JSON body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let start = body.find(&format!("\"{key}\":"))? + key.len() + 3;
    let digits: String = body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Everything one sessionful client thread needs: where to connect, the
/// scenario to create, how to rotate seeds, and the shared counters.
struct SessionClient {
    addr: String,
    policy: String,
    days: u64,
    warmup_days: u64,
    first_seed: u64,
    seed_stride: u64,
    session_slots: u64,
    deadline: Instant,
    ok: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    slots: Arc<AtomicU64>,
}

/// One sessionful closed loop: create one long-lived experiment, then
/// step it `session_slots` per request for the whole run. Stepping
/// continues past the scenario horizon (the API keeps simulating, see
/// `docs/SERVICE.md`), so the steady state measures the session stepping
/// path — not experiment create/delete churn. The experiment is only
/// recreated (at the next seed) after an error, and only step round
/// trips are sampled.
fn session_client(client: &SessionClient) -> Vec<u64> {
    let create = |seed: u64| -> Option<String> {
        let body = format!(
            "{{\"policy\":\"{}\",\"days\":{},\"warmup_days\":{},\"seed\":{seed}}}",
            client.policy, client.days, client.warmup_days
        );
        match roundtrip(&client.addr, &post_request("/v1/experiments", &body)) {
            Ok((201, body)) => json_str(&body, "id"),
            Ok((503, _)) => {
                client.shed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
                None
            }
            Ok(_) | Err(_) => {
                client.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    };
    let retire = |id: &str| {
        let _ = roundtrip(
            &client.addr,
            &delete_request(&format!("/v1/experiments/{id}")),
        );
    };

    let mut samples = Vec::new();
    let mut seed = client.first_seed;
    let mut live: Option<String> = None;
    while Instant::now() < client.deadline {
        let id = match &live {
            Some(id) => id.clone(),
            None => match create(seed) {
                Some(id) => {
                    seed += client.seed_stride;
                    live = Some(id.clone());
                    id
                }
                None => continue,
            },
        };
        let step = post_request(
            &format!("/v1/experiments/{id}/step"),
            &format!("{{\"slots\":{}}}", client.session_slots),
        );
        let sent = Instant::now();
        match roundtrip(&client.addr, &step) {
            Ok((200, body)) => {
                samples.push(sent.elapsed().as_nanos() as u64);
                client.ok.fetch_add(1, Ordering::Relaxed);
                let stepped = json_u64(&body, "stepped").unwrap_or(0);
                client.slots.fetch_add(stepped, Ordering::Relaxed);
            }
            Ok((503, _)) => {
                client.shed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok(_) | Err(_) => {
                client.errors.fetch_add(1, Ordering::Relaxed);
                retire(&id);
                live = None;
            }
        }
    }
    if let Some(id) = live {
        retire(&id);
    }
    samples
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One latency entry in the `BENCH_thermal.json` shape, with every field
/// meaning what its name says (`median_ns` really is the median, `p99_ns`
/// really is the 99th percentile). The headline value (`median_ns`) sits
/// immediately after `name`, where `scripts/bench_summary.sh` and
/// `scripts/perf_guard.sh` read it.
fn latency_entry(name: &str, median: u64, mean: u64, min: u64, p99: u64, samples: u64) -> String {
    let mut o = hbm_telemetry::json::JsonObject::new();
    o.str("name", name)
        .u64("median_ns", median)
        .u64("mean_ns", mean)
        .u64("min_ns", min)
        .u64("p99_ns", p99)
        .u64("samples", samples);
    o.finish()
}

/// A single-value entry: the value field directly follows `name` so the
/// scripts' field-after-name readers find it.
fn value_entry(name: &str, key: &str, value: u64, samples_key: &str, samples: u64) -> String {
    let mut o = hbm_telemetry::json::JsonObject::new();
    o.str("name", name)
        .u64(key, value)
        .u64(samples_key, samples);
    o.finish()
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    // Spawn an in-process server unless a target was given.
    let mut spawned = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            hbm_par::configure_threads(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            );
            let config = ServeConfig {
                workers: args.workers,
                queue_capacity: args.queue,
                cache_capacity: (args.distinct as usize).max(256),
                state_dir: args.state_dir.as_ref().map(std::path::PathBuf::from),
                max_experiments: (args.connections * 2).max(64),
                ..ServeConfig::default()
            };
            let server = match Server::bind("127.0.0.1:0", config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: cannot bind in-process server: {e}");
                    std::process::exit(1);
                }
            };
            let addr = server.local_addr().to_string();
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.run());
            spawned = Some((handle, thread));
            addr
        }
    };

    // Warm the cache: one sequential request per distinct scenario, so the
    // measured window reflects cache-warm serving (use --distinct > the
    // cache capacity to measure cold-path throughput instead). Sessionful
    // runs skip this — experiments never touch the scenario cache.
    for k in 0..if args.session_slots > 0 {
        0
    } else {
        args.distinct
    } {
        let request = simulate_request(&args.policy, args.days, args.warmup_days, args.seed + k);
        match roundtrip(&addr, &request) {
            Ok((200, _)) => {}
            Ok((status, body)) => {
                eprintln!("error: warm-up request got {status}: {}", body.trim());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: warm-up request failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Closed-loop clients: each thread sends, waits, repeats until the
    // deadline, recording one latency sample per completed request.
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let slots = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let deadline = started + args.duration;
    let latencies: Vec<u64> = {
        let handles: Vec<_> = (0..args.connections)
            .map(|c| {
                let addr = addr.clone();
                let (ok, shed, errors) = (Arc::clone(&ok), Arc::clone(&shed), Arc::clone(&errors));
                let slots = Arc::clone(&slots);
                let (policy, days, warmup_days) =
                    (args.policy.clone(), args.days, args.warmup_days);
                let (seed, distinct) = (args.seed, args.distinct);
                let (connections, session_slots) = (args.connections as u64, args.session_slots);
                std::thread::spawn(move || {
                    if session_slots > 0 {
                        session_client(&SessionClient {
                            addr,
                            policy,
                            days,
                            warmup_days,
                            first_seed: seed + c as u64,
                            seed_stride: connections,
                            session_slots,
                            deadline,
                            ok,
                            shed,
                            errors,
                            slots,
                        })
                    } else {
                        let mut samples = Vec::new();
                        let mut i = c as u64;
                        while Instant::now() < deadline {
                            let request =
                                simulate_request(&policy, days, warmup_days, seed + i % distinct);
                            i += 1;
                            let sent = Instant::now();
                            match roundtrip(&addr, &request) {
                                Ok((200, _)) => {
                                    samples.push(sent.elapsed().as_nanos() as u64);
                                    ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok((503, _)) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Ok(_) | Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        samples
                    }
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread panicked"));
        }
        all
    };
    let elapsed = started.elapsed();

    let server_metrics = roundtrip(&addr, &get_request("/v1/metrics"))
        .map(|(_, body)| body.trim().to_string())
        .unwrap_or_default();
    if let Some((handle, thread)) = spawned {
        handle.stop();
        let _ = thread.join();
    }

    let (ok, shed, errors) = (
        ok.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
    );
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let mean = if sorted.is_empty() {
        0
    } else {
        (sorted.iter().map(|&v| v as u128).sum::<u128>() / sorted.len() as u128) as u64
    };
    let (p50, p90, p99) = (
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.90),
        percentile(&sorted, 0.99),
    );
    let rps = ok as f64 / elapsed.as_secs_f64();
    let stepped_slots = slots.load(Ordering::Relaxed);
    let slots_per_sec = stepped_slots as f64 / elapsed.as_secs_f64();

    if args.session_slots > 0 {
        println!(
            "hbm-serve-bench: {} sessionful connection(s) for {:.1?} against {addr} \
             (policy {}, {} day(s), {} slots/step{})",
            args.connections,
            elapsed,
            args.policy,
            args.days,
            args.session_slots,
            if args.state_dir.is_some() {
                ", checkpointing"
            } else {
                ""
            },
        );
    } else {
        println!(
            "hbm-serve-bench: {} connection(s) for {:.1?} against {addr} \
             (policy {}, {} day(s), {} distinct scenario(s))",
            args.connections, elapsed, args.policy, args.days, args.distinct
        );
    }
    println!("  requests: {ok} ok, {shed} shed (503), {errors} errors");
    println!("  throughput: {rps:.1} req/s");
    if args.session_slots > 0 {
        println!(
            "  stepped: {stepped_slots} slots ({:.2}M slots/s aggregate)",
            slots_per_sec / 1e6
        );
    }
    println!(
        "  latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        p50 as f64 / 1e6,
        p90 as f64 / 1e6,
        p99 as f64 / 1e6,
        sorted.last().copied().unwrap_or(0) as f64 / 1e6,
    );
    if !server_metrics.is_empty() {
        println!("  server metrics: {server_metrics}");
    }

    if let Some(path) = &args.json {
        // Latency entries carry the full honest distribution (median, mean,
        // min, p99, sample count); single-value entries carry one value
        // under a name that says what it is — `slot_ns` (wall nanoseconds
        // per simulated slot across the whole run) and `requests_per_sec`.
        // No field is repurposed to mean something its name does not say.
        let json = if args.session_slots > 0 {
            let slot_ns = if slots_per_sec > 0.0 {
                (1e9 / slots_per_sec) as u64
            } else {
                0
            };
            format!(
                "[{},\n{}]\n",
                latency_entry(
                    "serve/session_step_latency",
                    p50,
                    mean,
                    sorted.first().copied().unwrap_or(0),
                    p99,
                    ok
                ),
                value_entry(
                    "serve/session_slot_ns",
                    "slot_ns",
                    slot_ns,
                    "slots",
                    stepped_slots
                ),
            )
        } else {
            format!(
                "[{},\n{}]\n",
                latency_entry(
                    "serve/simulate_latency",
                    p50,
                    mean,
                    sorted.first().copied().unwrap_or(0),
                    p99,
                    ok
                ),
                value_entry(
                    "serve/throughput",
                    "requests_per_sec",
                    rps as u64,
                    "samples",
                    ok
                ),
            )
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  [json] {path}");
    }

    if ok == 0 || errors > 0 {
        eprintln!("error: load run unhealthy ({ok} ok, {errors} errors)");
        std::process::exit(1);
    }
}
