//! A bounded MPMC request queue with explicit backpressure.
//!
//! The accept loop pushes with [`BoundedQueue::try_push`], which fails
//! immediately when the queue is full — the server answers `503` instead
//! of buffering unboundedly. Workers block on [`BoundedQueue::pop`] until
//! work arrives or the queue is closed for shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between the accept loop and the workers.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Enqueues `item`, or returns it when the queue is full or closed —
    /// never blocks, so the caller can shed load instead of stalling.
    #[allow(clippy::result_large_err)] // the Err *is* the rejected item, by design
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, further pushes fail,
    /// and blocked poppers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_wakes_blocked_poppers_and_drains() {
        let q = Arc::new(BoundedQueue::new(2));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(waiter.join().unwrap(), Some(7));
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_push(8), Err(8));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(2));
    }
}
