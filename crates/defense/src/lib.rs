//! Defense mechanisms against battery-assisted thermal attacks
//! (Section VII of the paper).
//!
//! The paper argues the attack is *detectable with reasonable effort* — the
//! operator just has to look. This crate implements the suggested defenses
//! so their effectiveness can be evaluated against the simulator:
//!
//! **Detection**
//! * [`ThermalResidualDetector`] — cross-checks power meters against
//!   temperature sensors: the same metered load must not produce two
//!   different thermal trajectories. Behind-the-meter heat shows up as a
//!   positive residual between the observed inlet temperature and the one
//!   predicted from metered power ("detecting behind-the-meter cooling
//!   loads").
//! * [`ServerCalorimeter`] — per-server outlet-temperature + airflow
//!   metering turns each server into a calorimeter; a server whose measured
//!   heat exceeds its metered power is running on a hidden source
//!   ("improved data center monitoring", pinpointing the attacker).
//! * [`SlaMonitor`] — a CUSUM statistic on thermal-emergency occurrences
//!   catches attackers hiding inside the operator's long-term temperature
//!   SLA ("identifying attacks from impacts").
//!
//! **Prevention**
//! * [`MoveInInspection`] — probabilistic model of battery discovery at
//!   move-in and on-site load tests.
//! * [`prevention::jamming_noise_for_accuracy`] — sizing of power-line
//!   jamming noise to degrade the voltage side channel (pairs with the
//!   Fig. 12b sensitivity sweep).
//! * Extra cooling capacity and lower setpoints are configuration changes,
//!   exercised through `hbm_core::ColoConfig` (Fig. 12e).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
pub mod prevention;
mod residual;
mod sla;

pub use attribution::{reading_for, CalorimeterReading, ServerCalorimeter};
pub use prevention::MoveInInspection;
pub use residual::ThermalResidualDetector;
pub use sla::SlaMonitor;
