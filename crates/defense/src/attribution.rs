//! Per-server calorimetry: pinpointing the attacker's servers.

use serde::{Deserialize, Serialize};

use hbm_units::{Power, Temperature, TemperatureDelta};

/// Specific heat of air, J/(kg·K).
const CP_AIR: f64 = 1005.0;

/// One per-server measurement: inlet/outlet temperatures, exhaust airflow,
/// and the metered electrical power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalorimeterReading {
    /// Server inlet temperature.
    pub inlet: Temperature,
    /// Server outlet temperature.
    pub outlet: Temperature,
    /// Exhaust airflow, kg/s.
    pub airflow_kg_s: f64,
    /// Power metered for this server.
    pub metered: Power,
}

impl CalorimeterReading {
    /// The thermal power carried away by the exhaust air,
    /// `ṁ·c_p·(T_out − T_in)`.
    pub fn thermal_power(&self) -> Power {
        let dt = (self.outlet - self.inlet).as_celsius();
        Power::from_watts(self.airflow_kg_s * CP_AIR * dt)
    }

    /// Heat produced beyond the metered power (positive = hidden source).
    pub fn excess(&self) -> Power {
        self.thermal_power() - self.metered
    }
}

/// Attribution of hidden cooling loads to individual servers.
///
/// With outlet air-flow meters (or a thermal camera plus fan-noise
/// microphones — Section VII-B) the operator can measure each server's
/// actual heat output. A server whose heat exceeds its metered power by
/// more than the measurement tolerance is drawing on a concealed source —
/// the built-in battery.
///
/// # Examples
///
/// ```
/// use hbm_defense::{CalorimeterReading, ServerCalorimeter};
/// use hbm_units::{Power, Temperature};
///
/// let calorimeter = ServerCalorimeter::new(Power::from_watts(40.0));
/// let honest = CalorimeterReading {
///     inlet: Temperature::from_celsius(27.0),
///     outlet: Temperature::from_celsius(38.0),
///     airflow_kg_s: 0.018,
///     metered: Power::from_watts(199.0),
/// };
/// assert!(!calorimeter.is_suspicious(&honest));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerCalorimeter {
    tolerance: Power,
}

impl ServerCalorimeter {
    /// Creates a calorimeter with the given measurement tolerance (sensor
    /// noise plus fan-power slack; tens of watts in practice).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative.
    pub fn new(tolerance: Power) -> Self {
        assert!(tolerance >= Power::ZERO, "tolerance must be non-negative");
        ServerCalorimeter { tolerance }
    }

    /// Whether a reading indicates a hidden power source.
    pub fn is_suspicious(&self, reading: &CalorimeterReading) -> bool {
        reading.excess() > self.tolerance
    }

    /// Indices of suspicious servers in a rack-wide sweep.
    pub fn flag_servers(&self, readings: &[CalorimeterReading]) -> Vec<usize> {
        readings
            .iter()
            .enumerate()
            .filter(|(_, r)| self.is_suspicious(r))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Builds the reading an operator would take for a server given its actual
/// power, metered power, and airflow (helper for simulations and tests).
pub fn reading_for(
    actual: Power,
    metered: Power,
    inlet: Temperature,
    airflow_kg_s: f64,
) -> CalorimeterReading {
    let rise = TemperatureDelta::from_celsius(actual.as_watts() / (airflow_kg_s * CP_AIR));
    CalorimeterReading {
        inlet,
        outlet: inlet + rise,
        airflow_kg_s,
        metered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inlet() -> Temperature {
        Temperature::from_celsius(27.0)
    }

    #[test]
    fn honest_server_passes() {
        let c = ServerCalorimeter::new(Power::from_watts(40.0));
        let r = reading_for(
            Power::from_watts(200.0),
            Power::from_watts(200.0),
            inlet(),
            0.018,
        );
        assert!(!c.is_suspicious(&r));
        assert!(r.excess().abs() < Power::from_watts(1.0));
    }

    #[test]
    fn attacking_server_is_flagged() {
        // 450 W actual, 200 W metered — the paper's repeated-attack server.
        let c = ServerCalorimeter::new(Power::from_watts(40.0));
        let r = reading_for(
            Power::from_watts(450.0),
            Power::from_watts(200.0),
            inlet(),
            0.018,
        );
        assert!(c.is_suspicious(&r));
        assert!((r.excess().as_watts() - 250.0).abs() < 1.0);
    }

    #[test]
    fn pinpoints_attacker_in_rack_sweep() {
        let c = ServerCalorimeter::new(Power::from_watts(40.0));
        let mut rack: Vec<CalorimeterReading> = (0..40)
            .map(|_| {
                reading_for(
                    Power::from_watts(180.0),
                    Power::from_watts(180.0),
                    inlet(),
                    0.018,
                )
            })
            .collect();
        for s in [3, 7] {
            rack[s] = reading_for(
                Power::from_watts(450.0),
                Power::from_watts(200.0),
                inlet(),
                0.018,
            );
        }
        assert_eq!(c.flag_servers(&rack), vec![3, 7]);
    }

    #[test]
    fn charging_attacker_is_not_flagged() {
        // While charging, actual heat is *below* metered power — nothing to
        // flag thermally (the inspection defense catches the battery
        // instead).
        let c = ServerCalorimeter::new(Power::from_watts(40.0));
        let r = reading_for(
            Power::from_watts(280.0),
            Power::from_watts(480.0),
            inlet(),
            0.018,
        );
        assert!(!c.is_suspicious(&r));
    }

    #[test]
    fn thermal_power_round_trip() {
        let r = reading_for(
            Power::from_watts(300.0),
            Power::from_watts(100.0),
            inlet(),
            0.02,
        );
        assert!((r.thermal_power().as_watts() - 300.0).abs() < 1e-9);
    }
}
