//! Power/temperature cross-check: the behind-the-meter heat detector.

use serde::{Deserialize, Serialize};

use hbm_telemetry::{ChannelValue, Recorder, Sample};
use hbm_thermal::ZoneModel;
use hbm_units::{Duration, Power, Temperature, TemperatureDelta};

/// Detects behind-the-meter cooling load by running a *digital twin* of the
/// colocation's thermal dynamics on the **metered** power and comparing its
/// predicted inlet temperature against the measured one.
///
/// Any sustained positive residual means more heat is being produced than
/// the meters account for — exactly the signature of a battery-assisted
/// thermal attack. The detector requires the residual to exceed a threshold
/// for a number of consecutive slots before alarming, to ride out sensor
/// noise and model error.
///
/// # Examples
///
/// ```
/// use hbm_defense::ThermalResidualDetector;
/// use hbm_thermal::ZoneModel;
/// use hbm_units::{Duration, Power, Temperature, TemperatureDelta};
///
/// let mut detector = ThermalResidualDetector::new(
///     ZoneModel::paper_default(),
///     TemperatureDelta::from_celsius(0.8),
///     3,
/// );
/// let slot = Duration::from_minutes(1.0);
/// // Metered 7 kW but 8.6 kW of actual heat: the room runs hotter than
/// // the twin predicts, and the detector fires within a few minutes.
/// let mut twin_truth = ZoneModel::paper_default();
/// let mut fired = false;
/// for _ in 0..10 {
///     let observed = twin_truth.step(Power::from_kilowatts(8.6), slot);
///     fired |= detector.observe(Power::from_kilowatts(7.0), observed, slot);
/// }
/// assert!(fired);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalResidualDetector {
    twin: ZoneModel,
    threshold: TemperatureDelta,
    required_consecutive: u32,
    consecutive: u32,
    last_residual: TemperatureDelta,
    alarms: u64,
}

impl ThermalResidualDetector {
    /// Creates a detector.
    ///
    /// * `twin` — thermal model of the colocation, initialized to the
    ///   current conditions;
    /// * `threshold` — residual magnitude treated as anomalous;
    /// * `required_consecutive` — consecutive anomalous slots before the
    ///   alarm fires.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is non-positive or `required_consecutive` is 0.
    pub fn new(twin: ZoneModel, threshold: TemperatureDelta, required_consecutive: u32) -> Self {
        assert!(
            threshold > TemperatureDelta::ZERO,
            "threshold must be positive"
        );
        assert!(
            required_consecutive > 0,
            "need at least one consecutive slot"
        );
        ThermalResidualDetector {
            twin,
            threshold,
            required_consecutive,
            consecutive: 0,
            last_residual: TemperatureDelta::ZERO,
            alarms: 0,
        }
    }

    /// Feeds one slot of metered power and the measured inlet temperature;
    /// returns whether the alarm fires on this slot.
    ///
    /// # Panics
    ///
    /// Panics if `metered` is negative or `dt` non-positive.
    pub fn observe(&mut self, metered: Power, observed: Temperature, dt: Duration) -> bool {
        let predicted = self.twin.step(metered, dt);
        self.last_residual = observed - predicted;
        if self.last_residual > self.threshold {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
        // Keep the twin honest: once it has diverged, re-anchor it to the
        // observation so subsequent residuals measure *new* divergence.
        if self.last_residual.abs() > self.threshold * 3.0 {
            self.twin.set_inlet(observed);
        }
        if self.consecutive >= self.required_consecutive {
            self.alarms += 1;
            self.consecutive = 0;
            true
        } else {
            false
        }
    }

    /// Like [`ThermalResidualDetector::observe`], but also emits one
    /// telemetry [`Sample`] per slot (channels `residual_c`, `alarm`,
    /// `alarms_total`; see `docs/TELEMETRY.md`). `slot_index` tags the
    /// sample so detector traces align with simulator traces.
    pub fn observe_recorded(
        &mut self,
        slot_index: u64,
        metered: Power,
        observed: Temperature,
        dt: Duration,
        recorder: &mut dyn Recorder,
    ) -> bool {
        let fired = self.observe(metered, observed, dt);
        let channels: [(&'static str, ChannelValue); 3] = [
            ("residual_c", self.last_residual.as_celsius().into()),
            ("alarm", fired.into()),
            ("alarms_total", ChannelValue::U64(self.alarms)),
        ];
        recorder.record(&Sample {
            step: slot_index,
            channels: &channels,
        });
        fired
    }

    /// Residual of the most recent observation.
    pub fn last_residual(&self) -> TemperatureDelta {
        self.last_residual
    }

    /// Number of alarms raised so far.
    pub fn alarm_count(&self) -> u64 {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> ThermalResidualDetector {
        ThermalResidualDetector::new(
            ZoneModel::paper_default(),
            TemperatureDelta::from_celsius(0.8),
            3,
        )
    }

    fn slot() -> Duration {
        Duration::from_minutes(1.0)
    }

    #[test]
    fn silent_when_meters_match_heat() {
        let mut d = detector();
        let mut truth = ZoneModel::paper_default();
        for kw in [5.0, 6.5, 7.5, 7.9, 6.0] {
            for _ in 0..10 {
                let observed = truth.step(Power::from_kilowatts(kw), slot());
                assert!(!d.observe(Power::from_kilowatts(kw), observed, slot()));
            }
        }
        assert_eq!(d.alarm_count(), 0);
    }

    #[test]
    fn fires_on_behind_the_meter_attack() {
        let mut d = detector();
        let mut truth = ZoneModel::paper_default();
        // Normal operation first.
        for _ in 0..30 {
            let observed = truth.step(Power::from_kilowatts(7.0), slot());
            d.observe(Power::from_kilowatts(7.0), observed, slot());
        }
        // Attack: metered 7.48 kW, actual 8.48 kW.
        let mut detected_after = None;
        for k in 0..15 {
            let observed = truth.step(Power::from_kilowatts(8.48), slot());
            if d.observe(Power::from_kilowatts(7.48), observed, slot()) {
                detected_after = Some(k + 1);
                break;
            }
        }
        let latency = detected_after.expect("attack must be detected");
        assert!(
            latency <= 8,
            "detection should beat the emergency dwell, took {latency} min"
        );
    }

    #[test]
    fn tolerates_transient_mismatch() {
        let mut d = detector();
        let mut truth = ZoneModel::paper_default();
        // One minute of mismatch (e.g. meter sampling skew) — no alarm.
        let observed = truth.step(Power::from_kilowatts(9.0), slot());
        assert!(!d.observe(Power::from_kilowatts(7.0), observed, slot()));
        for _ in 0..10 {
            let observed = truth.step(Power::from_kilowatts(6.0), slot());
            assert!(!d.observe(Power::from_kilowatts(6.0), observed, slot()));
        }
        assert_eq!(d.alarm_count(), 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_bad_threshold() {
        let _ = ThermalResidualDetector::new(ZoneModel::paper_default(), TemperatureDelta::ZERO, 3);
    }
}
