//! SLA-statistics monitoring: catching the attacker hiding in the noise.

use serde::{Deserialize, Serialize};

/// CUSUM monitor over thermal-emergency occurrences.
///
/// Open-air-flow colocations see occasional emergencies even without
/// attacks, and operators only promise a long-term temperature SLA (e.g.
/// inlet ≤ 27 °C for 99 % of the time), which an attacker can hide behind
/// for a while (Section VII-B). A one-sided CUSUM on the per-slot emergency
/// indicator detects a sustained rate increase long before the SLA headline
/// number moves.
///
/// With baseline rate `p₀` and slack `k`, the statistic is
/// `S ← max(0, S + (x − p₀ − k))` for each slot indicator `x ∈ {0, 1}`;
/// an alarm fires when `S ≥ h`.
///
/// # Examples
///
/// ```
/// use hbm_defense::SlaMonitor;
///
/// let mut monitor = SlaMonitor::new(0.001, 0.002, 12.0);
/// // A burst of emergencies (5 capped slots each) every hour.
/// let mut fired = false;
/// for slot in 0..5000u32 {
///     let in_emergency = slot % 60 < 5;
///     fired |= monitor.observe(in_emergency);
/// }
/// assert!(fired);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaMonitor {
    baseline_rate: f64,
    slack: f64,
    alarm_level: f64,
    statistic: f64,
    alarms: u64,
    slots: u64,
    emergencies: u64,
}

impl SlaMonitor {
    /// Creates a monitor.
    ///
    /// * `baseline_rate` — expected fraction of slots in emergency without
    ///   an attack;
    /// * `slack` — rate increase deemed tolerable (sets detection
    ///   sensitivity);
    /// * `alarm_level` — CUSUM level `h` at which the alarm fires.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or `baseline_rate ≥ 1`.
    pub fn new(baseline_rate: f64, slack: f64, alarm_level: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&baseline_rate),
            "baseline rate must be in [0, 1)"
        );
        assert!(slack >= 0.0, "slack must be non-negative");
        assert!(alarm_level > 0.0, "alarm level must be positive");
        SlaMonitor {
            baseline_rate,
            slack,
            alarm_level,
            statistic: 0.0,
            alarms: 0,
            slots: 0,
            emergencies: 0,
        }
    }

    /// Feeds one slot; `in_emergency` is whether capping was active.
    /// Returns whether the alarm fires on this slot (the statistic resets
    /// after an alarm).
    pub fn observe(&mut self, in_emergency: bool) -> bool {
        self.slots += 1;
        if in_emergency {
            self.emergencies += 1;
        }
        let x = if in_emergency { 1.0 } else { 0.0 };
        self.statistic = (self.statistic + x - self.baseline_rate - self.slack).max(0.0);
        if self.statistic >= self.alarm_level {
            self.statistic = 0.0;
            self.alarms += 1;
            true
        } else {
            false
        }
    }

    /// Current CUSUM statistic.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Alarms raised so far.
    pub fn alarm_count(&self) -> u64 {
        self.alarms
    }

    /// Observed emergency rate so far.
    pub fn observed_rate(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.emergencies as f64 / self.slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_colocation_never_alarms() {
        // Alarm level 12 > one benign 5-slot episode, and episodes a week
        // apart decay away completely in between.
        let mut m = SlaMonitor::new(0.001, 0.002, 12.0);
        for slot in 0..100_000u32 {
            // Benign background: one 5-slot emergency every ~10 000 slots
            // (0.05 %, well under the 0.1 % baseline).
            let x = slot % 10_000 < 5;
            assert!(!m.observe(x), "false alarm at slot {slot}");
        }
    }

    #[test]
    fn attack_rate_detected_within_weeks() {
        let mut m = SlaMonitor::new(0.001, 0.002, 12.0);
        let mut detected_at = None;
        for slot in 0..40_000u32 {
            // Attack era: two 5-slot emergencies per day (≈0.7 %), bursty.
            let in_day = slot % 1440;
            let x = in_day < 5 || (700..705).contains(&in_day);
            if m.observe(x) {
                detected_at = Some(slot);
                break;
            }
        }
        let at = detected_at.expect("sustained rate increase must alarm");
        assert!(
            at < 20_000,
            "detection should land within two weeks, got slot {at}"
        );
    }

    #[test]
    fn statistic_resets_after_alarm() {
        let mut m = SlaMonitor::new(0.0, 0.0, 1.5);
        assert!(!m.observe(true));
        assert!(m.observe(true)); // 2.0 ≥ 1.5 → alarm
        assert_eq!(m.statistic(), 0.0);
        assert_eq!(m.alarm_count(), 1);
    }

    #[test]
    fn observed_rate_tracks_inputs() {
        let mut m = SlaMonitor::new(0.001, 0.002, 10.0);
        for i in 0..100 {
            m.observe(i % 4 == 0);
        }
        assert!((m.observed_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline rate")]
    fn rejects_bad_baseline() {
        let _ = SlaMonitor::new(1.0, 0.0, 1.0);
    }
}
