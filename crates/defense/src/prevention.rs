//! Prevention defenses: move-in inspection and side-channel degradation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use hbm_units::Power;

/// Move-in inspection model (Section VII-A, "rigorous move-in inspection").
///
/// Each piece of gear is inspected with some coverage probability; an
/// inspected battery-equipped PSU is recognized with some detection
/// probability (visual inspection plus on-site load tests). Without
/// built-in batteries the attacker has no extra power source and the
/// attack is dead.
///
/// # Examples
///
/// ```
/// use hbm_defense::MoveInInspection;
///
/// let inspection = MoveInInspection::new(0.8, 0.95);
/// // Four attack servers: the chance that at least one battery is found.
/// let p = inspection.detection_probability(4);
/// assert!(p > 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoveInInspection {
    /// Probability that any given server is actually inspected.
    pub coverage: f64,
    /// Probability an inspected built-in battery is recognized.
    pub recognition: f64,
}

impl MoveInInspection {
    /// Creates an inspection policy.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(coverage: f64, recognition: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&recognition),
            "recognition must be in [0, 1]"
        );
        MoveInInspection {
            coverage,
            recognition,
        }
    }

    /// Per-server probability of catching a battery.
    pub fn per_server(&self) -> f64 {
        self.coverage * self.recognition
    }

    /// Probability at least one of `battery_servers` batteries is caught.
    pub fn detection_probability(&self, battery_servers: usize) -> f64 {
        1.0 - (1.0 - self.per_server()).powi(battery_servers as i32)
    }

    /// Samples whether a move-in with `battery_servers` batteried servers is
    /// caught.
    pub fn sample<R: RngExt + ?Sized>(&self, battery_servers: usize, rng: &mut R) -> bool {
        rng.random::<f64>() < self.detection_probability(battery_servers)
    }

    /// Monte-Carlo estimate of the detection probability (used to validate
    /// the closed form; also handy for more elaborate inspection policies).
    pub fn simulate(&self, battery_servers: usize, trials: u32, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut caught = 0u32;
        for _ in 0..trials {
            let mut hit = false;
            for _ in 0..battery_servers {
                if rng.random::<f64>() < self.per_server() {
                    hit = true;
                }
            }
            if hit {
                caught += 1;
            }
        }
        caught as f64 / trials as f64
    }
}

/// Sizes the jamming-noise amplitude needed to degrade the attacker's load
/// estimate to a target standard deviation (Section VII-A, "degrading
/// physical side channels").
///
/// The operator injects broadband noise into the power network; its effect
/// on the attacker is equivalent to the extra estimation noise of
/// `hbm_sidechannel::SideChannelConfig::with_extra_noise` (swept in
/// Fig. 12b). Because the attacker averages `n` samples per slot, the
/// injected per-sample noise must be `√n` larger.
pub fn jamming_noise_for_accuracy(target_estimate_std: Power, samples_per_estimate: u32) -> Power {
    target_estimate_std * (samples_per_estimate.max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_servers_are_hard_to_sneak_in() {
        let i = MoveInInspection::new(0.8, 0.95);
        assert!((i.per_server() - 0.76).abs() < 1e-12);
        let p4 = i.detection_probability(4);
        assert!(p4 > 0.996, "got {p4}");
    }

    #[test]
    fn zero_coverage_catches_nothing() {
        let i = MoveInInspection::new(0.0, 1.0);
        assert_eq!(i.detection_probability(10), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!i.sample(10, &mut rng));
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let i = MoveInInspection::new(0.5, 0.8);
        let mc = i.simulate(4, 20_000, 7);
        let exact = i.detection_probability(4);
        assert!((mc - exact).abs() < 0.01, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn jamming_scales_with_averaging() {
        let per_sample = jamming_noise_for_accuracy(Power::from_kilowatts(0.4), 64);
        assert!((per_sample.as_kilowatts() - 3.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn rejects_bad_probability() {
        let _ = MoveInInspection::new(1.5, 0.5);
    }
}
