//! Property-based tests of trace generation and the latency model.

use hbm_units::{Duration, Power};
use hbm_workload::{generate, latency::LatencyModel, PowerTrace, TraceConfig, TraceShape};
use proptest::prelude::*;

fn any_shape() -> impl Strategy<Value = TraceShape> {
    prop_oneof![Just(TraceShape::FacebookBaidu), Just(TraceShape::Google)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_traces_hit_targets(
        shape in any_shape(),
        seed in 0u64..1000,
        mean_kw in 3.0..6.5f64,
    ) {
        let config = TraceConfig {
            shape,
            seed,
            slot: Duration::from_minutes(1.0),
            len: 3 * 1440,
            mean: Power::from_kilowatts(mean_kw),
            peak: Power::from_kilowatts(7.2),
        };
        let t = generate(&config);
        prop_assert_eq!(t.len(), 3 * 1440);
        prop_assert!((t.mean().as_kilowatts() - mean_kw).abs() < 0.25);
        prop_assert!((t.peak().as_kilowatts() - 7.2).abs() < 0.1);
        prop_assert!(t.iter().all(|&p| p >= Power::ZERO));
    }

    #[test]
    fn generation_is_deterministic(shape in any_shape(), seed in 0u64..1000) {
        let config = TraceConfig {
            shape,
            seed,
            slot: Duration::from_minutes(1.0),
            len: 500,
            mean: Power::from_kilowatts(5.0),
            peak: Power::from_kilowatts(7.0),
        };
        prop_assert_eq!(generate(&config), generate(&config));
    }

    #[test]
    fn rescale_preserves_ordering(
        samples in prop::collection::vec(0.5..8.0f64, 2..200),
        mean_kw in 2.0..5.0f64,
    ) {
        let trace = PowerTrace::new(
            Duration::from_minutes(1.0),
            samples.iter().map(|&k| Power::from_kilowatts(k)).collect(),
        );
        let scaled = trace.rescale(Power::from_kilowatts(mean_kw), Power::from_kilowatts(7.0));
        // Weak monotonicity: the affine map preserves ordering except where
        // the zero-clamp flattens values, so ≥ must survive as ≥.
        for i in 1..samples.len() {
            if trace.get(i) >= trace.get(i - 1) {
                prop_assert!(
                    scaled.get(i) >= scaled.get(i - 1),
                    "rescale must weakly preserve ordering"
                );
            }
        }
    }

    #[test]
    fn fraction_at_or_above_is_monotone(
        samples in prop::collection::vec(0.0..8.0f64, 1..100),
        t1 in 0.0..8.0f64,
        dt in 0.0..4.0f64,
    ) {
        let trace = PowerTrace::new(
            Duration::from_minutes(1.0),
            samples.iter().map(|&k| Power::from_kilowatts(k)).collect(),
        );
        let f1 = trace.fraction_at_or_above(Power::from_kilowatts(t1));
        let f2 = trace.fraction_at_or_above(Power::from_kilowatts(t1 + dt));
        prop_assert!(f2 <= f1);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn latency_monotone_in_power_and_load(
        p1 in 0.0..1.0f64,
        dp in 0.0..0.5f64,
        load in 0.05..0.6f64,
        dload in 0.0..0.3f64,
    ) {
        for model in [LatencyModel::web_service(), LatencyModel::web_search()] {
            let hi_power = (p1 + dp).min(1.0);
            prop_assert!(
                model.t95_millis(hi_power, load) <= model.t95_millis(p1, load) + 1e-9,
                "more power must not hurt latency"
            );
            prop_assert!(
                model.t95_millis(p1, load + dload) >= model.t95_millis(p1, load) - 1e-9,
                "more load must not help latency"
            );
        }
    }

    #[test]
    fn latency_is_bounded(p in 0.0..=1.0f64, load in 0.0..2.0f64) {
        for model in [LatencyModel::web_service(), LatencyModel::web_search()] {
            let t = model.t95_millis(p, load);
            prop_assert!(t.is_finite());
            prop_assert!(t > 0.0);
            prop_assert!(t <= 1500.0 + 1e-9);
            let d = model.degradation(p, load);
            prop_assert!(d >= 1.0 - 1e-9, "uncapped is the best case");
        }
    }
}
