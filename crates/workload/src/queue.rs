//! Discrete-event queueing simulation validating the analytic latency
//! model.
//!
//! The paper's Fig. 15 comes from load-testing CloudSuite on real servers.
//! This reproduction uses the analytic [`crate::latency::LatencyModel`] in
//! year-long runs; here we validate that model against an explicit
//! request-level simulation.
//!
//! The queue is the single-queue equivalent of a *capacity-cut* server:
//! power capping disables parallel capacity (cores/turbo budget), so the
//! effective utilization rises to `ρ = load / c(p)` while an individual
//! request's service time stays what it was — the single-queue equivalent
//! keeps the full-power service time and inflates the arrival intensity.
//! This matches the paper's measurement (≈4× t95 at a 60 % cap) where a
//! naive service-stretch M/M/1 would predict ≈9×.
//!
//! The calibration then makes simulation and model agree *exactly* in
//! expectation: `queue_ms = ln(20) ·` (mean service time at full power),
//! and the M/M/1 sojourn 95th percentile is `ln(20)·s/(1−ρ)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::latency::LatencyModel;
use crate::stats_percentile;

/// Result of a request-level simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueOutcome {
    /// Measured 95th-percentile response time, milliseconds.
    pub t95_ms: f64,
    /// Measured mean response time, milliseconds.
    pub mean_ms: f64,
    /// Offered utilization `ρ` of the (possibly throttled) server.
    pub utilization: f64,
    /// Number of simulated requests.
    pub requests: usize,
}

/// Simulates `requests` requests through a power-capped M/M/1 server and
/// measures response-time percentiles.
///
/// * `power_frac` — per-server power cap relative to peak;
/// * `load_frac` — offered load relative to full-power capacity (the same
///   normalization as [`LatencyModel`]).
///
/// # Panics
///
/// Panics if arguments are out of range or `requests` is zero.
///
/// # Examples
///
/// ```
/// use hbm_workload::latency::LatencyModel;
/// use hbm_workload::queue::simulate;
///
/// let model = LatencyModel::web_service();
/// let outcome = simulate(&model, 1.0, model.rated_load(), 20_000, 1);
/// let analytic = model.t95_millis(1.0, model.rated_load());
/// assert!((outcome.t95_ms - analytic).abs() / analytic < 0.15);
/// ```
pub fn simulate(
    model: &LatencyModel,
    power_frac: f64,
    load_frac: f64,
    requests: usize,
    seed: u64,
) -> QueueOutcome {
    assert!(
        (0.0..=1.0).contains(&power_frac),
        "power fraction must be in [0, 1]"
    );
    assert!(load_frac >= 0.0, "load fraction must be non-negative");
    assert!(requests > 0, "need at least one request");

    let capacity = model.capacity_at(power_frac).max(1e-6);
    // Mean service time at full power, from the model's calibration; the
    // capacity cut shows up as inflated utilization, not slower requests.
    let service_ms = model.queue_ms() / 20f64.ln();
    // Arrival intensity of the single-queue equivalent (requests per ms):
    // utilization ρ = load / c(p).
    let arrival_rate = load_frac / (capacity * service_ms);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut exp = |mean: f64| -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    };

    let mut clock = 0.0; // arrival clock, ms
    let mut server_free_at = 0.0;
    let mut sojourns = Vec::with_capacity(requests);
    for _ in 0..requests {
        clock += exp(1.0 / arrival_rate);
        let start = clock.max(server_free_at);
        let departure = start + exp(service_ms);
        server_free_at = departure;
        // Response time is queueing + service + fixed base latency, capped
        // at the client timeout (the model's ceiling).
        sojourns.push((departure - clock + model.base_ms()).min(model.ceiling_ms()));
    }

    let mean_ms = sojourns.iter().sum::<f64>() / sojourns.len() as f64;
    QueueOutcome {
        t95_ms: stats_percentile(&sojourns, 95.0),
        mean_ms,
        utilization: arrival_rate * service_ms,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_analytic_model_at_full_power() {
        let model = LatencyModel::web_service();
        let o = simulate(&model, 1.0, model.rated_load(), 50_000, 7);
        let analytic = model.t95_millis(1.0, model.rated_load());
        assert!(
            (o.t95_ms - analytic).abs() / analytic < 0.1,
            "simulated {} vs analytic {analytic}",
            o.t95_ms
        );
    }

    #[test]
    fn matches_analytic_model_under_the_emergency_cap() {
        // The headline anchor: 60 % power cap ≈ 4× latency. The t95
        // estimator converges slowly at this utilization, so this check
        // uses a larger sample than the full-power one.
        let model = LatencyModel::web_service();
        let o = simulate(&model, 0.6, model.rated_load(), 500_000, 7);
        let analytic = model.t95_millis(0.6, model.rated_load());
        assert!(
            (o.t95_ms - analytic).abs() / analytic < 0.15,
            "simulated {} vs analytic {analytic}",
            o.t95_ms
        );
    }

    #[test]
    fn utilization_matches_the_model_definition() {
        let model = LatencyModel::web_service();
        let o = simulate(&model, 0.6, 0.3, 10_000, 1);
        let expected = 0.3 / model.capacity_at(0.6);
        assert!((o.utilization - expected).abs() < 1e-9);
    }

    #[test]
    fn overload_saturates_at_the_ceiling() {
        let model = LatencyModel::web_service();
        // ρ > 1: the queue grows without bound; the timeout cap binds.
        let o = simulate(&model, 0.5, 0.9, 20_000, 3);
        assert!(o.t95_ms >= model.ceiling_ms() * 0.99);
    }

    #[test]
    fn deterministic_per_seed() {
        let model = LatencyModel::web_search();
        let a = simulate(&model, 0.8, 0.4, 5_000, 11);
        let b = simulate(&model, 0.8, 0.4, 5_000, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn web_search_also_tracks_its_model() {
        let model = LatencyModel::web_search();
        for (p, l) in [(1.0, 0.45), (0.7, 0.35)] {
            let o = simulate(&model, p, l, 50_000, 5);
            let analytic = model.t95_millis(p, l);
            assert!(
                (o.t95_ms - analytic).abs() / analytic < 0.15,
                "({p},{l}): simulated {} vs analytic {analytic}",
                o.t95_ms
            );
        }
    }
}
