//! Importing and exporting power traces as CSV.
//!
//! The paper drives its evaluation with power traces derived from
//! production request logs. Those logs are not public, so this crate ships
//! synthetic generators — but a user with real facility telemetry should be
//! able to drop it in. The format is a minimal two-column CSV
//! (`minute,kw`, header optional), the same one `experiments` writes for
//! Figs. 6b/13a, so exported snapshots round-trip.

use std::fmt;
use std::fs;
use std::path::Path;

use hbm_units::{Duration, Power};

use crate::PowerTrace;

/// Error parsing a CSV power trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The input contained no samples.
    Empty,
    /// A row was malformed.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Empty => f.write_str("trace contains no samples"),
            ParseTraceError::BadRow { line, reason } => {
                write!(f, "bad trace row at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

impl PowerTrace {
    /// Parses a trace from CSV text: one `minute,kw` or bare `kw` value per
    /// line; a header row and blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] if no samples are found or a row has a
    /// non-numeric/negative power.
    ///
    /// # Examples
    ///
    /// ```
    /// use hbm_units::Duration;
    /// use hbm_workload::PowerTrace;
    ///
    /// let csv = "minute,benign_kw\n0,5.2\n1,5.4\n2,5.3\n";
    /// let trace = PowerTrace::from_csv_str(csv, Duration::from_minutes(1.0)).unwrap();
    /// assert_eq!(trace.len(), 3);
    /// ```
    pub fn from_csv_str(csv: &str, slot: Duration) -> Result<PowerTrace, ParseTraceError> {
        let mut samples = Vec::new();
        for (i, raw) in csv.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            // The power value is the last comma-separated field.
            let field = line.rsplit(',').next().unwrap_or(line).trim();
            let kw: f64 = match field.parse() {
                Ok(v) => v,
                Err(_) if i == 0 => continue, // header row
                Err(e) => {
                    return Err(ParseTraceError::BadRow {
                        line: i + 1,
                        reason: format!("{field:?}: {e}"),
                    })
                }
            };
            if !kw.is_finite() || kw < 0.0 {
                return Err(ParseTraceError::BadRow {
                    line: i + 1,
                    reason: format!("power must be finite and non-negative, got {kw}"),
                });
            }
            samples.push(Power::from_kilowatts(kw));
        }
        if samples.is_empty() {
            return Err(ParseTraceError::Empty);
        }
        Ok(PowerTrace::new(slot, samples))
    }

    /// Reads a trace from a CSV file (see [`PowerTrace::from_csv_str`]).
    ///
    /// # Errors
    ///
    /// Returns an I/O error message or a parse error description.
    pub fn from_csv_file(path: impl AsRef<Path>, slot: Duration) -> Result<PowerTrace, String> {
        let text = fs::read_to_string(path.as_ref())
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        PowerTrace::from_csv_str(&text, slot).map_err(|e| e.to_string())
    }

    /// Serializes the trace as `minute,kw` CSV with a header.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::from("minute,kw\n");
        for (k, p) in self.iter().enumerate() {
            out.push_str(&format!("{k},{:.6}\n", p.as_kilowatts()));
        }
        out
    }

    /// Writes the trace to a CSV file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error message.
    pub fn to_csv_file(&self, path: impl AsRef<Path>) -> Result<(), String> {
        fs::write(path.as_ref(), self.to_csv_string())
            .map_err(|e| format!("writing {}: {e}", path.as_ref().display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minute() -> Duration {
        Duration::from_minutes(1.0)
    }

    #[test]
    fn parses_two_column_csv_with_header() {
        let t = PowerTrace::from_csv_str("minute,kw\n0,5.0\n1,6.0\n", minute()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), Power::from_kilowatts(6.0));
    }

    #[test]
    fn parses_bare_values() {
        let t = PowerTrace::from_csv_str("1.5\n2.5\n\n3.5\n", minute()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(2), Power::from_kilowatts(3.5));
    }

    #[test]
    fn round_trips_through_csv() {
        let original = crate::generate(&crate::TraceConfig::paper_default_year(5).with_len(100));
        let parsed = PowerTrace::from_csv_str(&original.to_csv_string(), minute()).unwrap();
        assert_eq!(parsed.len(), original.len());
        for k in 0..original.len() {
            assert!(
                (parsed.get(k) - original.get(k)).abs() < Power::from_watts(0.01),
                "sample {k} drifted"
            );
        }
    }

    #[test]
    fn rejects_garbage_and_negatives() {
        let err = PowerTrace::from_csv_str("0,5.0\n1,banana\n", minute()).unwrap_err();
        assert!(matches!(err, ParseTraceError::BadRow { line: 2, .. }));
        let err = PowerTrace::from_csv_str("0,-1.0\n", minute()).unwrap_err();
        assert!(matches!(err, ParseTraceError::BadRow { line: 1, .. }));
        assert_eq!(
            PowerTrace::from_csv_str("kw\n", minute()).unwrap_err(),
            ParseTraceError::Empty
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hbm_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let original = crate::generate(&crate::TraceConfig::paper_default_year(9).with_len(50));
        original.to_csv_file(&path).unwrap();
        let parsed = PowerTrace::from_csv_file(&path, minute()).unwrap();
        assert_eq!(parsed.len(), 50);
        let _ = std::fs::remove_file(&path);
    }
}
