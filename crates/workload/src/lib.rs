//! Tenant workload substrate: synthetic power traces and tail-latency models.
//!
//! The paper drives its year-long simulations with power traces derived from
//! Facebook and Baidu request logs (default) and a Google cluster trace
//! (alternate), scaled to 75 % average utilization of the 8 kW edge
//! colocation, and models tenant performance with 95th-percentile response
//! times measured on a CloudSuite prototype. None of those inputs are public,
//! so this crate provides shape-preserving synthetic equivalents:
//!
//! * [`generate`] produces seeded, reproducible power traces with diurnal and
//!   weekly seasonality, autocorrelated noise, and load bursts
//!   ([`TraceShape::FacebookBaidu`]), or a flatter, spikier cluster profile
//!   ([`TraceShape::Google`]).
//! * [`latency`] models the 95th-percentile response time of an interactive
//!   service as a function of the power cap and offered load, calibrated to
//!   the paper's anchor (≈4× latency at a 60 % power cap — Fig. 14b/15).
//!
//! # Examples
//!
//! ```
//! use hbm_units::{Duration, Power};
//! use hbm_workload::{generate, TraceConfig, TraceShape};
//!
//! let config = TraceConfig {
//!     shape: TraceShape::FacebookBaidu,
//!     seed: 7,
//!     slot: Duration::from_minutes(1.0),
//!     len: 24 * 60,
//!     mean: Power::from_kilowatts(5.4),
//!     peak: Power::from_kilowatts(7.2),
//! };
//! let trace = generate(&config);
//! assert_eq!(trace.len(), 24 * 60);
//! assert!((trace.mean().as_kilowatts() - 5.4).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod io;
pub mod latency;
pub mod queue;
mod trace;

pub use io::ParseTraceError;
pub use trace::{generate, PowerTrace, TraceConfig, TraceShape};

/// Crate-internal percentile (linear interpolation between closest ranks).
pub(crate) fn stats_percentile(samples: &[f64], p: f64) -> f64 {
    debug_assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}
