//! Tail-latency model for power-capped interactive services.
//!
//! During a thermal emergency every server must cap its power to 60 % of
//! capacity (120 W of 200 W). The paper measures on a CloudSuite prototype
//! (Appendix A, Figs. 14b and 15) that such a cap roughly **quadruples** the
//! 95th-percentile response time of a Web Service workload at 600 req/s.
//!
//! We model the service as a throttle-scaled queueing system:
//!
//! * CPU throughput scales with power above the idle floor:
//!   `c(p) = (p − p_idle) / (1 − p_idle)` for normalized power `p`;
//! * the 95th-percentile latency follows
//!   `t95(p, λ) = t_base + t_queue / (1 − ρ)` with utilization `ρ = λ / c(p)`,
//!   saturating at a timeout ceiling once the system is overloaded.
//!
//! Parameters for the two CloudSuite applications are calibrated so that the
//! paper's anchor points hold (≈100 ms at full power and rated load, ≈400 ms
//! at a 60 % cap for Web Service).

use serde::{Deserialize, Serialize};

/// Tail-latency model of one interactive application.
///
/// All powers and loads are normalized: `power_frac` is the per-server power
/// cap relative to peak (1.0 = uncapped), `load_frac` is the offered load
/// relative to the capacity of an uncapped server.
///
/// # Examples
///
/// ```
/// use hbm_workload::latency::LatencyModel;
///
/// let m = LatencyModel::web_service();
/// let normal = m.t95_millis(1.0, m.rated_load());
/// let capped = m.t95_millis(0.6, m.rated_load());
/// assert!(capped / normal > 3.0 && capped / normal < 5.0); // ≈4× (Fig. 14b)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed (network + minimum service) latency in milliseconds.
    base_ms: f64,
    /// Queueing coefficient in milliseconds.
    queue_ms: f64,
    /// Idle power fraction below which the server does no useful work.
    idle_power_frac: f64,
    /// Latency ceiling (timeout behaviour) in milliseconds.
    ceiling_ms: f64,
    /// Rated (default) offered load fraction.
    rated_load: f64,
    /// SLA target in milliseconds (100 ms in the paper's Fig. 15).
    sla_ms: f64,
}

impl LatencyModel {
    /// CloudSuite **Web Service** calibration (Fig. 14b / Fig. 15a).
    ///
    /// Anchors: ≈100 ms t95 at full power and rated load; ≈400 ms at a 60 %
    /// power cap.
    pub fn web_service() -> Self {
        LatencyModel {
            base_ms: 60.0,
            queue_ms: 24.0,
            idle_power_frac: 0.30,
            ceiling_ms: 1000.0,
            rated_load: 0.40,
            sla_ms: 100.0,
        }
    }

    /// CloudSuite **Web Search** calibration (Fig. 15b): heavier per-request
    /// work, so it degrades faster as power shrinks.
    pub fn web_search() -> Self {
        LatencyModel {
            base_ms: 45.0,
            queue_ms: 27.5,
            idle_power_frac: 0.35,
            ceiling_ms: 1500.0,
            rated_load: 0.45,
            sla_ms: 100.0,
        }
    }

    /// The rated (calibration) load fraction.
    pub fn rated_load(&self) -> f64 {
        self.rated_load
    }

    /// The SLA target in milliseconds.
    pub fn sla_ms(&self) -> f64 {
        self.sla_ms
    }

    /// Fixed (network + minimum service) latency, milliseconds.
    pub fn base_ms(&self) -> f64 {
        self.base_ms
    }

    /// Queueing coefficient, milliseconds. Equals `ln(20)` times the mean
    /// service time at full power, so the analytic `t95` is exactly the
    /// M/M/1 95th-percentile sojourn plus `base_ms` (validated in
    /// [`crate::queue`]).
    pub fn queue_ms(&self) -> f64 {
        self.queue_ms
    }

    /// Latency ceiling (timeout behaviour), milliseconds.
    pub fn ceiling_ms(&self) -> f64 {
        self.ceiling_ms
    }

    /// Normalized service capacity at power fraction `p` (0 at the idle
    /// floor, 1 at full power).
    pub fn capacity_at(&self, power_frac: f64) -> f64 {
        ((power_frac - self.idle_power_frac) / (1.0 - self.idle_power_frac)).clamp(0.0, 1.0)
    }

    /// 95th-percentile response time in milliseconds at the given power cap
    /// and offered load.
    ///
    /// # Panics
    ///
    /// Panics if `power_frac` is outside `[0, 1]` or `load_frac` is negative.
    pub fn t95_millis(&self, power_frac: f64, load_frac: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&power_frac),
            "power fraction must be in [0, 1]"
        );
        assert!(load_frac >= 0.0, "load fraction must be non-negative");
        let capacity = self.capacity_at(power_frac);
        if capacity <= 0.0 {
            return self.ceiling_ms;
        }
        let rho = load_frac / capacity;
        if rho >= 1.0 {
            return self.ceiling_ms;
        }
        (self.base_ms + self.queue_ms / (1.0 - rho)).min(self.ceiling_ms)
    }

    /// t95 normalized to the SLA target (the y-axis of Fig. 15).
    pub fn t95_normalized_to_sla(&self, power_frac: f64, load_frac: f64) -> f64 {
        self.t95_millis(power_frac, load_frac) / self.sla_ms
    }

    /// Degradation factor relative to uncapped operation at the same load
    /// (the y-axis of Figs. 11d and 13b).
    pub fn degradation(&self, power_frac: f64, load_frac: f64) -> f64 {
        self.t95_millis(power_frac, load_frac) / self.t95_millis(1.0, load_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_service_anchor_points() {
        let m = LatencyModel::web_service();
        let full = m.t95_millis(1.0, m.rated_load());
        assert!((full - 100.0).abs() < 5.0, "full-power t95 {full} ≉ 100 ms");
        let capped = m.t95_millis(0.6, m.rated_load());
        assert!(
            (350.0..500.0).contains(&capped),
            "capped t95 {capped} not ≈400 ms"
        );
    }

    #[test]
    fn monotonic_in_power() {
        for m in [LatencyModel::web_service(), LatencyModel::web_search()] {
            let load = m.rated_load();
            let mut prev = f64::INFINITY;
            for i in 0..=10 {
                let p = 0.3 + 0.07 * i as f64;
                let t = m.t95_millis(p.min(1.0), load);
                assert!(t <= prev + 1e-9, "latency must not rise with more power");
                prev = t;
            }
        }
    }

    #[test]
    fn monotonic_in_load() {
        let m = LatencyModel::web_search();
        let mut prev = 0.0;
        for i in 0..=8 {
            let t = m.t95_millis(0.8, 0.05 + 0.05 * i as f64);
            assert!(t >= prev, "latency must not fall with more load");
            prev = t;
        }
    }

    #[test]
    fn overload_hits_ceiling() {
        let m = LatencyModel::web_service();
        assert_eq!(m.t95_millis(0.3, 0.4), 1000.0); // capacity 0 at idle floor
        assert_eq!(m.t95_millis(0.5, 0.9), 1000.0); // rho >= 1
    }

    #[test]
    fn degradation_is_one_when_uncapped() {
        let m = LatencyModel::web_service();
        assert!((m.degradation(1.0, 0.3) - 1.0).abs() < 1e-12);
        assert!(m.degradation(0.6, m.rated_load()) > 1.0);
    }

    #[test]
    fn search_degrades_faster_than_service() {
        let ws = LatencyModel::web_service();
        let se = LatencyModel::web_search();
        assert!(
            se.degradation(0.6, se.rated_load()) > ws.degradation(0.6, ws.rated_load()) * 0.9,
            "web search should degrade at least comparably"
        );
    }

    #[test]
    fn normalized_to_sla_at_full_power_near_one() {
        for m in [LatencyModel::web_service(), LatencyModel::web_search()] {
            let v = m.t95_normalized_to_sla(1.0, m.rated_load());
            assert!((0.7..=1.2).contains(&v), "normalized t95 {v} should be ≈1");
        }
    }

    #[test]
    #[should_panic(expected = "power fraction")]
    fn rejects_out_of_range_power() {
        let _ = LatencyModel::web_service().t95_millis(1.2, 0.4);
    }
}
