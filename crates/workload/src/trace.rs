//! Synthetic tenant power-trace generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use hbm_units::{Duration, Power};

/// Shape family of a synthetic power trace.
///
/// Both shapes are stand-ins for the paper's proprietary traces; what matters
/// for the attack study is the *statistical character* — how often and how
/// long the aggregate load dwells near the capacity, which is when thermal
/// attacks are worthwhile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceShape {
    /// Interactive web traffic (Facebook/Baidu-like): pronounced diurnal
    /// swing, mild weekend dip, moderate noise. Used for the default
    /// evaluation (Fig. 6b).
    FacebookBaidu,
    /// Batch-heavy cluster profile (Google-like): flatter baseline with
    /// irregular, bursty excursions. Used for the alternate-trace study
    /// (Fig. 13).
    Google,
}

impl TraceShape {
    /// All shape families, for sweeps.
    pub const ALL: [TraceShape; 2] = [TraceShape::FacebookBaidu, TraceShape::Google];
}

impl std::fmt::Display for TraceShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceShape::FacebookBaidu => f.write_str("facebook-baidu"),
            TraceShape::Google => f.write_str("google"),
        }
    }
}

/// Configuration of a synthetic power trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Shape family.
    pub shape: TraceShape,
    /// RNG seed; identical configs yield identical traces.
    pub seed: u64,
    /// Length of one slot.
    pub slot: Duration,
    /// Number of slots to generate.
    pub len: usize,
    /// Target mean power after scaling.
    pub mean: Power,
    /// Target peak power after scaling (the paper pins the peak at capacity).
    pub peak: Power,
}

impl TraceConfig {
    /// One year of 1-minute slots for the benign tenants of the paper's 8 kW
    /// colocation: three tenants × 2.4 kW subscribed, scaled so the *total*
    /// (with the attacker's 0.8 kW subscription near-fully used) averages
    /// 75 % of 8 kW.
    pub fn paper_default_year(seed: u64) -> Self {
        TraceConfig {
            shape: TraceShape::FacebookBaidu,
            seed,
            slot: Duration::from_minutes(1.0),
            len: 365 * 24 * 60,
            // Benign mean so that benign + attacker draw ≈ 6 kW (75 % of
            // the 8 kW capacity, the paper's average utilization).
            mean: Power::from_kilowatts(5.7),
            peak: Power::from_kilowatts(7.2),
        }
    }

    /// Same horizon and scaling, but the alternate Google-like shape
    /// (Section VI-F).
    pub fn paper_alternate_year(seed: u64) -> Self {
        TraceConfig {
            shape: TraceShape::Google,
            ..TraceConfig::paper_default_year(seed)
        }
    }

    /// Returns a copy with a different mean (utilization sweeps, Fig. 12d).
    pub fn with_mean(mut self, mean: Power) -> Self {
        self.mean = mean;
        self
    }

    /// Returns a copy with a different length.
    pub fn with_len(mut self, len: usize) -> Self {
        self.len = len;
        self
    }
}

/// A slotted power trace.
///
/// Stores one aggregate power sample per slot. Indexing past the end wraps
/// around, so shorter generated traces can drive longer simulations (and the
/// year-long experiments can be smoke-tested with day-long traces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    slot: Duration,
    samples: Vec<Power>,
}

impl PowerTrace {
    /// Creates a trace from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `slot` is non-positive.
    pub fn new(slot: Duration, samples: Vec<Power>) -> Self {
        assert!(!samples.is_empty(), "power trace must not be empty");
        assert!(slot > Duration::ZERO, "slot duration must be positive");
        PowerTrace { slot, samples }
    }

    /// Length of one slot.
    pub fn slot(&self) -> Duration {
        self.slot
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace has no samples (never true for constructed traces).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Power during slot `k`, wrapping past the end.
    pub fn get(&self, k: usize) -> Power {
        self.samples[k % self.samples.len()]
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Power> {
        self.samples.iter()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[Power] {
        &self.samples
    }

    /// Mean power over the trace.
    pub fn mean(&self) -> Power {
        self.samples.iter().copied().sum::<Power>() / self.samples.len() as f64
    }

    /// Maximum power over the trace.
    pub fn peak(&self) -> Power {
        self.samples.iter().copied().fold(Power::ZERO, Power::max)
    }

    /// Minimum power over the trace.
    pub fn floor(&self) -> Power {
        self.samples
            .iter()
            .copied()
            .fold(Power::from_kilowatts(f64::INFINITY), Power::min)
    }

    /// Mean utilization relative to `capacity`.
    pub fn mean_utilization(&self, capacity: Power) -> f64 {
        self.mean() / capacity
    }

    /// Returns a copy scaled by a constant factor.
    pub fn scaled(&self, factor: f64) -> PowerTrace {
        PowerTrace {
            slot: self.slot,
            samples: self.samples.iter().map(|&p| p * factor).collect(),
        }
    }

    /// Rescales the trace affinely so its mean and peak match the targets,
    /// clamping at zero (the paper scales traces to 75 % mean utilization
    /// while "maintaining the peak power at 8 kW").
    pub fn rescale(&self, mean: Power, peak: Power) -> PowerTrace {
        let m = self.mean().as_watts();
        let hi = self.peak().as_watts();
        let samples = if (hi - m).abs() < f64::EPSILON {
            // Degenerate flat trace: just set it to the mean target.
            vec![mean; self.samples.len()]
        } else {
            let b = (peak.as_watts() - mean.as_watts()) / (hi - m);
            let a = mean.as_watts() - b * m;
            self.samples
                .iter()
                .map(|p| Power::from_watts((a + b * p.as_watts()).max(0.0)))
                .collect()
        };
        PowerTrace {
            slot: self.slot,
            samples,
        }
    }

    /// Fraction of slots with power at or above `threshold`.
    pub fn fraction_at_or_above(&self, threshold: Power) -> f64 {
        let n = self.samples.iter().filter(|&&p| p >= threshold).count();
        n as f64 / self.samples.len() as f64
    }
}

impl<'a> IntoIterator for &'a PowerTrace {
    type Item = &'a Power;
    type IntoIter = std::slice::Iter<'a, Power>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Generates a synthetic power trace for the given configuration.
///
/// The raw shape is built from (a) a diurnal profile, (b) a weekly factor,
/// (c) AR(1) noise, and (d) exponentially decaying bursts, then affinely
/// rescaled to the requested mean and peak.
///
/// # Examples
///
/// ```
/// use hbm_workload::{generate, TraceConfig};
///
/// let cfg = TraceConfig::paper_default_year(1).with_len(1440);
/// let t1 = generate(&cfg);
/// let t2 = generate(&cfg);
/// assert_eq!(t1, t2); // fully reproducible
/// ```
///
/// # Panics
///
/// Panics if `config.len` is zero or `config.slot` is non-positive.
pub fn generate(config: &TraceConfig) -> PowerTrace {
    assert!(config.len > 0, "trace length must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed ^ shape_salt(config.shape));
    let params = ShapeParams::for_shape(config.shape);

    let slot_hours = config.slot.as_hours();
    let mut raw = Vec::with_capacity(config.len);
    let mut ar = 0.0_f64;
    let mut burst = 0.0_f64;
    for k in 0..config.len {
        let hours = k as f64 * slot_hours;
        let day_phase = (hours / 24.0).fract();
        let weekday = ((hours / 24.0).floor() as u64) % 7;

        let diurnal = params.diurnal(day_phase);
        let weekly = if weekday >= 5 {
            params.weekend_factor
        } else {
            1.0
        };

        ar = params.ar_coeff * ar + params.ar_sigma * rng.random::<f64>().mul_add(2.0, -1.0);
        if rng.random::<f64>() < params.burst_rate_per_slot * slot_hours * 60.0 {
            burst += params.burst_height * (0.5 + rng.random::<f64>());
        }
        burst *= params.burst_decay;

        let v = (params.base + params.amplitude * diurnal) * weekly + ar + burst;
        raw.push(Power::from_watts(v.max(0.0)));
    }

    PowerTrace::new(config.slot, raw).rescale(config.mean, config.peak)
}

fn shape_salt(shape: TraceShape) -> u64 {
    match shape {
        TraceShape::FacebookBaidu => 0x6662,
        TraceShape::Google => 0x676f6f,
    }
}

/// Internal knobs for each shape family, in arbitrary pre-scaling units.
struct ShapeParams {
    base: f64,
    amplitude: f64,
    weekend_factor: f64,
    ar_coeff: f64,
    ar_sigma: f64,
    burst_rate_per_slot: f64,
    burst_height: f64,
    burst_decay: f64,
    /// Diurnal harmonics: (harmonic, weight, phase).
    harmonics: &'static [(f64, f64, f64)],
    /// Soft-saturation gain: larger values flatten the daily curve into the
    /// load plateaus characteristic of interactive production traffic
    /// (the paper's Fig. 6b hovers near capacity through the working day).
    plateau_gain: f64,
}

impl ShapeParams {
    fn for_shape(shape: TraceShape) -> Self {
        match shape {
            TraceShape::FacebookBaidu => ShapeParams {
                base: 100.0,
                amplitude: 55.0,
                weekend_factor: 0.93,
                ar_coeff: 0.97,
                ar_sigma: 0.7,
                burst_rate_per_slot: 0.0006,
                burst_height: 4.0,
                burst_decay: 0.93,
                // Single dominant daily cycle peaking early afternoon, with
                // a shoulder.
                harmonics: &[(1.0, 1.0, -1.83), (2.0, 0.25, 0.4)],
                plateau_gain: 2.2,
            },
            TraceShape::Google => ShapeParams {
                base: 120.0,
                amplitude: 22.0,
                weekend_factor: 0.97,
                ar_coeff: 0.90,
                ar_sigma: 3.2,
                burst_rate_per_slot: 0.0035,
                burst_height: 22.0,
                burst_decay: 0.965,
                // Weak daily cycle; load dominated by batch bursts.
                harmonics: &[(1.0, 1.0, 0.2), (3.0, 0.35, 1.3)],
                plateau_gain: 0.8,
            },
        }
    }

    /// Diurnal profile in [-1, 1] at `phase` ∈ [0, 1) of the day.
    fn diurnal(&self, phase: f64) -> f64 {
        let two_pi = std::f64::consts::TAU;
        let total_weight: f64 = self.harmonics.iter().map(|h| h.1).sum();
        let raw = self
            .harmonics
            .iter()
            .map(|&(harm, w, ph)| w * (two_pi * harm * phase + ph).sin())
            .sum::<f64>()
            / total_weight;
        // Soft saturation flattens the peaks into plateaus.
        (self.plateau_gain * raw).tanh() / self.plateau_gain.tanh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_config(shape: TraceShape, seed: u64) -> TraceConfig {
        TraceConfig {
            shape,
            seed,
            slot: Duration::from_minutes(1.0),
            len: 7 * 1440,
            mean: Power::from_kilowatts(5.2),
            peak: Power::from_kilowatts(7.2),
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = day_config(TraceShape::FacebookBaidu, 42);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = TraceConfig { seed: 43, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn shapes_differ() {
        let a = generate(&day_config(TraceShape::FacebookBaidu, 42));
        let b = generate(&day_config(TraceShape::Google, 42));
        assert_ne!(a, b);
    }

    #[test]
    fn scaling_hits_mean_and_peak() {
        for shape in TraceShape::ALL {
            let cfg = day_config(shape, 11);
            let t = generate(&cfg);
            assert!(
                (t.mean().as_kilowatts() - 5.2).abs() < 0.15,
                "{shape}: mean {} off target",
                t.mean()
            );
            assert!(
                (t.peak().as_kilowatts() - 7.2).abs() < 0.05,
                "{shape}: peak {} off target",
                t.peak()
            );
        }
    }

    #[test]
    fn no_negative_power() {
        for shape in TraceShape::ALL {
            let t = generate(&day_config(shape, 3));
            assert!(t.iter().all(|&p| p >= Power::ZERO));
        }
    }

    #[test]
    fn facebook_shape_has_strong_diurnal_swing() {
        let t = generate(&day_config(TraceShape::FacebookBaidu, 5));
        // Average by hour-of-day over the week; peak-hour vs trough-hour
        // spread should be substantial for interactive traffic.
        let mut by_hour = [0.0_f64; 24];
        for (k, p) in t.iter().enumerate() {
            by_hour[(k / 60) % 24] += p.as_kilowatts();
        }
        let hi = by_hour.iter().cloned().fold(f64::MIN, f64::max);
        let lo = by_hour.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (hi - lo) / hi > 0.25,
            "diurnal swing too weak: hi={hi} lo={lo}"
        );
    }

    #[test]
    fn google_shape_is_flatter_than_facebook() {
        let fb = generate(&day_config(TraceShape::FacebookBaidu, 5));
        let gg = generate(&day_config(TraceShape::Google, 5));
        let swing = |t: &PowerTrace| {
            let mut by_hour = [0.0_f64; 24];
            for (k, p) in t.iter().enumerate() {
                by_hour[(k / 60) % 24] += p.as_kilowatts();
            }
            let hi = by_hour.iter().cloned().fold(f64::MIN, f64::max);
            let lo = by_hour.iter().cloned().fold(f64::MAX, f64::min);
            (hi - lo) / hi
        };
        assert!(
            swing(&gg) < swing(&fb),
            "google {} should be flatter than facebook {}",
            swing(&gg),
            swing(&fb)
        );
    }

    #[test]
    fn wrapping_index() {
        let t = PowerTrace::new(
            Duration::from_minutes(1.0),
            vec![Power::from_watts(1.0), Power::from_watts(2.0)],
        );
        assert_eq!(t.get(0), t.get(2));
        assert_eq!(t.get(1), t.get(31));
    }

    #[test]
    fn fraction_at_or_above() {
        let t = PowerTrace::new(
            Duration::from_minutes(1.0),
            vec![
                Power::from_kilowatts(1.0),
                Power::from_kilowatts(2.0),
                Power::from_kilowatts(3.0),
                Power::from_kilowatts(4.0),
            ],
        );
        assert_eq!(t.fraction_at_or_above(Power::from_kilowatts(3.0)), 0.5);
        assert_eq!(t.fraction_at_or_above(Power::from_kilowatts(5.0)), 0.0);
        assert_eq!(t.fraction_at_or_above(Power::ZERO), 1.0);
    }

    #[test]
    fn rescale_flat_trace() {
        let t = PowerTrace::new(
            Duration::from_minutes(1.0),
            vec![Power::from_kilowatts(1.0); 10],
        );
        let r = t.rescale(Power::from_kilowatts(6.0), Power::from_kilowatts(8.0));
        assert_eq!(r.mean(), Power::from_kilowatts(6.0));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = PowerTrace::new(Duration::from_minutes(1.0), Vec::new());
    }
}
