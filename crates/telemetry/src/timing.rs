//! Lightweight timing spans for the simulator's hot kernels.
//!
//! A *span* aggregates the wall-clock cost of one named code region — the
//! CFD substep loop, the heat-matrix convolution, a Q-learning update —
//! across every call in the process. Spans are disabled by default:
//! [`start`] returns `None` without reading the clock, and [`record_span`]
//! with a `None` start is a single branch, so instrumented kernels pay
//! nothing until [`set_timings_enabled`]`(true)`.
//!
//! Aggregates are process-wide (one registry behind a mutex, locked only
//! when a span actually records), so parallel experiment runs fold into
//! one report.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonObject;

static ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Debug, Clone, Copy, Default)]
struct Agg {
    calls: u64,
    units: u64,
    total_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Agg>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<&'static str, Agg>> {
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Turns span recording on or off process-wide.
pub fn set_timings_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
#[inline]
pub fn timings_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a span: the current instant when timing is enabled, else `None`.
#[inline]
pub fn start() -> Option<Instant> {
    if timings_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Closes a span opened by [`start`], attributing the elapsed time to
/// `name`. A `None` start (timing disabled) is a no-op.
#[inline]
pub fn record_span(name: &'static str, started: Option<Instant>) {
    record_span_units(name, started, 1);
}

/// Like [`record_span`], but also accumulates `units` inner iterations
/// (e.g. CFD substeps per `step` call), so the report can show per-unit
/// cost for kernels that batch their inner loop.
#[inline]
pub fn record_span_units(name: &'static str, started: Option<Instant>, units: u64) {
    let Some(started) = started else { return };
    let elapsed = started.elapsed().as_nanos();
    let mut map = registry().lock().expect("timing registry poisoned");
    let agg = map.entry(name).or_default();
    agg.calls += 1;
    agg.units += units;
    agg.total_ns += elapsed;
    agg.min_ns = if agg.calls == 1 {
        elapsed
    } else {
        agg.min_ns.min(elapsed)
    };
    agg.max_ns = agg.max_ns.max(elapsed);
}

/// Pre-registers `name` with zero samples, so reports name every
/// instrumented kernel even when a given workload never reached it.
pub fn declare_span(name: &'static str) {
    registry()
        .lock()
        .expect("timing registry poisoned")
        .entry(name)
        .or_default();
}

/// Clears all aggregates (the enabled flag is left as is).
pub fn reset_timings() {
    registry().lock().expect("timing registry poisoned").clear();
}

/// Aggregated statistics of one span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name (e.g. `cfd.substep`).
    pub name: &'static str,
    /// Number of recorded calls.
    pub calls: u64,
    /// Total inner iterations across calls (= `calls` unless the producer
    /// passed an explicit unit count).
    pub units: u64,
    /// Summed wall-clock nanoseconds.
    pub total_ns: u128,
    /// Cheapest call, nanoseconds.
    pub min_ns: u128,
    /// Costliest call, nanoseconds.
    pub max_ns: u128,
}

impl SpanStats {
    /// Mean nanoseconds per call (0 when never called).
    pub fn mean_ns(&self) -> u128 {
        if self.calls == 0 {
            0
        } else {
            self.total_ns / self.calls as u128
        }
    }

    /// Mean nanoseconds per inner unit (0 when never called).
    pub fn per_unit_ns(&self) -> u128 {
        if self.units == 0 {
            0
        } else {
            self.total_ns / self.units as u128
        }
    }
}

/// Snapshot of every span aggregate, sorted by name.
pub fn timing_report() -> Vec<SpanStats> {
    let map = registry().lock().expect("timing registry poisoned");
    let mut spans: Vec<SpanStats> = map
        .iter()
        .map(|(&name, a)| SpanStats {
            name,
            calls: a.calls,
            units: a.units,
            total_ns: a.total_ns,
            min_ns: a.min_ns,
            max_ns: a.max_ns,
        })
        .collect();
    spans.sort_by_key(|s| s.name);
    spans
}

/// Renders the report as an aligned console table.
pub fn render_timing_report() -> String {
    let spans = timing_report();
    let mut out = String::from(
        "span                        calls      total ms    mean us     units   per-unit us\n",
    );
    for s in &spans {
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>13.3} {:>10.2} {:>9} {:>13.3}",
            s.name,
            s.calls,
            s.total_ns as f64 / 1e6,
            s.mean_ns() as f64 / 1e3,
            s.units,
            s.per_unit_ns() as f64 / 1e3,
        );
    }
    out
}

/// Serializes the report as a JSON array in the bench-export shape
/// (`[{name, median_ns, mean_ns, min_ns, samples}, …]`, names prefixed
/// `span/`), so span timings can be folded into `BENCH_thermal.json`.
/// Spans with zero calls are omitted (they carry no measurement).
pub fn timing_report_bench_json() -> String {
    let mut out = String::from("[");
    let mut first = true;
    for s in timing_report() {
        if s.calls == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let mut o = JsonObject::new();
        // Per-call mean stands in for the median: spans aggregate online
        // and keep no per-call samples.
        o.str("name", &format!("span/{}", s.name))
            .u64("median_ns", s.mean_ns() as u64)
            .u64("mean_ns", s.mean_ns() as u64)
            .u64("min_ns", s.min_ns as u64)
            .u64("samples", s.calls);
        out.push_str(&o.finish());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span state is process-global and shared across #[test] threads, so
    // each test uses its own span names and avoids asserting on totals.

    #[test]
    fn disabled_spans_record_nothing() {
        set_timings_enabled(false);
        let t = start();
        assert!(t.is_none());
        record_span("test.disabled", t);
        assert!(timing_report()
            .iter()
            .all(|s| s.name != "test.disabled" || s.calls == 0));
    }

    #[test]
    fn enabled_spans_aggregate() {
        set_timings_enabled(true);
        for _ in 0..3 {
            let t = start();
            std::hint::black_box(1 + 1);
            record_span_units("test.enabled", t, 10);
        }
        set_timings_enabled(false);
        let spans = timing_report();
        let s = spans.iter().find(|s| s.name == "test.enabled").unwrap();
        assert_eq!(s.calls, 3);
        assert_eq!(s.units, 30);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
    }

    #[test]
    fn declared_spans_appear_with_zero_calls() {
        declare_span("test.declared_only");
        let spans = timing_report();
        let s = spans
            .iter()
            .find(|s| s.name == "test.declared_only")
            .unwrap();
        assert_eq!(s.calls, 0);
        assert!(render_timing_report().contains("test.declared_only"));
        assert!(!timing_report_bench_json().contains("test.declared_only"));
    }

    #[test]
    fn bench_json_is_parseable_per_entry() {
        set_timings_enabled(true);
        let t = start();
        record_span("test.json", t);
        set_timings_enabled(false);
        let json = timing_report_bench_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"span/test.json\""));
    }
}
