//! Observability layer of the *Heat Behind the Meter* workspace: per-step
//! channel recorders, run manifests, and kernel timing spans.
//!
//! The paper's evaluation lives on traceable per-step signals — tenant
//! power, inlet temperature, battery state of charge, side-channel
//! estimates, defense residuals. This crate gives every producer a uniform
//! way to surface them without perturbing the simulation:
//!
//! * **[`Recorder`]** — a sink for per-step [`Sample`]s. Producers (most
//!   importantly `hbm_core::Simulation`) hold an `Option<Box<dyn
//!   Recorder>>`; detached, the hook is one `None` check. [`JsonlRecorder`]
//!   streams one flat JSON object per step, [`MemoryRecorder`] keeps them
//!   for programmatic inspection.
//! * **[`RunManifest`]** — seed, configuration hash, parameters, crate
//!   versions, git revision, and wall clock of a run, written as
//!   `manifest.json` beside the CSVs it describes. Deterministic fields
//!   are byte-stable across reruns; see
//!   [`RunManifest::VOLATILE_FIELDS`].
//! * **[`timing`]** — process-wide spans around hot kernels (the CFD
//!   substep loop, the heat-matrix convolution, Q-learning updates).
//!   Disabled they cost one relaxed atomic load; enabled they aggregate
//!   into [`timing::timing_report`].
//!
//! JSON encoding/decoding is self-contained ([`json`]): the offline build
//! has no `serde_json`, and telemetry needs only flat objects with
//! shortest-round-trip floats.
//!
//! # Examples
//!
//! ```
//! use hbm_telemetry::{ChannelValue, MemoryRecorder, Recorder, Sample};
//!
//! let mut recorder = MemoryRecorder::new();
//! for step in 0..3u64 {
//!     let channels = [
//!         ("inlet_c", ChannelValue::F64(27.0 + step as f64 * 0.5)),
//!         ("capping", ChannelValue::Bool(false)),
//!     ];
//!     recorder.record(&Sample { step, channels: &channels });
//! }
//! assert_eq!(recorder.samples().len(), 3);
//! assert_eq!(
//!     recorder.samples()[2].channel("inlet_c"),
//!     Some(&ChannelValue::F64(28.0))
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod manifest;
mod record;
pub mod timing;

pub use json::JsonValue;
pub use manifest::{
    deterministic_manifest_fields, fnv1a64, git_describe, RunManifest, MANIFEST_SCHEMA,
};
pub use record::{
    parse_jsonl_line, sample_to_jsonl, ChannelValue, JsonlRecorder, MemoryRecorder, NullRecorder,
    OwnedSample, Recorder, Sample,
};

/// The crate version, for run manifests.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
