//! Per-step channel recording: the [`Recorder`] trait and its sinks.
//!
//! A *channel* is one named per-step signal (tenant power, inlet
//! temperature, battery state of charge, …). Producers hold an
//! `Option<Box<dyn Recorder>>`; with no recorder attached the hook is a
//! single `None` check, so simulation output and timing are unaffected —
//! recording observes values that are computed anyway and never touches
//! RNG state.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::json::{parse_flat_object, JsonObject, JsonValue};

/// One recorded channel value.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelValue {
    /// A continuous signal (kW, °C, state of charge, …).
    F64(f64),
    /// A counter or index.
    U64(u64),
    /// A flag (capping, outage, alarm, …).
    Bool(bool),
    /// A discrete label (e.g. the attacker's action).
    Str(&'static str),
}

impl ChannelValue {
    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ChannelValue::F64(v) => Some(*v),
            ChannelValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

impl From<f64> for ChannelValue {
    fn from(v: f64) -> Self {
        ChannelValue::F64(v)
    }
}

impl From<u64> for ChannelValue {
    fn from(v: u64) -> Self {
        ChannelValue::U64(v)
    }
}

impl From<bool> for ChannelValue {
    fn from(v: bool) -> Self {
        ChannelValue::Bool(v)
    }
}

impl From<&'static str> for ChannelValue {
    fn from(v: &'static str) -> Self {
        ChannelValue::Str(v)
    }
}

/// One step's worth of channels, borrowed from the producer's stack.
#[derive(Debug, Clone, Copy)]
pub struct Sample<'a> {
    /// Producer-defined step index (the simulator's slot number).
    pub step: u64,
    /// Channel name → value pairs, in the producer's canonical order.
    pub channels: &'a [(&'static str, ChannelValue)],
}

/// A sink for per-step samples.
///
/// Implementations must preserve sample order; the harness gives every
/// concurrent run its own `Recorder` (and its own output file), so
/// implementations need not be thread-safe beyond `Send`.
pub trait Recorder: Send {
    /// Records one step.
    fn record(&mut self, sample: &Sample<'_>);

    /// Flushes buffered output (called at the end of a run).
    fn flush(&mut self) {}
}

/// A recorder that drops everything (for exercising the recording path
/// without output).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _sample: &Sample<'_>) {}
}

/// One owned recorded step, as stored by [`MemoryRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedSample {
    /// Producer-defined step index.
    pub step: u64,
    /// Channel name → value pairs.
    pub channels: Vec<(&'static str, ChannelValue)>,
}

impl OwnedSample {
    /// Looks up a channel by name.
    pub fn channel(&self, name: &str) -> Option<&ChannelValue> {
        self.channels
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

/// An in-memory sink, for tests and programmatic inspection.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    samples: Vec<OwnedSample>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// Everything recorded so far.
    pub fn samples(&self) -> &[OwnedSample] {
        &self.samples
    }

    /// Consumes the recorder and returns its samples.
    pub fn into_samples(self) -> Vec<OwnedSample> {
        self.samples
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, sample: &Sample<'_>) {
        self.samples.push(OwnedSample {
            step: sample.step,
            channels: sample.channels.to_vec(),
        });
    }
}

/// Encodes one sample as a single JSONL line (no trailing newline).
///
/// The `step` field always comes first; channels follow in producer order.
pub fn sample_to_jsonl(sample: &Sample<'_>) -> String {
    let mut o = JsonObject::new();
    o.u64("step", sample.step);
    for (name, value) in sample.channels {
        match value {
            ChannelValue::F64(v) => o.f64(name, *v),
            ChannelValue::U64(v) => o.u64(name, *v),
            ChannelValue::Bool(v) => o.bool(name, *v),
            ChannelValue::Str(v) => o.str(name, v),
        };
    }
    o.finish()
}

/// Decodes one JSONL line back into a step index and channel values.
///
/// Inverse of [`sample_to_jsonl`] up to value types: numbers come back as
/// [`JsonValue::Num`] whether they were recorded as `F64` or `U64`.
///
/// # Errors
///
/// Returns a message if the line is not a flat JSON object or lacks a
/// numeric `step` field.
pub fn parse_jsonl_line(line: &str) -> Result<(u64, Vec<(String, JsonValue)>), String> {
    let mut fields = parse_flat_object(line)?;
    if fields.first().map(|(n, _)| n.as_str()) != Some("step") {
        return Err("first field must be \"step\"".into());
    }
    let (_, step) = fields.remove(0);
    let step = step.as_f64().ok_or("\"step\" must be a number")? as u64;
    Ok((step, fields))
}

/// A buffered JSONL file sink: one flat JSON object per recorded step.
#[derive(Debug)]
pub struct JsonlRecorder {
    out: BufWriter<File>,
    line: String,
}

impl JsonlRecorder {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonlRecorder {
            out: BufWriter::new(File::create(path)?),
            line: String::new(),
        })
    }
}

impl Recorder for JsonlRecorder {
    fn record(&mut self, sample: &Sample<'_>) {
        self.line.clear();
        self.line.push_str(&sample_to_jsonl(sample));
        self.line.push('\n');
        let _ = self.out.write_all(self.line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_channels() -> Vec<(&'static str, ChannelValue)> {
        vec![
            ("benign_kw", ChannelValue::F64(5.321)),
            ("slot_count", ChannelValue::U64(17)),
            ("capping", ChannelValue::Bool(false)),
            ("action", ChannelValue::Str("attack")),
        ]
    }

    #[test]
    fn memory_recorder_stores_samples_in_order() {
        let mut rec = MemoryRecorder::new();
        for step in 0..5u64 {
            let channels = [("x", ChannelValue::F64(step as f64 * 0.5))];
            rec.record(&Sample {
                step,
                channels: &channels,
            });
        }
        assert_eq!(rec.samples().len(), 5);
        assert_eq!(rec.samples()[3].step, 3);
        assert_eq!(rec.samples()[3].channel("x"), Some(&ChannelValue::F64(1.5)));
    }

    #[test]
    fn jsonl_line_round_trips() {
        let channels = sample_channels();
        let line = sample_to_jsonl(&Sample {
            step: 42,
            channels: &channels,
        });
        let (step, fields) = parse_jsonl_line(&line).unwrap();
        assert_eq!(step, 42);
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0].0, "benign_kw");
        assert_eq!(fields[0].1.as_f64().unwrap().to_bits(), 5.321f64.to_bits());
        assert_eq!(fields[1].1.as_f64().unwrap(), 17.0);
        assert!(!fields[2].1.as_bool().unwrap());
        assert_eq!(fields[3].1.as_str().unwrap(), "attack");
    }

    #[test]
    fn jsonl_file_sink_writes_one_line_per_step() {
        let dir = std::env::temp_dir().join("hbm_telemetry_record_test");
        let path = dir.join("run.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut rec = JsonlRecorder::create(&path).unwrap();
            let channels = sample_channels();
            for step in 0..3u64 {
                rec.record(&Sample {
                    step,
                    channels: &channels,
                });
            }
            rec.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let (step, fields) = parse_jsonl_line(line).unwrap();
            assert_eq!(step, i as u64);
            assert_eq!(fields.len(), 4);
        }
    }

    #[test]
    fn parse_rejects_missing_step() {
        assert!(parse_jsonl_line("{\"x\":1.0}").is_err());
    }
}
