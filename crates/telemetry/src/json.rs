//! Minimal JSON encoding and flat-object decoding.
//!
//! The build environment has no `serde_json`, and the telemetry layer only
//! needs a small, deterministic subset of JSON: flat objects whose values
//! are numbers, booleans, and strings. Floats are encoded with Rust's
//! shortest-round-trip `Display`, so a decoded value is bit-identical to
//! the recorded one, and two runs that compute the same values byte-match.

use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`: shortest round-trip form, with the
/// non-finite values (which JSON cannot represent) encoded as `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = v.to_string(); // positional shortest-round-trip form
        out.push_str(&s);
        // `Display` prints integral floats without a dot ("3"); keep the
        // value unambiguously a float so decoders round-trip the type.
        if !s.contains('.') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// An incrementally built single-line JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, name: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        push_json_str(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name);
        push_json_str(&mut self.buf, v);
        self
    }

    /// Adds a float field.
    pub fn f64(&mut self, name: &str, v: f64) -> &mut Self {
        self.key(name);
        push_json_f64(&mut self.buf, v);
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-encoded JSON value verbatim (array or nested object).
    pub fn raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

/// One decoded value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A number (all JSON numbers decode as `f64`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// `null`.
    Null,
    /// An array of values (one nesting level; used by checkpoint schemas
    /// for Q-table rows and histogram counts).
    Arr(Vec<JsonValue>),
}

impl JsonValue {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Appends a JSON array of floats (shortest-round-trip form, like
/// [`push_json_f64`]) to `out`.
pub fn push_json_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_f64(out, v);
    }
    out.push(']');
}

/// Appends a JSON array of unsigned integers to `out`.
///
/// Values must stay below 2⁵³ to round-trip exactly through the decoder
/// (all JSON numbers decode as `f64`); counters bounded by simulated slots
/// are far inside that range. Encode full-range words (RNG state) as hex
/// strings instead.
pub fn push_json_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Decodes one flat JSON object (one JSONL line) into `(key, value)` pairs
/// in document order. Values may be scalars or arrays of scalars (the
/// checkpoint schema stores Q-table rows and histogram counts as arrays);
/// nested objects are not supported — the telemetry record and manifest
/// schemas are deliberately flat.
///
/// # Errors
///
/// Returns a message describing the first syntax problem.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing bytes after object".into());
        }
        return Ok(fields);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.value()?;
        fields.push((key, value));
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next().ok_or("unterminated string")? {
                b'"' => return Ok(out),
                b'\\' => match self.next().ok_or("unterminated escape")? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")? as char;
                            code = code * 16 + d.to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    e => return Err(format!("unsupported escape \\{}", e as char)),
                },
                b => {
                    // Re-assemble multi-byte UTF-8 (the input is a &str, so
                    // the bytes are guaranteed valid).
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek().ok_or("missing value")? {
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'[' => self.array(),
            _ => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.1, -3.75, 1.0 / 3.0, 6.02e23, 1e-300, 7.0, -0.0] {
            let mut s = String::new();
            push_json_f64(&mut s, v);
            let parsed = parse_flat_object(&format!("{{\"x\":{s}}}")).unwrap();
            assert_eq!(parsed[0].1.as_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let mut s = String::new();
        push_json_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        let mut s = String::new();
        push_json_f64(&mut s, -2e300);
        assert!(s.contains('e') || s.contains('.'), "got {s}");
    }

    #[test]
    fn non_finite_encodes_as_null() {
        let mut s = String::new();
        push_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn object_builder_and_parser_agree() {
        let mut o = JsonObject::new();
        o.str("name", "fig9 \"snapshot\"\n")
            .u64("slot", 42)
            .f64("kw", 7.25)
            .bool("capping", true);
        let line = o.finish();
        let fields = parse_flat_object(&line).unwrap();
        assert_eq!(fields[0].0, "name");
        assert_eq!(fields[0].1.as_str().unwrap(), "fig9 \"snapshot\"\n");
        assert_eq!(fields[1].1.as_f64().unwrap(), 42.0);
        assert_eq!(fields[2].1.as_f64().unwrap(), 7.25);
        assert!(fields[3].1.as_bool().unwrap());
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_flat_object("{}").unwrap().is_empty());
        assert!(JsonObject::new().finish() == "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_flat_object("{\"a\":1} trailing").is_err());
        assert!(parse_flat_object("[1,2]").is_err());
        assert!(parse_flat_object("{\"a\"}").is_err());
        assert!(parse_flat_object("{\"a\":[1,2}").is_err());
        assert!(parse_flat_object("{\"a\":[1,]}").is_err());
    }

    #[test]
    fn arrays_round_trip_bit_exactly() {
        let values = [0.1, -3.75, 1.0 / 3.0, 6.02e23, 7.0, -0.0];
        let mut arr = String::new();
        push_json_f64_array(&mut arr, &values);
        let mut o = JsonObject::new();
        o.raw("q", &arr).u64("slot", 3);
        let fields = parse_flat_object(&o.finish()).unwrap();
        let parsed = fields[0].1.as_array().unwrap();
        assert_eq!(parsed.len(), values.len());
        for (p, v) in parsed.iter().zip(values) {
            assert_eq!(p.as_f64().unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(fields[1].1.as_f64().unwrap(), 3.0);
    }

    #[test]
    fn u64_arrays_and_empties_parse() {
        let mut arr = String::new();
        push_json_u64_array(&mut arr, &[0, 1, 1 << 53]);
        assert_eq!(arr, "[0,1,9007199254740992]");
        let fields = parse_flat_object("{\"v\":[ ],\"w\":[true,null,\"s\"]}").unwrap();
        assert!(fields[0].1.as_array().unwrap().is_empty());
        let w = fields[1].1.as_array().unwrap();
        assert_eq!(w[0].as_bool(), Some(true));
        assert_eq!(w[1], JsonValue::Null);
        assert_eq!(w[2].as_str(), Some("s"));
    }
}
