//! Run manifests: the metadata that makes a result directory auditable.
//!
//! A [`RunManifest`] records what produced a batch of CSVs/JSONL traces:
//! the tool, the seed, a hash of the effective configuration, arbitrary
//! named parameters, crate versions, the git revision, and the wall clock.
//! It is written as a single flat JSON object (`manifest.json`) next to
//! the outputs it describes.
//!
//! Fields split into two groups: *deterministic* ones, which must be
//! byte-identical across reruns of the same configuration (whatever
//! `--jobs` is), and *volatile* ones ([`RunManifest::VOLATILE_FIELDS`]:
//! worker count and wall-clock timing), which legitimately differ.

use std::path::Path;
use std::process::Command;
use std::time::SystemTime;

use crate::json::{parse_flat_object, JsonObject, JsonValue};

/// Schema version of the manifest layout (bump on breaking changes).
pub const MANIFEST_SCHEMA: u64 = 1;

/// 64-bit FNV-1a over arbitrary bytes — the workspace's stable,
/// platform-independent configuration hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `git describe --always --dirty --tags` of the working tree, or
/// `"unknown"` when git (or a repository) is unavailable.
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Metadata of one run, serialized as `manifest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Producing tool (e.g. `experiments`).
    pub tool: String,
    /// Base seed of the run.
    pub seed: u64,
    /// FNV-1a hash of the effective configuration, hex.
    pub config_hash: String,
    /// Named run parameters, in insertion order (horizon, experiment ids,
    /// …). Keys must not collide with the built-in field names.
    pub params: Vec<(String, String)>,
    /// Workspace crates and their versions, in insertion order.
    pub crates: Vec<(String, String)>,
    /// Git revision of the working tree.
    pub git: String,
    /// Worker threads the run was launched with (volatile).
    pub jobs: u64,
    /// Unix timestamp of the run start, milliseconds (volatile).
    pub started_unix_ms: u64,
    /// Total run duration, milliseconds (volatile).
    pub wall_clock_ms: u64,
}

impl RunManifest {
    /// Field names that may differ between reruns of the same
    /// configuration; everything else must be byte-identical.
    pub const VOLATILE_FIELDS: &'static [&'static str] =
        &["jobs", "started_unix_ms", "wall_clock_ms"];

    /// Starts a manifest stamped with the current time and git revision.
    pub fn new(tool: impl Into<String>, seed: u64) -> Self {
        let started_unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        RunManifest {
            tool: tool.into(),
            seed,
            config_hash: String::new(),
            params: Vec::new(),
            crates: Vec::new(),
            git: git_describe(),
            jobs: 1,
            started_unix_ms,
            wall_clock_ms: 0,
        }
    }

    /// Sets the configuration hash from the configuration's canonical
    /// textual form.
    pub fn hash_config(&mut self, canonical: &str) -> &mut Self {
        self.config_hash = format!("{:016x}", fnv1a64(canonical.as_bytes()));
        self
    }

    /// Adds one named parameter.
    pub fn param(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// Adds one crate/version pair.
    pub fn crate_version(
        &mut self,
        name: impl Into<String>,
        version: impl Into<String>,
    ) -> &mut Self {
        self.crates.push((name.into(), version.into()));
        self
    }

    /// Serializes the manifest as one flat JSON object: deterministic
    /// fields first, the [`RunManifest::VOLATILE_FIELDS`] last.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("schema", MANIFEST_SCHEMA)
            .str("tool", &self.tool)
            .u64("seed", self.seed)
            .str("config_hash", &self.config_hash);
        for (k, v) in &self.params {
            o.str(k, v);
        }
        let crates = self
            .crates
            .iter()
            .map(|(n, v)| format!("{n} {v}"))
            .collect::<Vec<_>>()
            .join("; ");
        o.str("crate_versions", &crates).str("git", &self.git);
        o.u64("jobs", self.jobs)
            .u64("started_unix_ms", self.started_unix_ms)
            .u64("wall_clock_ms", self.wall_clock_ms);
        o.finish()
    }

    /// Writes `manifest.json` (the serialized form plus a trailing
    /// newline) into `dir`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

/// Parses a serialized manifest and returns only its deterministic fields
/// (everything except [`RunManifest::VOLATILE_FIELDS`]), for comparing
/// manifests across reruns.
///
/// # Errors
///
/// Returns a message if `json` is not a flat JSON object.
pub fn deterministic_manifest_fields(json: &str) -> Result<Vec<(String, JsonValue)>, String> {
    Ok(parse_flat_object(json.trim())?
        .into_iter()
        .filter(|(k, _)| !RunManifest::VOLATILE_FIELDS.contains(&k.as_str()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("experiments", 42);
        m.hash_config("fig9 --days 1")
            .param("experiments", "fig9")
            .param("days", "1")
            .crate_version("hbm-core", "0.1.0")
            .crate_version("hbm-telemetry", "0.1.0");
        m.jobs = 4;
        m.wall_clock_ms = 1234;
        m
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_round_trips_and_orders_fields() {
        let json = sample().to_json();
        let fields = parse_flat_object(&json).unwrap();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema",
                "tool",
                "seed",
                "config_hash",
                "experiments",
                "days",
                "crate_versions",
                "git",
                "jobs",
                "started_unix_ms",
                "wall_clock_ms"
            ]
        );
        assert_eq!(fields[2].1.as_f64().unwrap(), 42.0);
    }

    #[test]
    fn deterministic_fields_exclude_volatile_ones() {
        let mut a = sample();
        let mut b = sample();
        a.jobs = 1;
        b.jobs = 8;
        b.started_unix_ms = a.started_unix_ms + 5000;
        b.wall_clock_ms = 9;
        let da = deterministic_manifest_fields(&a.to_json()).unwrap();
        let db = deterministic_manifest_fields(&b.to_json()).unwrap();
        assert_eq!(da, db);
        assert!(da.iter().all(|(k, _)| k != "jobs"));
    }

    #[test]
    fn write_creates_directory_and_file() {
        let dir = std::env::temp_dir().join("hbm_telemetry_manifest_test/nested");
        let _ = std::fs::remove_dir_all(&dir);
        let path = sample().write_to_dir(&dir).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.ends_with('\n'));
        assert!(deterministic_manifest_fields(&text).is_ok());
    }
}
