//! Coordinated attacks across a fleet of edge colocations.
//!
//! The paper notes (Section III-C) that a one-shot attack "can also be
//! coordinated across multiple edge colocations for a wide-area service
//! interruption" — the scenario that makes the attack interesting to a
//! state-sponsored adversary: edge applications (assisted driving, AR) fail
//! over between nearby sites, so taking out *one* colocation degrades
//! service, but taking out most of a metro area's sites simultaneously
//! interrupts it.
//!
//! [`Fleet`] runs one [`Simulation`] per site in lock-step and tracks the
//! wide-area availability: how many sites are up each slot, and the longest
//! window in which the up-fraction was below a service threshold.

use hbm_units::{Duration, Power};

use crate::{AttackPolicy, ColoConfig, SimReport, Simulation};

/// Wide-area outcome of a fleet campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-site reports.
    pub sites: Vec<SimReport>,
    /// Number of slots in which at least one site was down.
    pub any_down_slots: u64,
    /// Number of slots in which the fraction of sites up was below the
    /// service threshold (the wide-area interruption).
    pub interruption_slots: u64,
    /// Longest contiguous interruption.
    pub longest_interruption: Duration,
    /// Total sites that experienced at least one outage.
    pub sites_hit: usize,
}

impl FleetReport {
    /// Whether a wide-area interruption occurred at all.
    pub fn wide_area_interrupted(&self) -> bool {
        self.interruption_slots > 0
    }
}

/// A fleet of identical edge colocations attacked in coordination.
///
/// Sites differ by seed (their workload traces and side channels are
/// independent) but share the configuration; the attacker runs one policy
/// instance per site.
///
/// # Examples
///
/// ```no_run
/// use hbm_battery::BatterySpec;
/// use hbm_core::{ColoConfig, Fleet, OneShotPolicy};
/// use hbm_units::Power;
///
/// let mut config = ColoConfig::paper_default();
/// config.battery = BatterySpec::one_shot();
/// config.attack_load = Power::from_kilowatts(3.0);
/// let mut fleet = Fleet::new(config, 5, 1, |_, _| {
///     Box::new(OneShotPolicy::new(Power::from_kilowatts(7.6)))
/// });
/// let report = fleet.run(3 * 1440, 0.5);
/// assert!(report.wide_area_interrupted());
/// ```
pub struct Fleet {
    sites: Vec<Simulation>,
}

impl Fleet {
    /// Builds a fleet of `count` sites. `make_policy(site, seed)` builds
    /// each site's attack policy.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the config is invalid.
    pub fn new(
        config: ColoConfig,
        count: usize,
        base_seed: u64,
        mut make_policy: impl FnMut(usize, u64) -> Box<dyn AttackPolicy>,
    ) -> Self {
        assert!(count > 0, "fleet needs at least one site");
        let sites = (0..count)
            .map(|i| {
                let seed = base_seed.wrapping_add(1 + i as u64 * 1299721);
                Simulation::new(config.clone(), make_policy(i, seed), seed)
            })
            .collect();
        Fleet { sites }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the fleet has no sites (never true for constructed fleets).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The per-site simulations.
    pub fn sites(&self) -> &[Simulation] {
        &self.sites
    }

    /// Runs all sites for `slots` slots in lock-step and reports wide-area
    /// availability. A slot counts as a *wide-area interruption* when the
    /// fraction of sites up drops below `required_up_fraction`.
    ///
    /// The sites advance through the batch engine ([`crate::run_sharded`]):
    /// structure-of-arrays lockstep stepping, sharded across the `hbm_par`
    /// thread budget, with trajectories bit-identical to stepping each site
    /// alone at any thread count. Each site's accumulated metrics are moved
    /// into the report (no per-site clone); the sites themselves keep their
    /// stepping state and continue with fresh metrics, as after
    /// [`Simulation::warmup`].
    ///
    /// # Panics
    ///
    /// Panics if `required_up_fraction` is outside `(0, 1]`.
    pub fn run(&mut self, slots: u64, required_up_fraction: f64) -> FleetReport {
        assert!(
            required_up_fraction > 0.0 && required_up_fraction <= 1.0,
            "up fraction must be in (0, 1]"
        );
        let n = self.sites.len();
        let slot_len = self.sites[0].config().slot;
        let run = crate::run_sharded(std::mem::take(&mut self.sites), slots);
        self.sites = run.sims;
        let mut any_down_slots = 0u64;
        let mut interruption_slots = 0u64;
        let mut longest = 0u64;
        let mut current = 0u64;
        for &down in &run.down_per_slot {
            if down > 0 {
                any_down_slots += 1;
            }
            let up_fraction = (n - down as usize) as f64 / n as f64;
            if up_fraction < required_up_fraction {
                interruption_slots += 1;
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        let sites_hit = run
            .reports
            .iter()
            .filter(|r| r.metrics.outage_events > 0)
            .count();
        FleetReport {
            sites: run.reports,
            any_down_slots,
            interruption_slots,
            longest_interruption: slot_len * longest as f64,
            sites_hit,
        }
    }
}

/// Convenience: the paper's coordinated one-shot scenario — every site's
/// attacker waits for its local high-load moment and fires; because the
/// sites share a (metro-wide) diurnal pattern, the outages cluster in time.
pub fn coordinated_one_shot(
    sites: usize,
    base_seed: u64,
    horizon_slots: u64,
    required_up_fraction: f64,
) -> FleetReport {
    use crate::OneShotPolicy;
    use hbm_battery::BatterySpec;

    let mut config = ColoConfig::paper_default();
    config.battery = BatterySpec::one_shot();
    config.attack_load = Power::from_kilowatts(3.0);
    let mut fleet = Fleet::new(config, sites, base_seed, |_, _| {
        Box::new(OneShotPolicy::new(Power::from_kilowatts(7.6)))
    });
    fleet.run(horizon_slots, required_up_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MyopicPolicy;

    #[test]
    fn benign_fleet_never_interrupted() {
        let config = ColoConfig::paper_default().with_trace_len(2 * 1440);
        let mut fleet = Fleet::new(config, 3, 7, |_, _| {
            Box::new(MyopicPolicy::new(Power::from_kilowatts(99.0)))
        });
        let report = fleet.run(2 * 1440, 1.0);
        assert_eq!(report.any_down_slots, 0);
        assert_eq!(report.interruption_slots, 0);
        assert_eq!(report.sites_hit, 0);
    }

    #[test]
    fn coordinated_one_shot_interrupts_the_metro() {
        let report = coordinated_one_shot(4, 1, 3 * 1440, 0.5);
        assert_eq!(report.sites_hit, 4, "every site should eventually fall");
        assert!(
            report.wide_area_interrupted(),
            "shared diurnal peaks must cluster the outages"
        );
        assert!(report.longest_interruption >= Duration::from_minutes(10.0));
    }

    #[test]
    fn sites_have_independent_traces() {
        let config = ColoConfig::paper_default().with_trace_len(1440);
        let fleet = Fleet::new(config, 2, 3, |_, _| {
            Box::new(MyopicPolicy::new(Power::from_kilowatts(7.4)))
        });
        let a = fleet.sites()[0].trace();
        let b = fleet.sites()[1].trace();
        assert_ne!(a, b, "each site must get its own trace realization");
    }
}
