//! Bit-exact simulation checkpoints (the `hbm-serve` experiment schema).
//!
//! A checkpoint captures everything that *evolves* during a run — RNG state
//! words, the zone inlet, protocol and campaign state machines, battery
//! energy, the EMA estimate filter, the pending learning transition, metric
//! accumulators (histogram included), and the policy's Q tables — as one
//! flat-JSON line. Everything *static* (the configuration, the workload
//! trace, grid geometry, calibration biases) is deliberately **not**
//! serialized: it re-derives deterministically from the [`Scenario`] that
//! created the run, so restore means "rebuild from the scenario, then
//! overwrite the dynamic state". [`Simulation::restore_from_json`] applied
//! to a freshly built simulation continues bit-identically to the
//! uninterrupted run (`crates/core/tests/checkpoint.rs` proves it slot for
//! slot, and the serve layer's kill-and-restore test proves it across a
//! daemon restart).
//!
//! Numbers round-trip exactly: floats use the shortest-round-trip encoding
//! of [`hbm_telemetry::json::push_json_f64`] (bit-exact by test), counters
//! stay far below 2⁵³, and full-range RNG words are hex strings. Quantities
//! serialize in their type's *internal* unit (kilowatt-hours for
//! [`Energy`], watts for [`Power`], seconds, celsius) — converting units
//! here would cost the last bit and break bit-exactness.
//!
//! [`Scenario`]: crate::Scenario

use hbm_telemetry::json::{
    parse_flat_object, push_json_f64_array, push_json_u64_array, JsonObject, JsonValue,
};
use hbm_units::{Duration, Energy, Power, Temperature};

use crate::attacker::{ForesightedPolicy, Learner, OneShotPolicy, RandomPolicy};
use crate::sim::PendingTransition;
use crate::{AttackAction, Metrics, Observation, Simulation};

/// Schema tag of the checkpoint line; bump when the layout changes.
pub const SNAPSHOT_SCHEMA: &str = "hbm-checkpoint-v1";

fn action_name(a: AttackAction) -> &'static str {
    match a {
        AttackAction::Charge => "charge",
        AttackAction::Attack => "attack",
        AttackAction::Standby => "standby",
    }
}

fn action_from_name(s: &str) -> Result<AttackAction, String> {
    match s {
        "charge" => Ok(AttackAction::Charge),
        "attack" => Ok(AttackAction::Attack),
        "standby" => Ok(AttackAction::Standby),
        other => Err(format!("unknown action {other:?}")),
    }
}

fn push_hex_array(out: &mut String, words: &[u64; 4]) {
    out.push('[');
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&format!("{w:016x}"));
        out.push('"');
    }
    out.push(']');
}

/// Decoded checkpoint fields with typed, error-reporting accessors.
struct Fields(Vec<(String, JsonValue)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&JsonValue, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("checkpoint missing field {key:?}"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)?
            .as_f64()
            .ok_or_else(|| format!("field {key:?} is not a number"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        let v = self.f64(key)?;
        if v < 0.0 || v.fract() != 0.0 || v > 9e15 {
            return Err(format!("field {key:?} is not a u64: {v}"));
        }
        Ok(v as u64)
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        self.get(key)?
            .as_bool()
            .ok_or_else(|| format!("field {key:?} is not a boolean"))
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        self.get(key)?
            .as_str()
            .ok_or_else(|| format!("field {key:?} is not a string"))
    }

    /// A number-or-null field, `null` meaning `None`.
    fn opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key)? {
            JsonValue::Null => Ok(None),
            v => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("field {key:?} is not a number or null")),
        }
    }

    fn arr(&self, key: &str) -> Result<&[JsonValue], String> {
        self.get(key)?
            .as_array()
            .ok_or_else(|| format!("field {key:?} is not an array"))
    }

    fn f64_array(&self, key: &str) -> Result<Vec<f64>, String> {
        self.arr(key)?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("field {key:?} has a non-number element"))
            })
            .collect()
    }

    fn u64_array(&self, key: &str) -> Result<Vec<u64>, String> {
        self.arr(key)?
            .iter()
            .map(|v| match v.as_f64() {
                Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= 9e15 => Ok(x as u64),
                _ => Err(format!("field {key:?} has a non-u64 element")),
            })
            .collect()
    }

    fn hex4(&self, key: &str) -> Result<[u64; 4], String> {
        let items = self.arr(key)?;
        if items.len() != 4 {
            return Err(format!("field {key:?} must hold 4 RNG words"));
        }
        let mut words = [0u64; 4];
        for (w, v) in words.iter_mut().zip(items) {
            let s = v
                .as_str()
                .ok_or_else(|| format!("field {key:?} has a non-string word"))?;
            *w = u64::from_str_radix(s, 16)
                .map_err(|e| format!("field {key:?} has a bad hex word {s:?}: {e}"))?;
        }
        Ok(words)
    }
}

impl Simulation {
    /// Serializes the dynamic state as one flat-JSON checkpoint line
    /// (schema [`SNAPSHOT_SCHEMA`]; see the module docs for what is and is
    /// not captured).
    pub fn snapshot_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("schema", SNAPSHOT_SCHEMA);
        o.str("policy", self.policy.name());
        o.u64("slot_index", self.slot_index);
        o.f64("inlet_c", self.zone.inlet().as_celsius());
        let (proto, proto_secs) = match self.protocol.state() {
            hbm_power::ProtocolState::Normal => ("normal", 0.0),
            hbm_power::ProtocolState::Watch { over_threshold_for } => {
                ("watch", over_threshold_for.as_seconds())
            }
            hbm_power::ProtocolState::Emergency { remaining } => {
                ("emergency", remaining.as_seconds())
            }
            hbm_power::ProtocolState::Outage => ("outage", 0.0),
        };
        o.str("protocol", proto);
        o.f64("protocol_secs", proto_secs);
        o.f64("battery_kwh", self.battery.stored().as_kilowatt_hours());
        let mut rng = String::new();
        push_hex_array(&mut rng, &self.side_channel.rng_state());
        o.raw("sc_rng", &rng);
        o.f64("sc_wander", self.side_channel.wander_volts());
        match self.estimate_filter {
            Some(p) => o.f64("filter_w", p.as_watts()),
            None => o.raw("filter_w", "null"),
        };
        o.bool("prev_capping", self.prev_capping);
        match self.outage_remaining {
            Some(d) => o.f64("outage_secs", d.as_seconds()),
            None => o.raw("outage_secs", "null"),
        };
        o.bool("pending", self.pending.is_some());
        let blank = PendingTransition {
            observation: Observation {
                slot: 0,
                battery_soc: 0.0,
                battery_stored: Energy::ZERO,
                estimated_total: Power::ZERO,
                inlet: Temperature::from_celsius(0.0),
                capping: false,
            },
            action: AttackAction::Standby,
            inlet: Temperature::from_celsius(0.0),
            next_battery_soc: 0.0,
            next_battery_stored: Energy::ZERO,
        };
        let p = self.pending.as_ref().unwrap_or(&blank);
        o.u64("pend_slot", p.observation.slot);
        o.f64("pend_soc", p.observation.battery_soc);
        o.f64(
            "pend_stored_kwh",
            p.observation.battery_stored.as_kilowatt_hours(),
        );
        o.f64("pend_est_w", p.observation.estimated_total.as_watts());
        o.f64("pend_obs_inlet_c", p.observation.inlet.as_celsius());
        o.bool("pend_capping", p.observation.capping);
        o.str("pend_action", action_name(p.action));
        o.f64("pend_inlet_c", p.inlet.as_celsius());
        o.f64("pend_next_soc", p.next_battery_soc);
        o.f64(
            "pend_next_stored_kwh",
            p.next_battery_stored.as_kilowatt_hours(),
        );
        self.snapshot_metrics(&mut o);
        self.snapshot_policy(&mut o);
        o.finish()
    }

    fn snapshot_metrics(&self, o: &mut JsonObject) {
        let m = &self.metrics;
        o.u64("m_slots", m.slots);
        o.u64("m_emergency_slots", m.emergency_slots);
        o.u64("m_emergency_events", m.emergency_events);
        o.u64("m_outage_events", m.outage_events);
        o.u64("m_outage_slots", m.outage_slots);
        o.u64("m_attack_slots", m.attack_slots);
        o.f64("m_attack_energy_kwh", m.attack_energy.as_kilowatt_hours());
        o.f64("m_delta_t_sum_c", m.delta_t_sum.as_celsius());
        o.f64("m_degradation_sum", m.degradation_sum);
        o.u64("m_degradation_slots", m.degradation_slots);
        o.f64(
            "m_metered_energy_kwh",
            m.attacker_metered_energy.as_kilowatt_hours(),
        );
        o.f64(
            "m_actual_energy_kwh",
            m.attacker_actual_energy.as_kilowatt_hours(),
        );
        let mut hist = String::new();
        push_json_u64_array(&mut hist, m.inlet_histogram.counts());
        o.raw("m_hist", &hist);
        o.u64("m_hist_under", m.inlet_histogram.underflow());
        o.u64("m_hist_over", m.inlet_histogram.overflow());
    }

    fn snapshot_policy(&self, o: &mut JsonObject) {
        let any = self.policy.as_any();
        if let Some(p) = any.downcast_ref::<RandomPolicy>() {
            let mut rng = String::new();
            push_hex_array(&mut rng, &p.rng_state());
            o.raw("p_rng", &rng);
        } else if let Some(p) = any.downcast_ref::<OneShotPolicy>() {
            o.bool("p_triggered", p.triggered());
        } else if let Some(p) = any.downcast_ref::<ForesightedPolicy>() {
            let mut rng = String::new();
            push_hex_array(&mut rng, &p.rng_state());
            o.raw("p_rng", &rng);
            let (campaign, launch_w) = p.campaign_code();
            o.u64("p_campaign", campaign);
            o.f64("p_campaign_w", launch_w);
            o.bool("p_learning", p.learning_enabled());
            let (kind, table, post) = match p.learner() {
                Learner::Batch(agent) => ("batch", agent.q_table(), Some(agent.post_values())),
                Learner::Standard(agent) => ("standard", agent.table(), None),
            };
            o.str("p_learner", kind);
            let mut buf = String::new();
            push_json_f64_array(&mut buf, table.values());
            o.raw("p_q_values", &buf);
            buf.clear();
            push_json_u64_array(&mut buf, table.visits());
            o.raw("p_q_visits", &buf);
            if let Some(v) = post {
                buf.clear();
                push_json_f64_array(&mut buf, v);
                o.raw("p_post_values", &buf);
            }
        }
        // Myopic carries no dynamic state.
    }

    /// Overwrites the dynamic state from a checkpoint line produced by
    /// [`Simulation::snapshot_json`]. The receiver must have been built
    /// from the same scenario (same configuration, policy kind, and seed);
    /// subsequent stepping is then bit-identical to the run the checkpoint
    /// was taken from.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a schema or policy mismatch, or
    /// shape mismatches (Q-table or histogram sizes).
    pub fn restore_from_json(&mut self, line: &str) -> Result<(), String> {
        let f = Fields(parse_flat_object(line)?);
        let schema = f.str("schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "checkpoint schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let policy = f.str("policy")?;
        if policy != self.policy.name() {
            return Err(format!(
                "checkpoint policy {policy:?} does not match simulation policy {:?}",
                self.policy.name()
            ));
        }
        self.slot_index = f.u64("slot_index")?;
        self.zone
            .set_inlet(Temperature::from_celsius(f.f64("inlet_c")?));
        let secs = Duration::from_seconds(f.f64("protocol_secs")?.max(0.0));
        let state = match f.str("protocol")? {
            "normal" => hbm_power::ProtocolState::Normal,
            "watch" => hbm_power::ProtocolState::Watch {
                over_threshold_for: secs,
            },
            "emergency" => hbm_power::ProtocolState::Emergency { remaining: secs },
            "outage" => hbm_power::ProtocolState::Outage,
            other => return Err(format!("unknown protocol state {other:?}")),
        };
        self.protocol.restore_state(state);
        // Clamp into the (possibly perturbed) pack capacity; both the
        // in-process perturb path and the crash-restore path apply the same
        // clamp, so determinism is preserved.
        let stored = Energy::from_kilowatt_hours(f.f64("battery_kwh")?.max(0.0));
        self.battery
            .set_stored(stored.min(self.battery.spec().capacity));
        self.side_channel
            .restore_noise_state(f.hex4("sc_rng")?, f.f64("sc_wander")?);
        self.estimate_filter = f.opt_f64("filter_w")?.map(Power::from_watts);
        self.prev_capping = f.bool("prev_capping")?;
        self.outage_remaining = f.opt_f64("outage_secs")?.map(Duration::from_seconds);
        self.pending = if f.bool("pending")? {
            Some(PendingTransition {
                observation: Observation {
                    slot: f.u64("pend_slot")?,
                    battery_soc: f.f64("pend_soc")?,
                    battery_stored: Energy::from_kilowatt_hours(f.f64("pend_stored_kwh")?),
                    estimated_total: Power::from_watts(f.f64("pend_est_w")?),
                    inlet: Temperature::from_celsius(f.f64("pend_obs_inlet_c")?),
                    capping: f.bool("pend_capping")?,
                },
                action: action_from_name(f.str("pend_action")?)?,
                inlet: Temperature::from_celsius(f.f64("pend_inlet_c")?),
                next_battery_soc: f.f64("pend_next_soc")?,
                next_battery_stored: Energy::from_kilowatt_hours(f.f64("pend_next_stored_kwh")?),
            })
        } else {
            None
        };
        self.restore_metrics(&f)?;
        self.restore_policy(&f)
    }

    fn restore_metrics(&mut self, f: &Fields) -> Result<(), String> {
        let mut m = Metrics::new(self.config.slot);
        m.slots = f.u64("m_slots")?;
        m.emergency_slots = f.u64("m_emergency_slots")?;
        m.emergency_events = f.u64("m_emergency_events")?;
        m.outage_events = f.u64("m_outage_events")?;
        m.outage_slots = f.u64("m_outage_slots")?;
        m.attack_slots = f.u64("m_attack_slots")?;
        m.attack_energy = Energy::from_kilowatt_hours(f.f64("m_attack_energy_kwh")?);
        m.delta_t_sum = hbm_units::TemperatureDelta::from_celsius(f.f64("m_delta_t_sum_c")?);
        m.degradation_sum = f.f64("m_degradation_sum")?;
        m.degradation_slots = f.u64("m_degradation_slots")?;
        m.attacker_metered_energy = Energy::from_kilowatt_hours(f.f64("m_metered_energy_kwh")?);
        m.attacker_actual_energy = Energy::from_kilowatt_hours(f.f64("m_actual_energy_kwh")?);
        let counts = f.u64_array("m_hist")?;
        if counts.len() != m.inlet_histogram.counts().len() {
            return Err(format!(
                "histogram shape mismatch: expected {} bins, got {}",
                m.inlet_histogram.counts().len(),
                counts.len()
            ));
        }
        m.inlet_histogram
            .set_counts(&counts, f.u64("m_hist_under")?, f.u64("m_hist_over")?);
        self.metrics = m;
        Ok(())
    }

    fn restore_policy(&mut self, f: &Fields) -> Result<(), String> {
        let any = self.policy.as_any_mut();
        if let Some(p) = any.downcast_mut::<RandomPolicy>() {
            p.restore_rng(f.hex4("p_rng")?);
        } else if let Some(p) = any.downcast_mut::<OneShotPolicy>() {
            p.set_triggered(f.bool("p_triggered")?);
        } else if let Some(p) = any.downcast_mut::<ForesightedPolicy>() {
            p.restore_rng(f.hex4("p_rng")?);
            p.restore_campaign(f.u64("p_campaign")?, f.f64("p_campaign_w")?)?;
            p.set_learning(f.bool("p_learning")?);
            let kind = f.str("p_learner")?;
            let values = f.f64_array("p_q_values")?;
            let visits = f.u64_array("p_q_visits")?;
            match (kind, p.learner_mut()) {
                ("batch", Learner::Batch(agent)) => {
                    agent.q_table_mut().restore(&values, &visits)?;
                    let post = f.f64_array("p_post_values")?;
                    let slots = agent.post_values_mut();
                    if post.len() != slots.len() {
                        return Err(format!(
                            "post-value shape mismatch: expected {} entries, got {}",
                            slots.len(),
                            post.len()
                        ));
                    }
                    slots.copy_from_slice(&post);
                }
                ("standard", Learner::Standard(agent)) => {
                    agent.table_mut().restore(&values, &visits)?;
                }
                (kind, _) => {
                    return Err(format!(
                        "checkpoint learner {kind:?} does not match the simulation's learner"
                    ));
                }
            }
        }
        Ok(())
    }
}
