//! Bit-exact simulation checkpoints (the `hbm-serve` experiment schema)
//! and the in-memory [`Snapshot`] they serialize.
//!
//! A checkpoint captures everything that *evolves* during a run — RNG state
//! words, the zone inlet, protocol and campaign state machines, battery
//! energy, the EMA estimate filter, the pending learning transition, metric
//! accumulators (histogram included), and the policy's Q tables — as one
//! flat-JSON line. Everything *static* (the configuration, the workload
//! trace, grid geometry, calibration biases) is deliberately **not**
//! serialized: it re-derives deterministically from the [`Scenario`] that
//! created the run, so restore means "rebuild from the scenario, then
//! overwrite the dynamic state". [`Simulation::restore_from_json`] applied
//! to a freshly built simulation continues bit-identically to the
//! uninterrupted run (`crates/core/tests/checkpoint.rs` proves it slot for
//! slot, and the serve layer's kill-and-restore test proves it across a
//! daemon restart).
//!
//! The same dynamic state also exists in binary form: [`Simulation::snapshot`]
//! captures it as a [`Snapshot`] — a plain struct whose clone costs a memcpy
//! plus the policy's Q tables, with **no** serialization —
//! [`Simulation::restore`] overwrites a live simulation from one, and the two
//! forms convert losslessly ([`Snapshot::to_json`] / [`Snapshot::from_json`]).
//! The JSON path is implemented *on top of* the binary one, so the two can
//! never drift: `snapshot_json()` is literally `snapshot().to_json()`. Hot
//! paths (the serve step loop, [`crate::StateTree`] branching) hold
//! `Snapshot`s and only pay for JSON when a checkpoint actually reaches disk
//! or a client asks for `/state`.
//!
//! Numbers round-trip exactly: floats use the shortest-round-trip encoding
//! of [`hbm_telemetry::json::push_json_f64`] (bit-exact by test), counters
//! stay far below 2⁵³, and full-range RNG words are hex strings. Quantities
//! serialize in their type's *internal* unit (kilowatt-hours for
//! [`Energy`], watts for [`Power`], seconds, celsius) — converting units
//! here would cost the last bit and break bit-exactness.
//!
//! [`Scenario`]: crate::Scenario

use hbm_telemetry::json::{
    parse_flat_object, push_json_f64_array, push_json_u64_array, JsonObject, JsonValue,
};
use hbm_units::{Duration, Energy, Power, Temperature};

use crate::attacker::{ForesightedPolicy, Learner, OneShotPolicy, RandomPolicy};
use crate::sim::PendingTransition;
use crate::{AttackAction, Metrics, Observation, Simulation};

/// Schema tag of the checkpoint line; bump when the layout changes.
pub const SNAPSHOT_SCHEMA: &str = "hbm-checkpoint-v1";

fn action_name(a: AttackAction) -> &'static str {
    match a {
        AttackAction::Charge => "charge",
        AttackAction::Attack => "attack",
        AttackAction::Standby => "standby",
    }
}

fn action_from_name(s: &str) -> Result<AttackAction, String> {
    match s {
        "charge" => Ok(AttackAction::Charge),
        "attack" => Ok(AttackAction::Attack),
        "standby" => Ok(AttackAction::Standby),
        other => Err(format!("unknown action {other:?}")),
    }
}

fn push_hex_array(out: &mut String, words: &[u64; 4]) {
    out.push('[');
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&format!("{w:016x}"));
        out.push('"');
    }
    out.push(']');
}

/// The dynamic state of one policy, captured by kind. Stored as the raw
/// checkpoint payload (RNG words, table vectors) rather than a policy
/// clone, so restoring from a binary snapshot overwrites **exactly** the
/// fields a JSON checkpoint restore overwrites — nothing more.
#[derive(Debug, Clone, PartialEq)]
enum PolicySnapshot {
    /// Myopic (and any other policy without dynamic state).
    Stateless,
    /// Random: its RNG words.
    Random([u64; 4]),
    /// One-shot: the trigger latch.
    OneShot(bool),
    /// Foresighted: exploration RNG, campaign state machine, learning
    /// flag, and the Q tables.
    Foresighted {
        rng: [u64; 4],
        campaign_code: u64,
        campaign_launch_w: f64,
        learning: bool,
        learner: LearnerSnapshot,
    },
}

/// Raw Q-table payload of a [`PolicySnapshot::Foresighted`].
#[derive(Debug, Clone, PartialEq)]
enum LearnerSnapshot {
    /// Batch Q-learning: Q table plus post-decision state values.
    Batch {
        values: Vec<f64>,
        visits: Vec<u64>,
        post: Vec<f64>,
    },
    /// Classic Q-learning: the Q table alone.
    Standard { values: Vec<f64>, visits: Vec<u64> },
}

/// The complete dynamic state of a [`Simulation`] in binary form — the
/// in-memory counterpart of one `hbm-checkpoint-v1` line.
///
/// Cloning a `Snapshot` is cheap (a memcpy plus the policy's Q-table
/// vectors); nothing is serialized until [`Snapshot::to_json`] is called.
/// Apply one with [`Simulation::restore`] to a simulation built from the
/// same scenario and subsequent stepping is bit-identical to the run the
/// snapshot was taken from — exactly the contract of the JSON path, which
/// is implemented on top of this type.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    policy_name: String,
    slot_index: u64,
    inlet: Temperature,
    protocol: hbm_power::ProtocolState,
    battery_stored: Energy,
    sc_rng: [u64; 4],
    sc_wander: f64,
    estimate_filter: Option<Power>,
    prev_capping: bool,
    outage_remaining: Option<Duration>,
    pending: Option<PendingTransition>,
    metrics: Metrics,
    policy: PolicySnapshot,
}

impl Snapshot {
    /// The policy name the snapshot was taken from.
    pub fn policy(&self) -> &str {
        &self.policy_name
    }

    /// The slot index at capture time (slots simulated so far, warm-up
    /// included).
    pub fn slot_index(&self) -> u64 {
        self.slot_index
    }

    /// The metric accumulators at capture time.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Serializes the snapshot as one flat-JSON checkpoint line (schema
    /// [`SNAPSHOT_SCHEMA`]) — byte-identical to what
    /// [`Simulation::snapshot_json`] has always produced.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("schema", SNAPSHOT_SCHEMA);
        o.str("policy", &self.policy_name);
        o.u64("slot_index", self.slot_index);
        o.f64("inlet_c", self.inlet.as_celsius());
        let (proto, proto_secs) = match self.protocol {
            hbm_power::ProtocolState::Normal => ("normal", 0.0),
            hbm_power::ProtocolState::Watch { over_threshold_for } => {
                ("watch", over_threshold_for.as_seconds())
            }
            hbm_power::ProtocolState::Emergency { remaining } => {
                ("emergency", remaining.as_seconds())
            }
            hbm_power::ProtocolState::Outage => ("outage", 0.0),
        };
        o.str("protocol", proto);
        o.f64("protocol_secs", proto_secs);
        o.f64("battery_kwh", self.battery_stored.as_kilowatt_hours());
        let mut rng = String::new();
        push_hex_array(&mut rng, &self.sc_rng);
        o.raw("sc_rng", &rng);
        o.f64("sc_wander", self.sc_wander);
        match self.estimate_filter {
            Some(p) => o.f64("filter_w", p.as_watts()),
            None => o.raw("filter_w", "null"),
        };
        o.bool("prev_capping", self.prev_capping);
        match self.outage_remaining {
            Some(d) => o.f64("outage_secs", d.as_seconds()),
            None => o.raw("outage_secs", "null"),
        };
        o.bool("pending", self.pending.is_some());
        let blank = PendingTransition {
            observation: Observation {
                slot: 0,
                battery_soc: 0.0,
                battery_stored: Energy::ZERO,
                estimated_total: Power::ZERO,
                inlet: Temperature::from_celsius(0.0),
                capping: false,
            },
            action: AttackAction::Standby,
            inlet: Temperature::from_celsius(0.0),
            next_battery_soc: 0.0,
            next_battery_stored: Energy::ZERO,
        };
        let p = self.pending.as_ref().unwrap_or(&blank);
        o.u64("pend_slot", p.observation.slot);
        o.f64("pend_soc", p.observation.battery_soc);
        o.f64(
            "pend_stored_kwh",
            p.observation.battery_stored.as_kilowatt_hours(),
        );
        o.f64("pend_est_w", p.observation.estimated_total.as_watts());
        o.f64("pend_obs_inlet_c", p.observation.inlet.as_celsius());
        o.bool("pend_capping", p.observation.capping);
        o.str("pend_action", action_name(p.action));
        o.f64("pend_inlet_c", p.inlet.as_celsius());
        o.f64("pend_next_soc", p.next_battery_soc);
        o.f64(
            "pend_next_stored_kwh",
            p.next_battery_stored.as_kilowatt_hours(),
        );
        self.metrics_to_json(&mut o);
        self.policy_to_json(&mut o);
        o.finish()
    }

    fn metrics_to_json(&self, o: &mut JsonObject) {
        let m = &self.metrics;
        o.u64("m_slots", m.slots);
        o.u64("m_emergency_slots", m.emergency_slots);
        o.u64("m_emergency_events", m.emergency_events);
        o.u64("m_outage_events", m.outage_events);
        o.u64("m_outage_slots", m.outage_slots);
        o.u64("m_attack_slots", m.attack_slots);
        o.f64("m_attack_energy_kwh", m.attack_energy.as_kilowatt_hours());
        o.f64("m_delta_t_sum_c", m.delta_t_sum.as_celsius());
        o.f64("m_degradation_sum", m.degradation_sum);
        o.u64("m_degradation_slots", m.degradation_slots);
        o.f64(
            "m_metered_energy_kwh",
            m.attacker_metered_energy.as_kilowatt_hours(),
        );
        o.f64(
            "m_actual_energy_kwh",
            m.attacker_actual_energy.as_kilowatt_hours(),
        );
        let mut hist = String::new();
        push_json_u64_array(&mut hist, m.inlet_histogram.counts());
        o.raw("m_hist", &hist);
        o.u64("m_hist_under", m.inlet_histogram.underflow());
        o.u64("m_hist_over", m.inlet_histogram.overflow());
    }

    fn policy_to_json(&self, o: &mut JsonObject) {
        match &self.policy {
            PolicySnapshot::Stateless => {}
            PolicySnapshot::Random(words) => {
                let mut rng = String::new();
                push_hex_array(&mut rng, words);
                o.raw("p_rng", &rng);
            }
            PolicySnapshot::OneShot(triggered) => {
                o.bool("p_triggered", *triggered);
            }
            PolicySnapshot::Foresighted {
                rng,
                campaign_code,
                campaign_launch_w,
                learning,
                learner,
            } => {
                let mut words = String::new();
                push_hex_array(&mut words, rng);
                o.raw("p_rng", &words);
                o.u64("p_campaign", *campaign_code);
                o.f64("p_campaign_w", *campaign_launch_w);
                o.bool("p_learning", *learning);
                let (kind, values, visits, post) = match learner {
                    LearnerSnapshot::Batch {
                        values,
                        visits,
                        post,
                    } => ("batch", values, visits, Some(post)),
                    LearnerSnapshot::Standard { values, visits } => {
                        ("standard", values, visits, None)
                    }
                };
                o.str("p_learner", kind);
                let mut buf = String::new();
                push_json_f64_array(&mut buf, values);
                o.raw("p_q_values", &buf);
                buf.clear();
                push_json_u64_array(&mut buf, visits);
                o.raw("p_q_visits", &buf);
                if let Some(v) = post {
                    buf.clear();
                    push_json_f64_array(&mut buf, v);
                    o.raw("p_post_values", &buf);
                }
            }
        }
    }

    /// Parses a checkpoint line produced by [`Snapshot::to_json`] (or the
    /// equivalent [`Simulation::snapshot_json`]) back into a binary
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a schema mismatch, or
    /// malformed fields. Shape and policy-kind mismatches against a
    /// concrete simulation surface later, in [`Simulation::restore`].
    pub fn from_json(line: &str) -> Result<Snapshot, String> {
        let f = Fields(parse_flat_object(line)?);
        let schema = f.str("schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "checkpoint schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let policy_name = f.str("policy")?.to_string();
        let secs = Duration::from_seconds(f.f64("protocol_secs")?.max(0.0));
        let protocol = match f.str("protocol")? {
            "normal" => hbm_power::ProtocolState::Normal,
            "watch" => hbm_power::ProtocolState::Watch {
                over_threshold_for: secs,
            },
            "emergency" => hbm_power::ProtocolState::Emergency { remaining: secs },
            "outage" => hbm_power::ProtocolState::Outage,
            other => return Err(format!("unknown protocol state {other:?}")),
        };
        let pending = if f.bool("pending")? {
            Some(PendingTransition {
                observation: Observation {
                    slot: f.u64("pend_slot")?,
                    battery_soc: f.f64("pend_soc")?,
                    battery_stored: Energy::from_kilowatt_hours(f.f64("pend_stored_kwh")?),
                    estimated_total: Power::from_watts(f.f64("pend_est_w")?),
                    inlet: Temperature::from_celsius(f.f64("pend_obs_inlet_c")?),
                    capping: f.bool("pend_capping")?,
                },
                action: action_from_name(f.str("pend_action")?)?,
                inlet: Temperature::from_celsius(f.f64("pend_inlet_c")?),
                next_battery_soc: f.f64("pend_next_soc")?,
                next_battery_stored: Energy::from_kilowatt_hours(f.f64("pend_next_stored_kwh")?),
            })
        } else {
            None
        };
        let policy = match policy_name.as_str() {
            "random" => PolicySnapshot::Random(f.hex4("p_rng")?),
            "one-shot" => PolicySnapshot::OneShot(f.bool("p_triggered")?),
            "foresighted" => {
                let kind = f.str("p_learner")?;
                let values = f.f64_array("p_q_values")?;
                let visits = f.u64_array("p_q_visits")?;
                let learner = match kind {
                    "batch" => LearnerSnapshot::Batch {
                        values,
                        visits,
                        post: f.f64_array("p_post_values")?,
                    },
                    "standard" => LearnerSnapshot::Standard { values, visits },
                    other => return Err(format!("unknown learner kind {other:?}")),
                };
                PolicySnapshot::Foresighted {
                    rng: f.hex4("p_rng")?,
                    campaign_code: f.u64("p_campaign")?,
                    campaign_launch_w: f.f64("p_campaign_w")?,
                    learning: f.bool("p_learning")?,
                    learner,
                }
            }
            _ => PolicySnapshot::Stateless,
        };
        Ok(Snapshot {
            policy_name,
            slot_index: f.u64("slot_index")?,
            inlet: Temperature::from_celsius(f.f64("inlet_c")?),
            protocol,
            battery_stored: Energy::from_kilowatt_hours(f.f64("battery_kwh")?.max(0.0)),
            sc_rng: f.hex4("sc_rng")?,
            sc_wander: f.f64("sc_wander")?,
            estimate_filter: f.opt_f64("filter_w")?.map(Power::from_watts),
            prev_capping: f.bool("prev_capping")?,
            outage_remaining: f.opt_f64("outage_secs")?.map(Duration::from_seconds),
            pending,
            metrics: Self::metrics_from_json(&f)?,
            policy,
        })
    }

    fn metrics_from_json(f: &Fields) -> Result<Metrics, String> {
        // The slot length is static state (it re-derives from the scenario)
        // and is overwritten by `Simulation::restore`; the placeholder here
        // never escapes.
        let mut m = Metrics::new(Duration::from_minutes(1.0));
        m.slots = f.u64("m_slots")?;
        m.emergency_slots = f.u64("m_emergency_slots")?;
        m.emergency_events = f.u64("m_emergency_events")?;
        m.outage_events = f.u64("m_outage_events")?;
        m.outage_slots = f.u64("m_outage_slots")?;
        m.attack_slots = f.u64("m_attack_slots")?;
        m.attack_energy = Energy::from_kilowatt_hours(f.f64("m_attack_energy_kwh")?);
        m.delta_t_sum = hbm_units::TemperatureDelta::from_celsius(f.f64("m_delta_t_sum_c")?);
        m.degradation_sum = f.f64("m_degradation_sum")?;
        m.degradation_slots = f.u64("m_degradation_slots")?;
        m.attacker_metered_energy = Energy::from_kilowatt_hours(f.f64("m_metered_energy_kwh")?);
        m.attacker_actual_energy = Energy::from_kilowatt_hours(f.f64("m_actual_energy_kwh")?);
        let counts = f.u64_array("m_hist")?;
        if counts.len() != m.inlet_histogram.counts().len() {
            return Err(format!(
                "histogram shape mismatch: expected {} bins, got {}",
                m.inlet_histogram.counts().len(),
                counts.len()
            ));
        }
        m.inlet_histogram
            .set_counts(&counts, f.u64("m_hist_under")?, f.u64("m_hist_over")?);
        Ok(m)
    }
}

/// Decoded checkpoint fields with typed, error-reporting accessors.
struct Fields(Vec<(String, JsonValue)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&JsonValue, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("checkpoint missing field {key:?}"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)?
            .as_f64()
            .ok_or_else(|| format!("field {key:?} is not a number"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        let v = self.f64(key)?;
        if v < 0.0 || v.fract() != 0.0 || v > 9e15 {
            return Err(format!("field {key:?} is not a u64: {v}"));
        }
        Ok(v as u64)
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        self.get(key)?
            .as_bool()
            .ok_or_else(|| format!("field {key:?} is not a boolean"))
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        self.get(key)?
            .as_str()
            .ok_or_else(|| format!("field {key:?} is not a string"))
    }

    /// A number-or-null field, `null` meaning `None`.
    fn opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key)? {
            JsonValue::Null => Ok(None),
            v => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("field {key:?} is not a number or null")),
        }
    }

    fn arr(&self, key: &str) -> Result<&[JsonValue], String> {
        self.get(key)?
            .as_array()
            .ok_or_else(|| format!("field {key:?} is not an array"))
    }

    fn f64_array(&self, key: &str) -> Result<Vec<f64>, String> {
        self.arr(key)?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("field {key:?} has a non-number element"))
            })
            .collect()
    }

    fn u64_array(&self, key: &str) -> Result<Vec<u64>, String> {
        self.arr(key)?
            .iter()
            .map(|v| match v.as_f64() {
                Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= 9e15 => Ok(x as u64),
                _ => Err(format!("field {key:?} has a non-u64 element")),
            })
            .collect()
    }

    fn hex4(&self, key: &str) -> Result<[u64; 4], String> {
        let items = self.arr(key)?;
        if items.len() != 4 {
            return Err(format!("field {key:?} must hold 4 RNG words"));
        }
        let mut words = [0u64; 4];
        for (w, v) in words.iter_mut().zip(items) {
            let s = v
                .as_str()
                .ok_or_else(|| format!("field {key:?} has a non-string word"))?;
            *w = u64::from_str_radix(s, 16)
                .map_err(|e| format!("field {key:?} has a bad hex word {s:?}: {e}"))?;
        }
        Ok(words)
    }
}

impl Simulation {
    /// Captures the complete dynamic state as a binary [`Snapshot`] — no
    /// serialization, just copies (the policy's Q tables are the only
    /// allocations). Emits a `state.snapshot` telemetry span.
    pub fn snapshot(&self) -> Snapshot {
        let started = hbm_telemetry::timing::start();
        let snap = Snapshot {
            policy_name: self.policy.name().to_string(),
            slot_index: self.slot_index,
            inlet: self.zone.inlet(),
            protocol: self.protocol.state(),
            battery_stored: self.battery.stored(),
            sc_rng: self.side_channel.rng_state(),
            sc_wander: self.side_channel.wander_volts(),
            estimate_filter: self.estimate_filter,
            prev_capping: self.prev_capping,
            outage_remaining: self.outage_remaining,
            pending: self.pending,
            metrics: self.metrics.clone(),
            policy: self.snapshot_policy(),
        };
        hbm_telemetry::timing::record_span("state.snapshot", started);
        snap
    }

    fn snapshot_policy(&self) -> PolicySnapshot {
        let any = self.policy.as_any();
        if let Some(p) = any.downcast_ref::<RandomPolicy>() {
            PolicySnapshot::Random(p.rng_state())
        } else if let Some(p) = any.downcast_ref::<OneShotPolicy>() {
            PolicySnapshot::OneShot(p.triggered())
        } else if let Some(p) = any.downcast_ref::<ForesightedPolicy>() {
            let (campaign_code, campaign_launch_w) = p.campaign_code();
            let learner = match p.learner() {
                Learner::Batch(agent) => LearnerSnapshot::Batch {
                    values: agent.q_table().values().to_vec(),
                    visits: agent.q_table().visits().to_vec(),
                    post: agent.post_values().to_vec(),
                },
                Learner::Standard(agent) => LearnerSnapshot::Standard {
                    values: agent.table().values().to_vec(),
                    visits: agent.table().visits().to_vec(),
                },
            };
            PolicySnapshot::Foresighted {
                rng: p.rng_state(),
                campaign_code,
                campaign_launch_w,
                learning: p.learning_enabled(),
                learner,
            }
        } else {
            // Myopic carries no dynamic state.
            PolicySnapshot::Stateless
        }
    }

    /// Overwrites the dynamic state from a binary [`Snapshot`]. The
    /// receiver must have been built from the same scenario (same
    /// configuration, policy kind, and seed); subsequent stepping is then
    /// bit-identical to the run the snapshot was taken from. Emits a
    /// `state.restore` telemetry span.
    ///
    /// This is the in-memory fast path behind the serve layer's perturb
    /// and fork operations — identical semantics to
    /// [`Simulation::restore_from_json`], minus the serialization.
    ///
    /// # Errors
    ///
    /// Returns a message on a policy mismatch or shape mismatches
    /// (Q-table or histogram sizes).
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), String> {
        let started = hbm_telemetry::timing::start();
        let result = self.restore_inner(snap);
        hbm_telemetry::timing::record_span("state.restore", started);
        result
    }

    fn restore_inner(&mut self, snap: &Snapshot) -> Result<(), String> {
        if snap.policy_name != self.policy.name() {
            return Err(format!(
                "checkpoint policy {:?} does not match simulation policy {:?}",
                snap.policy_name,
                self.policy.name()
            ));
        }
        self.restore_policy(&snap.policy)?;
        if snap.metrics.inlet_histogram.counts().len()
            != self.metrics.inlet_histogram.counts().len()
        {
            return Err(format!(
                "histogram shape mismatch: expected {} bins, got {}",
                self.metrics.inlet_histogram.counts().len(),
                snap.metrics.inlet_histogram.counts().len()
            ));
        }
        self.slot_index = snap.slot_index;
        self.zone.set_inlet(snap.inlet);
        self.protocol.restore_state(snap.protocol);
        // Clamp into the (possibly perturbed) pack capacity; both the
        // in-process perturb path and the crash-restore path apply the same
        // clamp, so determinism is preserved.
        self.battery
            .set_stored(snap.battery_stored.min(self.battery.spec().capacity));
        self.side_channel
            .restore_noise_state(snap.sc_rng, snap.sc_wander);
        self.estimate_filter = snap.estimate_filter;
        self.prev_capping = snap.prev_capping;
        self.outage_remaining = snap.outage_remaining;
        self.pending = snap.pending;
        let mut metrics = snap.metrics.clone();
        // The slot length is static state: it re-derives from the scenario,
        // exactly as the JSON restore path rebuilds `Metrics::new(slot)`.
        metrics.slot = self.config.slot;
        self.metrics = metrics;
        Ok(())
    }

    fn restore_policy(&mut self, snap: &PolicySnapshot) -> Result<(), String> {
        let any = self.policy.as_any_mut();
        match snap {
            PolicySnapshot::Stateless => Ok(()),
            PolicySnapshot::Random(words) => match any.downcast_mut::<RandomPolicy>() {
                Some(p) => {
                    p.restore_rng(*words);
                    Ok(())
                }
                None => Err("checkpoint carries random-policy state but the simulation's policy is not RandomPolicy".into()),
            },
            PolicySnapshot::OneShot(triggered) => match any.downcast_mut::<OneShotPolicy>() {
                Some(p) => {
                    p.set_triggered(*triggered);
                    Ok(())
                }
                None => Err("checkpoint carries one-shot state but the simulation's policy is not OneShotPolicy".into()),
            },
            PolicySnapshot::Foresighted {
                rng,
                campaign_code,
                campaign_launch_w,
                learning,
                learner,
            } => {
                let p = any.downcast_mut::<ForesightedPolicy>().ok_or(
                    "checkpoint carries foresighted state but the simulation's policy is not ForesightedPolicy",
                )?;
                p.restore_rng(*rng);
                p.restore_campaign(*campaign_code, *campaign_launch_w)?;
                p.set_learning(*learning);
                match (learner, p.learner_mut()) {
                    (
                        LearnerSnapshot::Batch {
                            values,
                            visits,
                            post,
                        },
                        Learner::Batch(agent),
                    ) => {
                        agent.q_table_mut().restore(values, visits)?;
                        let slots = agent.post_values_mut();
                        if post.len() != slots.len() {
                            return Err(format!(
                                "post-value shape mismatch: expected {} entries, got {}",
                                slots.len(),
                                post.len()
                            ));
                        }
                        slots.copy_from_slice(post);
                        Ok(())
                    }
                    (LearnerSnapshot::Standard { values, visits }, Learner::Standard(agent)) => {
                        agent.table_mut().restore(values, visits)?;
                        Ok(())
                    }
                    (snap_learner, _) => {
                        let kind = match snap_learner {
                            LearnerSnapshot::Batch { .. } => "batch",
                            LearnerSnapshot::Standard { .. } => "standard",
                        };
                        Err(format!(
                            "checkpoint learner {kind:?} does not match the simulation's learner"
                        ))
                    }
                }
            }
        }
    }

    /// Serializes the dynamic state as one flat-JSON checkpoint line
    /// (schema [`SNAPSHOT_SCHEMA`]; see the module docs for what is and is
    /// not captured). Equivalent to `self.snapshot().to_json()` — which is
    /// exactly how it is implemented, so the binary and JSON paths can
    /// never drift.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Overwrites the dynamic state from a checkpoint line produced by
    /// [`Simulation::snapshot_json`]. The receiver must have been built
    /// from the same scenario (same configuration, policy kind, and seed);
    /// subsequent stepping is then bit-identical to the run the checkpoint
    /// was taken from.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a schema or policy mismatch, or
    /// shape mismatches (Q-table or histogram sizes).
    pub fn restore_from_json(&mut self, line: &str) -> Result<(), String> {
        let snap = Snapshot::from_json(line)?;
        self.restore(&snap)
    }
}
