//! Branching what-if exploration: fork a live run at slot *t*, perturb
//! each branch, and advance all branches in lockstep on [`BatchSim`] lanes.
//!
//! A [`StateTree`] is rooted at a frozen copy of a simulation (the *base*)
//! together with the [`Scenario`] that built it. Each branch is either a
//! plain [`Simulation::fork`] of the base (empty perturbation — the
//! control lane) or a rebuild from the perturbed scenario with the base's
//! binary [`Snapshot`] transplanted in — the same rebuild-and-restore
//! recipe the serve layer's perturb operation uses, so a branch is always
//! equivalent to *some* standalone scenario restored at slot *t*.
//!
//! Because every branch starts from the identical dynamic state, the tree
//! can answer the questions a sweep-from-slot-0 cannot answer cheaply:
//! *when* does a variant first diverge from the control
//! ([`StateTree::first_divergence`]), and how do per-branch outcomes
//! distribute ([`StateTree::outcomes`]).

use crate::scenario::{Perturbation, Scenario};
use crate::state::Snapshot;
use crate::{BatchSim, Metrics, Simulation, SlotRecord};

/// Metadata of one branch of a [`StateTree`].
#[derive(Debug, Clone)]
struct BranchMeta {
    label: String,
    scenario: Scenario,
}

/// The outcome of one branch after [`StateTree::run`], for distribution
/// queries and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchOutcome {
    /// The branch label given to [`StateTree::branch`].
    pub label: String,
    /// The branch's effective canonical configuration string.
    pub config_canonical: String,
    /// Slots advanced since the fork point.
    pub slots_run: u64,
    /// The branch's metric accumulators (fork-point totals included).
    pub metrics: Metrics,
    /// Final inlet temperature, °C.
    pub inlet_c: f64,
    /// Final battery state of charge.
    pub battery_soc: f64,
}

/// A fork point plus its branches, advanced in lockstep.
///
/// ```
/// use hbm_core::{Perturbation, Scenario, StateTree};
///
/// let scenario = {
///     let mut s = Scenario::new("myopic");
///     s.days = 1;
///     s.warmup_days = 0;
///     s
/// };
/// let (mut sim, _) = scenario.build_sim().unwrap();
/// sim.run(120); // advance to the fork point
///
/// let mut tree = StateTree::new(sim.fork(), scenario);
/// tree.branch("control", &Perturbation::default()).unwrap();
/// let hotter = Perturbation {
///     attack_load_kw: Some(2.0),
///     ..Perturbation::default()
/// };
/// tree.branch("attack-2kw", &hotter).unwrap();
/// tree.run(240);
/// assert_eq!(tree.outcomes().len(), 2);
/// ```
pub struct StateTree {
    base: Simulation,
    base_snapshot: Snapshot,
    base_scenario: Scenario,
    fork_slot: u64,
    branches: Vec<BranchMeta>,
    sims: Vec<Simulation>,
    records: Vec<Vec<SlotRecord>>,
}

impl StateTree {
    /// Roots a tree at `base` (typically a [`Simulation::fork`] of a live
    /// run, taken so the original can keep stepping) built from
    /// `scenario`. The fork point is the base's current slot.
    pub fn new(base: Simulation, scenario: Scenario) -> StateTree {
        let base_snapshot = base.snapshot();
        let fork_slot = base.slot_index;
        StateTree {
            base,
            base_snapshot,
            base_scenario: scenario,
            fork_slot,
            branches: Vec::new(),
            sims: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The slot index all branches fork from.
    pub fn fork_slot(&self) -> u64 {
        self.fork_slot
    }

    /// The scenario the tree was rooted with — the base every branch
    /// perturbation applies to.
    pub fn scenario(&self) -> &Scenario {
        &self.base_scenario
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether no branch has been added yet.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// The branch labels, in creation order.
    pub fn labels(&self) -> Vec<&str> {
        self.branches.iter().map(|b| b.label.as_str()).collect()
    }

    /// Adds a branch and returns its index. An empty perturbation forks
    /// the base directly (a state copy); a non-empty one rebuilds from the
    /// perturbed scenario and transplants the base's snapshot — the same
    /// recipe as a serve-layer perturb, so the branch behaves exactly like
    /// that standalone scenario restored at the fork slot.
    ///
    /// # Errors
    ///
    /// Returns a message for an invalid perturbed configuration or a
    /// state-shape mismatch.
    pub fn branch(
        &mut self,
        label: impl Into<String>,
        perturbation: &Perturbation,
    ) -> Result<usize, String> {
        let effective = perturbation.apply(&self.base_scenario);
        let sim = if perturbation.is_empty() {
            self.base.fork()
        } else {
            // The warm-up flag is irrelevant here: the transplanted
            // snapshot already carries the warmed-up tables. Sharing the
            // base's trace (valid unless the perturbation changes the
            // workload itself) keeps branching a state copy rather than a
            // trace regeneration.
            let (mut sim, _needs_warmup) =
                effective.build_sim_sharing_trace(&self.base, self.base_scenario.seed)?;
            sim.restore(&self.base_snapshot)?;
            sim
        };
        self.branches.push(BranchMeta {
            label: label.into(),
            scenario: effective,
        });
        self.sims.push(sim);
        self.records.push(Vec::new());
        Ok(self.branches.len() - 1)
    }

    /// Advances every branch by `slots` slots in lockstep on [`BatchSim`]
    /// lanes, appending each branch's per-slot records. May be called
    /// repeatedly to extend the horizon.
    pub fn run(&mut self, slots: u64) {
        if self.sims.is_empty() || slots == 0 {
            return;
        }
        let sims = std::mem::take(&mut self.sims);
        let mut batch = BatchSim::new(sims);
        for _ in 0..slots {
            batch.step_all();
            for (lane, r) in batch.records().iter().enumerate() {
                self.records[lane].push(*r);
            }
        }
        self.sims = batch.into_sims();
    }

    /// The per-slot records of branch `i` since the fork point.
    pub fn records(&self, i: usize) -> &[SlotRecord] {
        &self.records[i]
    }

    /// The first absolute slot index at which any branch's record differs
    /// from branch 0's, or `None` while all branches agree (fewer than two
    /// branches always agree). Only slots every branch has run are
    /// compared.
    pub fn first_divergence(&self) -> Option<u64> {
        let first = self.records.first()?;
        if self.records.len() < 2 {
            return None;
        }
        let horizon = self.records.iter().map(Vec::len).min().unwrap_or(0);
        (0..horizon)
            .find(|&k| self.records[1..].iter().any(|r| r[k] != first[k]))
            .map(|k| self.fork_slot + k as u64)
    }

    /// Per-branch outcomes, in branch order.
    pub fn outcomes(&self) -> Vec<BranchOutcome> {
        self.branches
            .iter()
            .zip(&self.sims)
            .zip(&self.records)
            .map(|((meta, sim), records)| BranchOutcome {
                label: meta.label.clone(),
                config_canonical: meta.scenario.config_canonical(),
                slots_run: records.len() as u64,
                metrics: sim.metrics().clone(),
                inlet_c: sim.inlet().as_celsius(),
                battery_soc: sim.battery_soc(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Perturbation;

    fn scenario() -> Scenario {
        let mut s = Scenario::new("myopic");
        s.days = 2;
        s.warmup_days = 0;
        s.seed = 7;
        s
    }

    #[test]
    fn control_branch_matches_uninterrupted_run() {
        let s = scenario();
        let (mut sim, _) = s.build_sim().unwrap();
        sim.run(300);

        let mut tree = StateTree::new(sim.fork(), s.clone());
        tree.branch("control", &Perturbation::default()).unwrap();
        tree.run(200);

        let (_, straight) = sim.run_recorded(200);
        assert_eq!(tree.records(0), &straight[..]);
        assert_eq!(tree.first_divergence(), None);
    }

    #[test]
    fn perturbed_branch_diverges_and_reports_outcomes() {
        let s = scenario();
        let (mut sim, _) = s.build_sim().unwrap();
        sim.run(300);

        let mut tree = StateTree::new(sim.fork(), s);
        assert_eq!(tree.fork_slot(), 300);
        tree.branch("control", &Perturbation::default()).unwrap();
        let hotter = Perturbation {
            attack_load_kw: Some(3.0),
            battery_kwh: Some(1.0),
            ..Perturbation::default()
        };
        tree.branch("heavy-attack", &hotter).unwrap();
        tree.run(1440);

        let div = tree
            .first_divergence()
            .expect("a 3 kW variant must diverge");
        assert!(div >= 300, "divergence slot {div} must be after the fork");
        let outcomes = tree.outcomes();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].label, "control");
        assert_eq!(outcomes[1].label, "heavy-attack");
        assert!(outcomes[1].config_canonical.contains("attack_load_kw=3"));
        assert_eq!(outcomes[0].slots_run, 1440);
        assert!(
            outcomes[1].metrics.attack_energy > outcomes[0].metrics.attack_energy,
            "the heavy branch must inject more battery energy"
        );
    }

    #[test]
    fn invalid_perturbation_is_an_error_not_a_panic() {
        let s = scenario();
        let (sim, _) = s.build_sim().unwrap();
        let mut tree = StateTree::new(sim, s);
        let bad = Perturbation {
            utilization: Some(1.5),
            ..Perturbation::default()
        };
        assert!(tree.branch("bad", &bad).is_err());
        assert!(tree.is_empty());
    }
}
