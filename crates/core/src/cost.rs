//! Cost estimates (Section VI-C).

use serde::{Deserialize, Serialize};

use hbm_units::{Energy, Power};

use crate::Metrics;

/// Monetary parameters of the cost model, following the paper's references:
/// 150 $/kW/month subscription, 0.1 $/kWh energy, 4 500 $ per server
/// (amortized over 4 years), and a victim-side cost calibrated so the
/// default Foresighted attack lands near the paper's ≈$60 K+/year estimate
/// for the 8 kW colocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Power-capacity subscription, $ per kW per month.
    pub subscription_per_kw_month: f64,
    /// Electricity, $ per kWh.
    pub energy_per_kwh: f64,
    /// Purchase price of one attack server, $.
    pub server_price: f64,
    /// Server amortization period, years.
    pub server_life_years: f64,
    /// Victim-side cost per emergency hour, $ (latency-degradation cost of
    /// all affected tenants combined).
    pub victim_cost_per_emergency_hour: f64,
}

impl CostModel {
    /// The paper's §VI-C parameters.
    pub fn paper_default() -> Self {
        CostModel {
            subscription_per_kw_month: 150.0,
            energy_per_kwh: 0.1,
            server_price: 4_500.0,
            server_life_years: 4.0,
            victim_cost_per_emergency_hour: 300.0,
        }
    }
}

/// Yearly cost breakdown of an attack campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Attacker: colocation subscription, $/yr.
    pub attacker_subscription: f64,
    /// Attacker: electricity, $/yr.
    pub attacker_energy: f64,
    /// Attacker: amortized server purchase, $/yr.
    pub attacker_servers: f64,
    /// Benign tenants: performance cost of attack-induced emergencies, $/yr.
    pub victim_performance: f64,
}

impl CostReport {
    /// Attacker's total, $/yr.
    pub fn attacker_total(&self) -> f64 {
        self.attacker_subscription + self.attacker_energy + self.attacker_servers
    }
}

impl CostModel {
    /// Computes the yearly cost report for a campaign measured by `metrics`,
    /// extrapolating to a full year.
    ///
    /// `subscribed` is the attacker's capacity (`c_a`), `servers` its server
    /// count, and `metered_energy` what it actually drew from the PDU over
    /// the measured period.
    pub fn yearly_report(
        &self,
        metrics: &Metrics,
        subscribed: Power,
        servers: usize,
        metered_energy: Energy,
    ) -> CostReport {
        let years = (metrics.simulated_time().as_days() / 365.0).max(1e-9);
        CostReport {
            attacker_subscription: subscribed.as_kilowatts()
                * self.subscription_per_kw_month
                * 12.0,
            attacker_energy: metered_energy.as_kilowatt_hours() * self.energy_per_kwh / years,
            attacker_servers: servers as f64 * self.server_price / self.server_life_years,
            victim_performance: metrics.emergency_hours_per_year()
                * self.victim_cost_per_emergency_hour
                * metrics.mean_emergency_degradation().max(1.0)
                / 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::Duration;

    #[test]
    fn attacker_fixed_costs_match_paper_arithmetic() {
        let model = CostModel::paper_default();
        let metrics = Metrics::new(Duration::from_minutes(1.0));
        let report = model.yearly_report(&metrics, Power::from_kilowatts(0.8), 4, Energy::ZERO);
        // 0.8 kW × 150 $/kW/mo × 12 = 1 440 $/yr.
        assert!((report.attacker_subscription - 1_440.0).abs() < 1e-9);
        // 4 × 4 500 $ / 4 yr = 4 500 $/yr.
        assert!((report.attacker_servers - 4_500.0).abs() < 1e-9);
        assert_eq!(report.victim_performance, 0.0);
    }

    #[test]
    fn victim_cost_scales_with_emergency_time() {
        let model = CostModel::paper_default();
        let mut metrics = Metrics::new(Duration::from_minutes(1.0));
        metrics.slots = 365 * 1440;
        metrics.emergency_slots = (0.023 * 365.0 * 1440.0) as u64; // 2.3 % of the year
        metrics.degradation_sum = 4.0 * metrics.emergency_slots as f64;
        metrics.degradation_slots = metrics.emergency_slots;
        let report = model.yearly_report(
            &metrics,
            Power::from_kilowatts(0.8),
            4,
            Energy::from_kilowatt_hours(3_000.0),
        );
        // ≈201 emergency hours × 300 $/h × 4x degradation / 4 ≈ 60 K$/yr —
        // the paper's ballpark.
        assert!(
            (45_000.0..80_000.0).contains(&report.victim_performance),
            "victim cost {} outside the paper's ballpark",
            report.victim_performance
        );
        assert!(report.attacker_total() < report.victim_performance / 2.0);
    }
}
