//! Aggregated evaluation metrics (Section V-A, "Evaluation metrics").

use serde::{Deserialize, Serialize};

use hbm_sidechannel::stats::Histogram;
use hbm_units::{Duration, Energy, TemperatureDelta};

/// Metrics accumulated over a simulation run.
///
/// Covers everything the paper reports: adverse-thermal-environment metrics
/// (average inlet-temperature increase, temperature distribution, emergency
/// time) and tenant-performance metrics (normalized 95th-percentile response
/// time during emergencies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total simulated slots.
    pub slots: u64,
    /// Slot length.
    pub slot: Duration,
    /// Slots spent in a declared thermal emergency (capping active).
    pub emergency_slots: u64,
    /// Number of distinct emergencies (rising edges).
    pub emergency_events: u64,
    /// Number of outages (PDU shutdowns).
    pub outage_events: u64,
    /// Slots spent in outage downtime.
    pub outage_slots: u64,
    /// Slots in which the attacker injected battery-fed load.
    pub attack_slots: u64,
    /// Total energy discharged from the battery into attacks.
    pub attack_energy: Energy,
    /// Sum of inlet-temperature rise above the setpoint (for averaging).
    pub delta_t_sum: TemperatureDelta,
    /// Distribution of the inlet temperature, °C.
    pub inlet_histogram: Histogram,
    /// Sum of the latency degradation factor over emergency slots.
    pub degradation_sum: f64,
    /// Count of emergency slots contributing to `degradation_sum`.
    pub degradation_slots: u64,
    /// Total energy the operator metered from the attacker.
    pub attacker_metered_energy: Energy,
    /// Total actual (heat-producing) energy of the attacker.
    pub attacker_actual_energy: Energy,
}

impl Metrics {
    /// Creates empty metrics for the given slot length.
    pub fn new(slot: Duration) -> Self {
        Metrics {
            slots: 0,
            slot,
            emergency_slots: 0,
            emergency_events: 0,
            outage_events: 0,
            outage_slots: 0,
            attack_slots: 0,
            attack_energy: Energy::ZERO,
            delta_t_sum: TemperatureDelta::ZERO,
            inlet_histogram: Histogram::new(26.0, 50.0, 96),
            degradation_sum: 0.0,
            degradation_slots: 0,
            attacker_metered_energy: Energy::ZERO,
            attacker_actual_energy: Energy::ZERO,
        }
    }

    /// Total simulated time.
    pub fn simulated_time(&self) -> Duration {
        self.slot * self.slots as f64
    }

    /// Fraction of time under a declared thermal emergency.
    pub fn emergency_fraction(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.emergency_slots as f64 / self.slots as f64
    }

    /// Emergency time extrapolated to hours per year.
    pub fn emergency_hours_per_year(&self) -> f64 {
        self.emergency_fraction() * 365.0 * 24.0
    }

    /// Average inlet-temperature increase over the setpoint (ΔT of
    /// Fig. 11b).
    pub fn avg_delta_t(&self) -> TemperatureDelta {
        if self.slots == 0 {
            return TemperatureDelta::ZERO;
        }
        self.delta_t_sum / self.slots as f64
    }

    /// Average attack time in hours per day (the x-axis of Figs. 11b–c).
    pub fn attack_hours_per_day(&self) -> f64 {
        let days = self.simulated_time().as_days();
        if days == 0.0 {
            return 0.0;
        }
        (self.slot * self.attack_slots as f64).as_hours() / days
    }

    /// Fraction of slots spent attacking.
    pub fn attack_fraction(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.attack_slots as f64 / self.slots as f64
    }

    /// Mean normalized 95th-percentile response time during emergencies
    /// (Fig. 11d; 1.0 when no emergency ever occurred).
    pub fn mean_emergency_degradation(&self) -> f64 {
        if self.degradation_slots == 0 {
            return 1.0;
        }
        self.degradation_sum / self.degradation_slots as f64
    }

    /// The attacker's behind-the-meter energy: the heat it produced that no
    /// power meter accounted for. This is exactly the battery-fed attack
    /// energy — the charging draw that replenished it *was* metered (as
    /// legitimate consumption), which is the concealment the paper's title
    /// refers to.
    pub fn behind_the_meter_energy(&self) -> Energy {
        self.attack_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        let mut m = Metrics::new(Duration::from_minutes(1.0));
        m.slots = 1440; // one day
        m.emergency_slots = 30;
        m.emergency_events = 6;
        m.attack_slots = 60;
        m.attack_energy = Energy::from_kilowatt_hours(1.0);
        m.delta_t_sum = TemperatureDelta::from_celsius(720.0);
        m.degradation_sum = 120.0;
        m.degradation_slots = 30;
        m.attacker_metered_energy = Energy::from_kilowatt_hours(10.0);
        m.attacker_actual_energy = Energy::from_kilowatt_hours(11.0);
        m
    }

    #[test]
    fn derived_fractions() {
        let m = sample();
        assert!((m.emergency_fraction() - 30.0 / 1440.0).abs() < 1e-12);
        assert!((m.attack_hours_per_day() - 1.0).abs() < 1e-12);
        assert!((m.avg_delta_t().as_celsius() - 0.5).abs() < 1e-12);
        assert!((m.mean_emergency_degradation() - 4.0).abs() < 1e-12);
        assert_eq!(m.behind_the_meter_energy(), m.attack_energy);
    }

    #[test]
    fn empty_metrics_are_neutral() {
        let m = Metrics::new(Duration::from_minutes(1.0));
        assert_eq!(m.emergency_fraction(), 0.0);
        assert_eq!(m.attack_hours_per_day(), 0.0);
        assert_eq!(m.mean_emergency_degradation(), 1.0);
        assert_eq!(m.avg_delta_t(), TemperatureDelta::ZERO);
    }

    #[test]
    fn yearly_extrapolation() {
        let m = sample();
        // 30 min/day in emergency → 182.5 h/yr.
        assert!((m.emergency_hours_per_year() - 182.5).abs() < 1e-9);
    }
}
