//! Simulation configuration (the paper's Table I).

use serde::{Deserialize, Serialize};

use hbm_battery::BatterySpec;
use hbm_power::{EmergencyProtocol, ServerSpec};
use hbm_sidechannel::SideChannelConfig;
use hbm_thermal::CoolingSystem;
use hbm_units::{Duration, Energy, Power};
use hbm_workload::{latency::LatencyModel, TraceConfig};

/// Full configuration of one simulated edge colocation with an attacker.
///
/// [`ColoConfig::paper_default`] reproduces Table I; the `with_*` methods
/// support the sensitivity sweeps of Fig. 12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColoConfig {
    /// Total power/cooling capacity `C` (8 kW).
    pub capacity: Power,
    /// Number of benign tenants (3; the attacker is the 4th tenant).
    pub benign_tenants: usize,
    /// Servers per benign tenant (12 each → 36 benign + 4 attacker = 40).
    pub benign_servers_per_tenant: usize,
    /// Benign server power model.
    pub benign_server: ServerSpec,
    /// Attacker's subscribed capacity `c_a` (0.8 kW).
    pub attacker_capacity: Power,
    /// Number of attacker servers (4).
    pub attacker_servers: usize,
    /// Aggregate built-in battery of the attacker (0.2 kWh, 0.2 kW charge).
    pub battery: BatterySpec,
    /// Net thermal load injected from the battery during a repeated attack
    /// (`p_b`, 1 kW).
    pub attack_load: Power,
    /// Attacker's metered power while standing by (dummy workloads).
    pub standby_power: Power,
    /// Cooling plant.
    pub cooling: CoolingSystem,
    /// Zone thermal capacitance, J/K.
    pub zone_heat_capacity_j_per_k: f64,
    /// Zone pull-down conductance, W/K.
    pub zone_pulldown_w_per_k: f64,
    /// Emergency protocol (32 °C / 2 min / 120 W / 5 min / 45 °C).
    pub protocol: EmergencyProtocol,
    /// Voltage side channel configuration.
    pub side_channel: SideChannelConfig,
    /// Benign power trace configuration.
    pub trace: TraceConfig,
    /// Latency model used for performance metrics.
    pub latency: LatencyModel,
    /// Exponential-moving-average coefficient the attacker applies to its
    /// side-channel estimates (weight of the newest sample). 1.0 disables
    /// filtering; lower values trade estimation lag for less minute-to-
    /// minute jitter.
    pub estimate_ema_alpha: f64,
    /// Slot length (1 minute).
    pub slot: Duration,
    /// Downtime after an outage before the colocation restarts.
    pub outage_downtime: Duration,
}

impl ColoConfig {
    /// The paper's Table I defaults on a year-long default trace.
    pub fn paper_default() -> Self {
        ColoConfig {
            capacity: Power::from_kilowatts(8.0),
            benign_tenants: 3,
            benign_servers_per_tenant: 12,
            benign_server: ServerSpec::paper_default(),
            attacker_capacity: Power::from_kilowatts(0.8),
            attacker_servers: 4,
            battery: BatterySpec::paper_default(),
            attack_load: Power::from_kilowatts(1.0),
            standby_power: Power::from_watts(280.0),
            cooling: CoolingSystem::paper_default(),
            zone_heat_capacity_j_per_k: 40_000.0,
            zone_pulldown_w_per_k: 700.0,
            protocol: EmergencyProtocol::paper_default(),
            side_channel: SideChannelConfig::paper_default(),
            trace: TraceConfig::paper_default_year(2021),
            latency: LatencyModel::web_service(),
            estimate_ema_alpha: 0.4,
            slot: Duration::from_minutes(1.0),
            outage_downtime: Duration::from_minutes(60.0),
        }
    }

    /// Number of servers in the colocation (benign + attacker).
    pub fn server_count(&self) -> usize {
        self.benign_tenants * self.benign_servers_per_tenant + self.attacker_servers
    }

    /// Number of benign servers.
    pub fn benign_server_count(&self) -> usize {
        self.benign_tenants * self.benign_servers_per_tenant
    }

    /// Total benign subscribed capacity (capacity − attacker's share).
    pub fn benign_capacity(&self) -> Power {
        self.capacity - self.attacker_capacity
    }

    /// Aggregate benign power cap during an emergency
    /// (benign servers × 120 W).
    pub fn benign_emergency_cap(&self) -> Power {
        self.protocol.cap_per_server * self.benign_server_count() as f64
    }

    /// Aggregate attacker metered cap during an emergency.
    pub fn attacker_emergency_cap(&self) -> Power {
        self.protocol.cap_per_server * self.attacker_servers as f64
    }

    /// Energy one slot of attacking drains from the battery.
    pub fn attack_energy_per_slot(&self) -> Energy {
        self.attack_load * self.slot
    }

    /// The emergency cap as a fraction of benign server peak (0.6 at
    /// defaults), which is the power axis of the latency model.
    pub fn emergency_cap_fraction(&self) -> f64 {
        self.benign_server
            .cap_fraction(self.protocol.cap_per_server)
    }

    /// Returns a copy with a different battery capacity (Fig. 12a).
    pub fn with_battery_capacity(mut self, capacity: Energy) -> Self {
        self.battery = self.battery.with_capacity(capacity);
        self
    }

    /// Returns a copy with extra side-channel noise (Fig. 12b).
    pub fn with_side_channel_noise(mut self, noise: Power) -> Self {
        self.side_channel = self.side_channel.with_extra_noise(noise);
        self
    }

    /// Returns a copy with a different attack load (Fig. 12c).
    pub fn with_attack_load(mut self, load: Power) -> Self {
        self.battery = self.battery.with_max_discharge_rate(load);
        self.attack_load = load;
        self
    }

    /// Returns a copy with the trace scaled to a different mean utilization
    /// of the colocation capacity (Fig. 12d).
    pub fn with_mean_utilization(mut self, utilization: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1]"
        );
        // The benign trace mean so that benign + attacker standby reaches
        // the requested total mean.
        let total_mean = self.capacity * utilization;
        let benign_mean = (total_mean - self.standby_power).positive_part();
        self.trace = self.trace.with_mean(benign_mean);
        self
    }

    /// Returns a copy with extra cooling capacity, in fraction of the power
    /// capacity (Fig. 12e: cooling headroom beyond the 8 kW design).
    pub fn with_extra_cooling(mut self, extra_fraction: f64) -> Self {
        assert!(extra_fraction >= 0.0, "extra cooling must be non-negative");
        self.cooling = self
            .cooling
            .with_capacity(self.capacity * (1.0 + extra_fraction));
        self
    }

    /// Returns a copy with a different trace length (shorter smoke runs).
    pub fn with_trace_len(mut self, len: usize) -> Self {
        self.trace = self.trace.with_len(len);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity <= Power::ZERO {
            return Err("capacity must be positive".into());
        }
        if self.benign_tenants == 0 || self.benign_servers_per_tenant == 0 {
            return Err("need at least one benign tenant with servers".into());
        }
        if self.attacker_servers == 0 {
            return Err("attacker needs at least one server".into());
        }
        if self.attacker_capacity <= Power::ZERO || self.attacker_capacity >= self.capacity {
            return Err("attacker capacity must be within (0, capacity)".into());
        }
        self.benign_server.validate()?;
        self.battery.validate().map_err(|e| e.to_string())?;
        self.cooling.validate()?;
        if self.attack_load <= Power::ZERO {
            return Err("attack load must be positive".into());
        }
        if self.standby_power > self.attacker_capacity {
            return Err("standby power must fit the attacker's subscription".into());
        }
        if self.slot <= Duration::ZERO {
            return Err("slot must be positive".into());
        }
        if !(0.0 < self.estimate_ema_alpha && self.estimate_ema_alpha <= 1.0) {
            return Err("estimate EMA alpha must be in (0, 1]".into());
        }
        Ok(())
    }

    /// Table I as printable `(parameter, value)` rows.
    pub fn table_one(&self) -> Vec<(String, String)> {
        vec![
            ("Data Center Capacity".into(), format!("{}", self.capacity)),
            (
                "Number of Tenants".into(),
                format!("{}", self.benign_tenants + 1),
            ),
            (
                "Number of Servers".into(),
                format!("{}", self.server_count()),
            ),
            ("Number of Server Racks".into(), "2".into()),
            (
                "Attacker's Capacity (c_a)".into(),
                format!("{}", self.attacker_capacity),
            ),
            (
                "Attacker's Total Battery Capacity (B)".into(),
                format!("{}", self.battery.capacity),
            ),
            (
                "Attack Thermal Load from Battery".into(),
                format!("{}", self.attack_load),
            ),
            (
                "Charging Rate of the Battery".into(),
                format!("{}", self.battery.max_charge_rate),
            ),
            (
                "Temperature Threshold for Emergency (T_th)".into(),
                format!("{}", self.protocol.threshold),
            ),
            ("Q-learning Discount Factor (gamma)".into(), "0.99".into()),
            (
                "Q-learning Learning Rate (delta(t))".into(),
                "1/t^0.85".into(),
            ),
        ]
    }
}

impl Default for ColoConfig {
    fn default() -> Self {
        ColoConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::Temperature;

    #[test]
    fn paper_default_matches_table_one() {
        let c = ColoConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.capacity, Power::from_kilowatts(8.0));
        assert_eq!(c.server_count(), 40);
        assert_eq!(c.benign_server_count(), 36);
        assert_eq!(c.attacker_capacity, Power::from_kilowatts(0.8));
        assert_eq!(c.battery.capacity, Energy::from_kilowatt_hours(0.2));
        assert_eq!(c.attack_load, Power::from_kilowatts(1.0));
        assert_eq!(c.battery.max_charge_rate, Power::from_kilowatts(0.2));
        assert_eq!(c.protocol.threshold, Temperature::from_celsius(32.0));
    }

    #[test]
    fn derived_quantities() {
        let c = ColoConfig::paper_default();
        assert_eq!(c.benign_capacity(), Power::from_kilowatts(7.2));
        assert_eq!(c.benign_emergency_cap(), Power::from_kilowatts(4.32));
        assert_eq!(c.attacker_emergency_cap(), Power::from_watts(480.0));
        assert!((c.emergency_cap_fraction() - 0.6).abs() < 1e-12);
        assert!((c.attack_energy_per_slot().as_kilowatt_hours() - 1.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_helpers() {
        let c = ColoConfig::paper_default()
            .with_battery_capacity(Energy::from_kilowatt_hours(0.4))
            .with_attack_load(Power::from_kilowatts(2.0))
            .with_extra_cooling(0.1);
        assert!(c.validate().is_ok());
        assert_eq!(c.battery.capacity, Energy::from_kilowatt_hours(0.4));
        assert_eq!(c.attack_load, Power::from_kilowatts(2.0));
        assert_eq!(c.battery.max_discharge_rate, Power::from_kilowatts(2.0));
        assert_eq!(c.cooling.capacity, Power::from_kilowatts(8.8));
    }

    #[test]
    fn utilization_sweep_changes_trace_mean() {
        let c = ColoConfig::paper_default().with_mean_utilization(0.6);
        assert!(c.trace.mean < Power::from_kilowatts(5.0));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn table_one_has_eleven_rows() {
        assert_eq!(ColoConfig::paper_default().table_one().len(), 11);
    }

    #[test]
    fn validation_rejects_oversized_standby() {
        let mut c = ColoConfig::paper_default();
        c.standby_power = Power::from_kilowatts(1.0);
        assert!(c.validate().is_err());
    }
}
